"""Ablations beyond the paper's figures (design-choice studies).

* Knapsack solver choice for RC: FPTAS vs ratio-greedy vs exact DP
  (the paper adopts the FPTAS; this quantifies what that buys).
* Rule-family contribution: benefit share per relationship type, which
  explains *why* the schemas win (union/inheritance collapses vs list
  replication).
"""

from conftest import report

from repro.bench.harness import run_knapsack_ablation
from repro.bench.reporting import ExperimentTable
from repro.optimizer.costmodel import CostBenefitModel
from repro.bench.harness import MICROBENCH_THRESHOLDS


def test_knapsack_ablation(benchmark, med, fin):
    def run():
        tables = []
        for dataset in (med, fin):
            tables.append(run_knapsack_ablation(dataset))
        return tables

    med_table, fin_table = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(med_table, "ablation_knapsack_med.txt")
    report(fin_table, "ablation_knapsack_fin.txt")
    for table in (med_table, fin_table):
        for fptas, greedy in zip(
            table.column("FPTAS BR"), table.column("greedy BR")
        ):
            assert fptas >= greedy - 0.05


def test_rule_family_contribution(benchmark, med, fin):
    def run():
        table = ExperimentTable(
            "Benefit share per relationship-rule family",
            ["dataset", "rule family", "items", "benefit share",
             "cost share"],
        )
        for dataset in (med, fin):
            model = CostBenefitModel(
                dataset.ontology, dataset.stats,
                dataset.workload("zipf"), MICROBENCH_THRESHOLDS,
            )
            total_benefit = model.total_benefit or 1.0
            total_cost = model.total_cost or 1
            by_family: dict[str, list] = {}
            for item in model.items:
                by_family.setdefault(item.rel_type.value, []).append(item)
            for family, items in sorted(by_family.items()):
                table.add_row(
                    dataset.name,
                    family,
                    len(items),
                    round(
                        sum(i.benefit for i in items) / total_benefit, 3
                    ),
                    round(sum(i.cost for i in items) / total_cost, 3),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table, "ablation_rule_families.txt")
    shares = {
        (row[0], row[1]): row[3] for row in table.rows
    }
    # FIN is inheritance-dominant (69 of 138 relationships).
    assert shares[("FIN", "inheritance")] > 0.3
