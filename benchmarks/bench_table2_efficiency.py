"""Table 2: efficiency of the RC and CC algorithms.

Optimization wall time at 25/50/75% space budgets on MED and FIN.
The paper's Java implementation reports 23-26ms (MED) / 188-193ms
(FIN) for RC and 34-36ms / 344-373ms for CC; we check the same
qualitative properties: well under a second, insensitive to the
budget, and FIN slower than MED.
"""

from conftest import report

from repro.bench.harness import run_efficiency


def test_table2_efficiency(benchmark, med, fin):
    table = benchmark.pedantic(
        run_efficiency, args=([med, fin],), rounds=1, iterations=1
    )
    report(table, "table2_efficiency.txt")

    by_dataset = {}
    for dataset, space, rc_ms, cc_ms in table.rows:
        by_dataset.setdefault(dataset, []).append((rc_ms, cc_ms))

    for dataset, times in by_dataset.items():
        for rc_ms, cc_ms in times:
            # Paper: "both CC and RC produce an optimized property
            # graph schema in less than one second".
            assert rc_ms < 1000, dataset
            assert cc_ms < 1000, dataset
        # Budget insensitivity, loosely (our fixpoint engine does more
        # merging work at larger budgets; see EXPERIMENTS.md).
        rc_values = [t[0] for t in times]
        assert max(rc_values) <= 4 * min(rc_values) + 50

    # FIN (138 relationships) costs more than MED (60).
    fin_rc = max(t[0] for t in by_dataset["FIN"])
    med_rc = max(t[0] for t in by_dataset["MED"])
    assert fin_rc > med_rc
