#!/usr/bin/env python
"""Fault-injection overhead + recovery benchmarks -> BENCH_faults.json.

Two questions, both acceptance criteria for the failpoint subsystem:

* **Disarmed overhead** - every WAL append now passes through
  ``faults.fire`` / ``faults.write`` hooks.  When nothing is armed each
  hook is a single ``dict.get``; this benchmark measures the end-to-end
  append cost with the real hooks against a baseline where the hooks
  are patched to raw pass-throughs.  Target: < 2% median overhead.
* **Recovery time vs WAL length** - the torn-tail scan, frame
  handling, and tmp-sweep added to recovery must keep replay linear in
  the log.  Measured at several WAL lengths so a regression in the
  per-record constant is visible as a slope change.

Run directly::

    PYTHONPATH=src python benchmarks/bench_faults.py [--out PATH]

``benchmarks/run_bench.sh`` invokes it after the storage benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.graphdb import faults
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import GraphStore, recover_graph
from repro.graphdb.storage.wal import WriteAheadLog

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Disarmed failpoint overhead budget (acceptance criterion).
MAX_OVERHEAD_PCT = 2.0

#: WAL lengths for the recovery-time curve.
WAL_LENGTHS = (1_000, 5_000, 20_000)


def timed(fn, repeats: int) -> list[float]:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return samples


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "median_ms": round(statistics.median(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "stdev_ms": round(
            statistics.stdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


# ----------------------------------------------------------------------
# Disarmed-hook overhead on the WAL append path
# ----------------------------------------------------------------------
def _append_workload(tmp: Path, ops: int) -> None:
    wal_path = tmp / "bench.rpgw"
    if wal_path.exists():
        wal_path.unlink()
    wal = WriteAheadLog(wal_path, generation=1, sync="batch")
    for i in range(ops):
        wal.append("set_property", (i % 1000, "score", float(i)))
    wal.close()


def bench_disarmed_overhead(repeats: int, ops: int = 20_000) -> dict:
    """Real (disarmed) hooks vs pass-through-patched hooks.

    The workload fsyncs ~300 times, and fsync latency is by far the
    noisiest component, so the comparison needs both a healthy sample
    count and a noise-robust estimator: the overhead is taken from the
    per-variant *minimum* (best observed run strips scheduler and
    write-back interference that hits both variants at random).
    """
    repeats = max(repeats, 15)
    faults.REGISTRY.reset()
    with tempfile.TemporaryDirectory() as tmpname:
        tmp = Path(tmpname)
        # Interleave the two variants so filesystem warm-up and cache
        # effects land on both sides instead of biasing the first.
        hooked: list[float] = []
        bare: list[float] = []
        real = (faults.fire, faults.write, faults.retrying)
        for _ in range(repeats):
            hooked.extend(timed(lambda: _append_workload(tmp, ops), 1))
            faults.fire = lambda point: None
            faults.write = lambda point, fh, data: fh.write(data)
            faults.retrying = (
                lambda op, what, attempts=5, base_delay=0.0005: op()
            )
            try:
                bare.extend(timed(lambda: _append_workload(tmp, ops), 1))
            finally:
                faults.fire, faults.write, faults.retrying = real
    overhead_pct = round(
        (min(hooked) / min(bare) - 1.0) * 100.0, 2
    )
    entry = {
        "name": "wal_append_disarmed_hook_overhead",
        "stats": stats(hooked),
        "baseline_stats": stats(bare),
        "extra": {
            "ops": ops,
            "overhead_pct": overhead_pct,
            "median_overhead_pct": round(
                (statistics.median(hooked) / statistics.median(bare)
                 - 1.0) * 100.0,
                2,
            ),
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "meets_target": overhead_pct < MAX_OVERHEAD_PCT,
        },
    }
    print(
        f"  disarmed hook overhead: {overhead_pct:+.2f}% "
        f"(budget < {MAX_OVERHEAD_PCT}%)"
    )
    return entry


# ----------------------------------------------------------------------
# Recovery time as a function of WAL length
# ----------------------------------------------------------------------
def _seed_store(data_dir: Path, wal_ops: int) -> None:
    graph = PropertyGraph("faults-bench")
    vids = [
        graph.add_vertex("Node", {"idx": i}) for i in range(200)
    ]
    store = GraphStore.create(data_dir, graph)
    for i in range(wal_ops):
        store.graph.set_property(vids[i % len(vids)], "w", i)
    store.close()


def bench_recovery_curve(repeats: int) -> list[dict]:
    entries = []
    for wal_ops in WAL_LENGTHS:
        with tempfile.TemporaryDirectory() as tmpname:
            data_dir = Path(tmpname) / "store"
            _seed_store(data_dir, wal_ops)
            samples = timed(lambda: recover_graph(data_dir), repeats)
        entry = {
            "name": f"recovery_open_wal_{wal_ops}",
            "stats": stats(samples),
            "extra": {
                "wal_ops": wal_ops,
                "ops_per_s": round(
                    wal_ops / (statistics.median(samples) / 1000.0)
                ),
            },
        }
        print(
            f"  recovery @ {wal_ops:>6} WAL ops: median "
            f"{entry['stats']['median_ms']:.1f} ms "
            f"({entry['extra']['ops_per_s']:,} ops/s)"
        )
        entries.append(entry)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_faults.json")
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    repeats = max(3, args.repeats)

    print("fault-injection benchmarks")
    benchmarks = [bench_disarmed_overhead(repeats)]
    benchmarks.extend(bench_recovery_curve(max(3, repeats // 2)))

    report = {
        "suite": "faults",
        "registered_failpoints": faults.registered_failpoints(),
        "benchmarks": benchmarks,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
