#!/usr/bin/env python
"""Morsel-parallel executor benchmarks -> BENCH_parallel.json.

Sweeps the worker pool over 1/2/4/8 processes on the MED dataset
(DIR graph, scale 10 by default so scans clear the parallel
threshold comfortably) and records, per worker count:

* **scan_aggregate** - a filtered numeric aggregation
  (``WHERE s.cohortSize > 0 RETURN sum(...)``): morsel scatter,
  masked partial folds in the workers, exact merge on the
  coordinator;
* **scan_project** - the same filter projecting rows back
  (``RETURN s.cohortSize``): morsel results are gathered and
  replayed in morsel order, so output is identical to serial;
* **pagerank** - morsel-parallel PageRank with a per-iteration
  barrier and dangling-mass reduction
  (:func:`repro.graphdb.query.parallel.parallel_pagerank`);
* **stats_build** - the parallel :class:`GraphStatistics` build
  (:func:`repro.graphdb.query.parallel.parallel_build_stats`).

``workers=1`` runs the serial path (the pool declines below two
workers), so each sweep's first entry is the baseline its speedups
are computed against.  The report records ``cpus`` (the scheduler
affinity count): speedups are only physically possible when it
exceeds 1 — on a single-CPU host the sweep still validates
correctness and measures coordination overhead honestly.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--out PATH]

``--smoke`` runs one small-scale pass (CI canary, no timing claims).
``benchmarks/run_bench.sh`` invokes the full version after the
graph-core benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.bench.harness import build_pipeline
from repro.datasets import build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.parallel import (
    parallel_build_stats,
    parallel_pagerank,
    shutdown_pool,
)
from repro.graphdb.query.vectorized import ExecutionReport
from repro.graphdb.session import GraphSession

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKER_SWEEP = (1, 2, 4, 8)

AGGREGATE_QUERY = (
    "MATCH (s:Study) WHERE s.cohortSize > 0 RETURN sum(s.cohortSize)"
)
PROJECT_QUERY = (
    "MATCH (s:Study) WHERE s.cohortSize > 0 RETURN s.cohortSize"
)


def timed(fn, repeats: int) -> list[float]:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return samples


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "median_ms": round(statistics.median(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "stdev_ms": round(
            statistics.stdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


def bench(name: str, fn, repeats: int, extra: dict | None = None) -> dict:
    fn()  # warmup (plan cache, pool spawn, shared-memory columns)
    entry = {"name": name, "stats": stats(timed(fn, repeats))}
    if extra:
        entry["extra"] = extra
    print(f"  {name}: median {entry['stats']['median_ms']:.2f} ms")
    return entry


def sweep(name: str, make_fn, repeats: int, workers_sweep, extra_fn=None):
    """One benchmark entry per worker count; speedups vs. the first
    (serial) entry of the same sweep."""
    entries = []
    base_ms = None
    for workers in workers_sweep:
        fn = make_fn(workers)
        extra = {"workers": workers}
        if extra_fn:
            extra.update(extra_fn(workers))
        entry = bench(f"{name}_w{workers}", fn, repeats, extra)
        median = entry["stats"]["median_ms"]
        if base_ms is None:
            base_ms = median
        entry["extra"]["speedup_vs_w1"] = (
            round(base_ms / median, 2) if median else None
        )
        entries.append(entry)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small-scale pass with a short sweep (CI regression "
             "canary; no timing claims)",
    )
    parser.add_argument(
        "--scale", type=float, default=None, metavar="FACTOR",
        help="dataset scale factor (default 10.0, 0.25 under --smoke); "
             "generated graphs are memoized per scale in "
             "$REPRO_SNAPSHOT_CACHE",
    )
    args = parser.parse_args(argv)
    scale = (
        args.scale if args.scale is not None
        else (0.25 if args.smoke else 10.0)
    )
    repeats = 1 if args.smoke else max(3, args.repeats)
    workers_sweep = (1, 2) if args.smoke else WORKER_SWEEP
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )

    print(f"morsel-parallel benchmarks (MED, scale {scale:g}, {cpus} cpu(s))")
    pipeline = build_pipeline(build_med(), scale=scale)
    graph = pipeline.dir_graph
    graph.freeze()  # the workers attach the frozen CSR arrays
    print(f"  {graph.summary()}")

    def make_executor(workers: int) -> Executor:
        return Executor(
            GraphSession(graph, NEO4J_LIKE),
            parallelism=workers,
            parallel_threshold=0,
        )

    def query_mode(workers: int, query: str) -> str:
        report = ExecutionReport()
        _, _, _, rows = make_executor(workers).stream(
            query, {}, report=report
        )
        list(rows)
        return report.mode

    batch = 1 if args.smoke else 10

    def make_query_fn(query: str):
        def factory(workers: int):
            executor = make_executor(workers)

            def run():
                for _ in range(batch):
                    executor.run(query)
            return run
        return factory

    rows_scanned = graph.label_count("Study")
    benchmarks = []
    benchmarks += sweep(
        "scan_aggregate", make_query_fn(AGGREGATE_QUERY), repeats,
        workers_sweep,
        lambda w: {
            "query": AGGREGATE_QUERY,
            "rows_scanned": rows_scanned,
            "runs_per_sample": batch,
            "mode": query_mode(w, AGGREGATE_QUERY),
        },
    )
    benchmarks += sweep(
        "scan_project", make_query_fn(PROJECT_QUERY), repeats,
        workers_sweep,
        lambda w: {
            "query": PROJECT_QUERY,
            "rows_scanned": rows_scanned,
            "runs_per_sample": batch,
            "mode": query_mode(w, PROJECT_QUERY),
        },
    )

    checksum: dict = {}

    def make_pagerank_fn(workers: int):
        def run():
            scores = parallel_pagerank(graph, workers=workers)
            checksum["pagerank"] = round(sum(scores.values()), 6)
        return run

    benchmarks += sweep(
        "pagerank", make_pagerank_fn,
        1 if args.smoke else max(3, repeats // 2), workers_sweep,
        lambda w: {"vertices": graph.num_vertices,
                   "edges": graph.num_edges},
    )
    for entry in benchmarks[-len(workers_sweep):]:
        entry["extra"]["checksum"] = checksum["pagerank"]

    def make_stats_fn(workers: int):
        def run():
            parallel_build_stats(graph, workers=workers)
        return run

    benchmarks += sweep(
        "stats_build", make_stats_fn, repeats, workers_sweep,
        lambda w: {"vertices": graph.num_vertices,
                   "edges": graph.num_edges},
    )

    shutdown_pool()

    report = {
        "suite": "parallel",
        "dataset": "med",
        "scale": scale,
        "cpus": cpus,
        "benchmarks": benchmarks,
    }
    if args.smoke:
        print("smoke pass complete")
        return 0
    out = Path(args.out) if args.out else REPO_ROOT / "BENCH_parallel.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
