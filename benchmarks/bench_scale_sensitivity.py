"""Scale sensitivity: how DIR/OPT speedups grow with data size.

EXPERIMENTS.md attributes the gap between the paper's large speedup
factors and ours to data scale: the DIR schema's extra traversals and
page misses grow with the instance count while OPT's local reads do
not.  This study measures Q1 (pattern) and Q11 (aggregation) at three
scales and checks the speedups are non-shrinking.
"""

from conftest import report

from repro.bench.harness import build_pipeline
from repro.bench.reporting import ExperimentTable, speedup
from repro.graphdb.backends import NEO4J_LIKE
from repro.workload.runner import run_queries


def test_scale_sensitivity(benchmark, med, fin):
    def run():
        table = ExperimentTable(
            "Speedup vs data scale (neo4j-like, ms simulated)",
            ["query", "scale", "DIR ms", "OPT ms", "speedup"],
        )
        for dataset, qid in ((med, "Q1"), (fin, "Q11")):
            for scale in (0.25, 0.5, 1.0):
                pipeline = build_pipeline(dataset, scale=scale)
                dir_run = run_queries(
                    pipeline.dir_graph, NEO4J_LIKE,
                    [(qid, dataset.queries[qid])],
                ).runs[0]
                opt_run = run_queries(
                    pipeline.opt_graph, NEO4J_LIKE,
                    [(qid, pipeline.rewritten[qid])],
                ).runs[0]
                table.add_row(
                    f"{qid}({dataset.name})", scale,
                    round(dir_run.latency_ms, 2),
                    round(opt_run.latency_ms, 2),
                    round(speedup(dir_run.latency_ms,
                                  opt_run.latency_ms), 2),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table, "scale_sensitivity.txt")
    by_query: dict[str, list[float]] = {}
    for row in table.rows:
        by_query.setdefault(row[0], []).append(row[4])
    for qid, series in by_query.items():
        # Speedups must not collapse as data grows (tolerate noise).
        assert series[-1] >= series[0] * 0.8, (qid, series)
