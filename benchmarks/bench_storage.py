#!/usr/bin/env python
"""Storage subsystem benchmarks -> BENCH_storage.json.

Measures, on the MED dataset (full scale):

* snapshot write / load throughput for the DIR and OPT graphs;
* dataset regeneration vs memoized snapshot load - regeneration is
  exactly what the snapshot cache replaces on a hit: synthesizing the
  logical instance data and running both graph loaders (the schema
  optimizer runs either way, so it is excluded from both sides);
* WAL append throughput (batched fsync) and replay rate;
* cold store recovery (snapshot + WAL tail).

Each metric is repeated and reported as aggregate stats (median, mean,
min, max, stdev) - no per-iteration dumps.  Run directly::

    PYTHONPATH=src python benchmarks/bench_storage.py [--out PATH]

``benchmarks/run_bench.sh`` invokes it after the engine benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import build_pipeline
from repro.data.loader import load_direct, load_optimized
from repro.datasets import build_med
from repro.graphdb.storage import (
    GraphStore,
    WriteAheadLog,
    read_snapshot,
    read_wal,
    recover_graph,
    replay,
    write_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Snapshot-load vs regeneration target (acceptance criterion).
TARGET_SPEEDUP = 5.0


def timed(fn, repeats: int) -> tuple[list[float], object]:
    """Run ``fn`` ``repeats`` times; (ms samples, last result)."""
    samples = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return samples, result


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "median_ms": round(statistics.median(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "stdev_ms": round(
            statistics.stdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


def bench(name: str, fn, repeats: int, extra: dict | None = None) -> dict:
    samples, _ = timed(fn, repeats)
    entry = {"name": name, "stats": stats(samples)}
    if extra:
        entry["extra"] = extra
    print(f"  {name}: median {entry['stats']['median_ms']:.1f} ms")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_storage.json")
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    repeats = max(3, args.repeats)

    print("storage benchmarks (MED, scale 1.0)")
    med = build_med()
    pipeline = build_pipeline(med, scale=1.0)
    mapping = pipeline.result.mapping
    benchmarks: list[dict] = []

    with tempfile.TemporaryDirectory() as tmpname:
        tmp = Path(tmpname)
        dir_snap = tmp / "med-dir.rpgs"
        opt_snap = tmp / "med-opt.rpgs"

        # Snapshot write ------------------------------------------------
        nbytes = write_snapshot(pipeline.dir_graph, dir_snap)
        write_samples, _ = timed(
            lambda: write_snapshot(pipeline.dir_graph, dir_snap), repeats
        )
        entry = {
            "name": "snapshot_write_med_dir",
            "stats": stats(write_samples),
            "extra": {
                "bytes": nbytes,
                "mb_per_s": round(
                    nbytes / 1e6
                    / (statistics.median(write_samples) / 1000.0),
                    1,
                ),
            },
        }
        print(f"  {entry['name']}: median "
              f"{entry['stats']['median_ms']:.1f} ms "
              f"({entry['extra']['mb_per_s']} MB/s)")
        benchmarks.append(entry)
        write_snapshot(pipeline.opt_graph, opt_snap)

        # Snapshot load vs regeneration --------------------------------
        benchmarks.append(bench(
            "snapshot_load_med_dir",
            lambda: read_snapshot(dir_snap),
            repeats,
            {"vertices": pipeline.dir_graph.num_vertices,
             "edges": pipeline.dir_graph.num_edges},
        ))
        benchmarks.append(bench(
            "snapshot_load_med_opt",
            lambda: read_snapshot(opt_snap),
            repeats,
        ))

        def regenerate():
            logical = med.logical(scale=1.0)
            load_direct(logical, name="med-DIR")
            load_optimized(logical, mapping, name="med-OPT")

        regen = bench(
            "regenerate_med_graphs", regenerate, max(3, repeats // 2)
        )
        benchmarks.append(regen)

        def memoized_load():
            read_snapshot(dir_snap)
            read_snapshot(opt_snap)

        memo = bench("memoized_load_med_graphs", memoized_load, repeats)
        speedup = round(
            regen["stats"]["median_ms"] / memo["stats"]["median_ms"], 2
        )
        memo["extra"] = {
            "speedup_vs_regeneration": speedup,
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": speedup >= TARGET_SPEEDUP,
        }
        print(f"  -> memoized load is {speedup}x faster than "
              f"regeneration (target >= {TARGET_SPEEDUP}x)")
        benchmarks.append(memo)

        # WAL append ----------------------------------------------------
        wal_ops = 20_000

        def wal_append():
            wal_path = tmp / "bench.rpgw"
            if wal_path.exists():
                wal_path.unlink()
            wal = WriteAheadLog(wal_path, generation=1, sync="batch")
            for i in range(wal_ops):
                wal.append(
                    "set_property", (i % 1000, "score", float(i))
                )
            wal.close()

        append = bench(
            "wal_append_20k_ops", wal_append, max(3, repeats // 2)
        )
        append["extra"] = {
            "ops": wal_ops,
            "ops_per_s": round(
                wal_ops / (append["stats"]["median_ms"] / 1000.0)
            ),
        }
        print(f"    ({append['extra']['ops_per_s']:,} appends/s)")
        benchmarks.append(append)

        # WAL replay ----------------------------------------------------
        replay_dir = tmp / "replay-store"
        store = GraphStore.create(replay_dir, read_snapshot(dir_snap))
        graph = store.graph
        vids = [v.vid for v in graph.iter_vertices()]
        for i in range(10_000):
            graph.set_property(vids[i % len(vids)], "w", i)
        store.close()

        scan = read_wal(
            next(replay_dir.glob("wal-*.rpgw"))
        )

        def wal_replay():
            replay(read_snapshot(dir_snap), scan)

        rep = bench(
            "wal_replay_10k_ops", wal_replay, max(3, repeats // 2)
        )
        rep["extra"] = {
            "ops": len(scan.records),
            "ops_per_s": round(
                len(scan.records) / (rep["stats"]["median_ms"] / 1000.0)
            ),
        }
        print(f"    ({rep['extra']['ops_per_s']:,} replays/s)")
        benchmarks.append(rep)

        # Cold recovery (snapshot + WAL tail) ---------------------------
        benchmarks.append(bench(
            "recovery_open_med_dir_10k_wal",
            lambda: recover_graph(replay_dir),
            max(3, repeats // 2),
        ))

    report = {
        "suite": "storage",
        "dataset": "med",
        "benchmarks": benchmarks,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
