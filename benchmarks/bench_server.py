#!/usr/bin/env python
"""Server benchmark: wire overhead and group-commit amortization.

Two measurements against a real ``GraphServer`` on a loopback socket:

* **Remote vs in-process latency** - the same point lookup and scan
  executed through ``connect(graph)`` and ``connect("repro://...")``;
  the delta is the framing + TCP round-trip cost per query.
* **Group-commit throughput** - 1 / 8 / 32 concurrent writer threads
  each committing single-vertex transactions through the server's
  single-writer path.  The ``repro_wal_group_commit_batch_size``
  histogram (count = fsyncs, sum = commits) gives the amortization
  directly.  Acceptance: at 32 writers, strictly fewer than 1 fsync
  per 4 commits (ratio < 0.25).

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py [--out PATH] [--smoke]

``benchmarks/run_bench.sh`` invokes it after the parallel sweep.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.graphdb import connect, observe
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.server import GraphServer, ServerConfig
from repro.graphdb.storage import GraphStore

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acceptance target: < 1 fsync per 4 commits at 32 writers.
TARGET_FSYNC_PER_COMMIT = 0.25

NUM_VERTICES = 2000


class ServerThread:
    """A GraphServer on its own event loop thread (bench harness)."""

    def __init__(self, database, config: ServerConfig):
        self.server = GraphServer(database, config)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        finally:
            self._started.set()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(10)
        if self.server.address is None:
            raise RuntimeError("bench server failed to start")
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(10)

    @property
    def url(self) -> str:
        host, port = self.server.address
        return f"repro://{host}:{port}"


def build_graph() -> PropertyGraph:
    g = PropertyGraph("bench-server")
    for i in range(NUM_VERTICES):
        g.add_vertex(
            "Drug", {"id": i, "name": f"drug{i}", "tier": i % 16}
        )
    g.create_property_index("Drug", "id")
    g.statistics()
    return g


def _time_queries(session, queries, iterations) -> dict:
    timings = {name: [] for name, _, _ in queries}
    for _ in range(iterations):
        for name, text, params in queries:
            started = time.perf_counter()
            session.run(text, parameters=params).consume()
            timings[name].append(time.perf_counter() - started)
    return {
        name: {
            "median_us": round(statistics.median(t) * 1e6, 1),
            "mean_us": round(statistics.fmean(t) * 1e6, 1),
        }
        for name, t in timings.items()
    }


def run_latency(iterations: int) -> dict:
    graph = build_graph()
    queries = [
        ("point_lookup",
         "MATCH (d:Drug {id: $id}) RETURN d.name", {"id": 1234}),
        ("scan_filter",
         "MATCH (d:Drug) WHERE d.tier = $t RETURN d.id", {"t": 3}),
    ]
    local_db = connect(graph)
    with local_db.session() as session:
        _time_queries(session, queries, iterations=5)  # warmup
        local = _time_queries(session, queries, iterations)
    with ServerThread(connect(graph), ServerConfig(port=0)) as harness:
        remote_db = connect(harness.url)
        with remote_db.session() as session:
            _time_queries(session, queries, iterations=5)
            remote = _time_queries(session, queries, iterations)
        remote_db.close()
    local_db.close()
    report = {"iterations": iterations, "queries": {}}
    for name, _, _ in queries:
        overhead = remote[name]["median_us"] - local[name]["median_us"]
        report["queries"][name] = {
            "in_process": local[name],
            "remote": remote[name],
            "wire_overhead_us": round(overhead, 1),
        }
    return report


def _group_commit_hist() -> tuple[int, int]:
    snap = observe.REGISTRY.snapshot()["histograms"][
        "repro_wal_group_commit_batch_size"
    ]
    return int(snap["count"]), int(snap["sum"])


def run_group_commit(writer_counts, commits_each, window) -> dict:
    results = {}
    for writers in writer_counts:
        with tempfile.TemporaryDirectory() as tmp:
            data_dir = Path(tmp) / "data"
            GraphStore.create(data_dir, PropertyGraph("gc")).close()
            config = ServerConfig(
                port=0, group_window=window, max_connections=writers + 8
            )
            with ServerThread(connect(data_dir), config) as harness:
                fsyncs_before, commits_before = _group_commit_hist()
                barrier = threading.Barrier(writers)
                errors: list[BaseException] = []

                def write(idx: int) -> None:
                    try:
                        db = connect(harness.url)
                        with db.session() as session:
                            barrier.wait()
                            for i in range(commits_each):
                                with session.begin_tx() as tx:
                                    tx.add_vertex(
                                        "W", {"w": idx, "i": i}
                                    )
                                    tx.commit()
                        db.close()
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=write, args=(i,))
                    for i in range(writers)
                ]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(120)
                elapsed = time.perf_counter() - started
                if errors:
                    raise errors[0]
                fsyncs, commits = _group_commit_hist()
                fsyncs -= fsyncs_before
                commits -= commits_before
        ratio = fsyncs / commits if commits else float("nan")
        results[str(writers)] = {
            "writers": writers,
            "commits": commits,
            "fsyncs": fsyncs,
            "fsync_per_commit": round(ratio, 4),
            "commits_per_sec": round(commits / elapsed, 1),
            "elapsed_ms": round(elapsed * 1000.0, 1),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_server.json")
    )
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--commits-each", type=int, default=8)
    parser.add_argument("--group-window", type=float, default=0.005)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast pass: fewer iterations and writer configs",
    )
    args = parser.parse_args(argv)

    iterations = 20 if args.smoke else args.iterations
    writer_counts = [1, 8] if args.smoke else [1, 8, 32]

    latency = run_latency(iterations)
    group = run_group_commit(
        writer_counts, args.commits_each, args.group_window
    )
    peak = group[str(writer_counts[-1])]
    # The acceptance gate needs the contended configuration; a smoke
    # pass only checks that batching happened at all.
    target = 1.0 if args.smoke else TARGET_FSYNC_PER_COMMIT
    passed = peak["fsync_per_commit"] < target
    report = {
        "latency": latency,
        "group_commit": group,
        "target_fsync_per_commit": target,
        "pass": passed,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"Wrote {args.out}:")
    for name, q in latency["queries"].items():
        print(
            f"  {name}: in-process {q['in_process']['median_us']:.0f} us"
            f" -> remote {q['remote']['median_us']:.0f} us"
            f" (+{q['wire_overhead_us']:.0f} us wire)"
        )
    for cfg in group.values():
        print(
            f"  group commit x{cfg['writers']:>2} writers: "
            f"{cfg['commits']} commits / {cfg['fsyncs']} fsyncs "
            f"= {cfg['fsync_per_commit']:.3f} fsync/commit "
            f"({cfg['commits_per_sec']:.0f} commits/s)"
        )
    if not passed:
        print(
            f"  FAIL: {peak['writers']} writers at "
            f"{peak['fsync_per_commit']:.3f} fsync/commit "
            f"(target < {target})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
