#!/usr/bin/env sh
# Run the engine micro-benchmarks and record the results at the repo
# root as BENCH_engine.json (the perf trajectory artifact).
#
# Usage: benchmarks/run_bench.sh [extra pytest args...]
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_engine_ops.py \
    --benchmark-only \
    --benchmark-json="$REPO_ROOT/BENCH_engine.json" \
    -q "$@"

python - <<'EOF'
import json

with open("BENCH_engine.json") as fh:
    report = json.load(fh)
print(f"\nWrote BENCH_engine.json ({len(report['benchmarks'])} benchmarks):")
for bench in report["benchmarks"]:
    median_us = bench["stats"]["median"] * 1e6
    print(f"  {bench['name']}: median {median_us:,.1f} us")
EOF
