#!/usr/bin/env bash
# Run the engine micro-benchmarks, the storage benchmarks, the
# planner benchmarks, the graph-core benchmarks, the driver-API
# benchmarks, the fault-injection benchmarks, the observability
# benchmarks, the morsel-parallel worker sweep, and the network
# server benchmarks, recording results at the repo root as
# BENCH_engine.json, BENCH_storage.json, BENCH_planner.json,
# BENCH_core.json, BENCH_api.json, BENCH_faults.json,
# BENCH_observe.json, BENCH_parallel.json, and BENCH_server.json
# (the perf trajectory artifacts).
#
# Usage: benchmarks/run_bench.sh [extra pytest args...]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest \
    benchmarks/bench_engine_ops.py \
    --benchmark-only \
    --benchmark-json="$REPO_ROOT/BENCH_engine.json" \
    -q "$@"

# pytest-benchmark dumps every raw iteration (tens of thousands of
# lines); keep only the aggregate stats per op so the artifact stays
# reviewable and diffs stay meaningful.
python - <<'EOF'
import json

with open("BENCH_engine.json") as fh:
    report = json.load(fh)
for bench in report["benchmarks"]:
    bench["stats"].pop("data", None)
with open("BENCH_engine.json", "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"\nWrote BENCH_engine.json ({len(report['benchmarks'])} benchmarks):")
for bench in report["benchmarks"]:
    median_us = bench["stats"]["median"] * 1e6
    print(f"  {bench['name']}: median {median_us:,.1f} us")
EOF

python benchmarks/bench_storage.py --out "$REPO_ROOT/BENCH_storage.json"

python benchmarks/bench_planner.py --out "$REPO_ROOT/BENCH_planner.json"

python benchmarks/bench_core.py --out "$REPO_ROOT/BENCH_core.json"

python benchmarks/bench_api.py --out "$REPO_ROOT/BENCH_api.json"

python benchmarks/bench_faults.py --out "$REPO_ROOT/BENCH_faults.json"

python benchmarks/bench_observe.py --out "$REPO_ROOT/BENCH_observe.json"

python benchmarks/bench_parallel.py --out "$REPO_ROOT/BENCH_parallel.json"

python benchmarks/bench_server.py --out "$REPO_ROOT/BENCH_server.json"
