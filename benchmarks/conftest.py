"""Shared benchmark fixtures and result reporting.

Benchmarks print each table (visible with ``pytest -s``) and also write
it under ``benchmarks/results/`` so runs leave an artifact trail.
EXPERIMENTS.md records representative outputs next to the paper's
numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import build_pipeline
from repro.bench.reporting import ExperimentTable
from repro.datasets import build_fin, build_med

RESULTS_DIR = Path(__file__).parent / "results"


def report(table: ExperimentTable, filename: str) -> None:
    text = table.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")


@pytest.fixture(scope="session")
def med():
    return build_med()


@pytest.fixture(scope="session")
def fin():
    return build_fin()


@pytest.fixture(scope="session")
def med_pipeline(med):
    return build_pipeline(med, scale=1.0)


@pytest.fixture(scope="session")
def fin_pipeline(fin):
    return build_pipeline(fin, scale=1.0)
