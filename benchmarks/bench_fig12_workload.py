"""Figure 12: total latency of a 15-query Zipf workload.

DIRECT vs OPT on both backends for MED and FIN.  The paper reports
~7x / ~22x gains on JanusGraph and ~2 orders of magnitude on Neo4j;
we check OPT wins everywhere and the neo4j-like profile gains at
least as much as janusgraph-like (disk-based systems benefit more,
Section 5.3).
"""

from conftest import report

from repro.bench.harness import run_workload_experiment


def test_fig12_workload(benchmark, med, fin):
    table = benchmark.pedantic(
        run_workload_experiment, args=([med, fin],),
        rounds=1, iterations=1,
    )
    report(table, "fig12_workload.txt")
    speedups = {}
    for dataset, backend, direct_ms, opt_ms, ratio in table.rows:
        assert opt_ms < direct_ms, (dataset, backend)
        speedups[(dataset, backend)] = ratio
    for dataset in ("MED", "FIN"):
        assert (
            speedups[(dataset, "neo4j-like")]
            >= speedups[(dataset, "janusgraph-like")] * 0.9
        )
