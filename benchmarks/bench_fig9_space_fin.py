"""Figure 9: benefit ratio vs space constraint on FIN.

FIN is inheritance-dominant; the paper observes occasional dips in the
CC curve as expensive inheritance applications exhaust the budget.
"""

from conftest import report

from repro.bench.harness import run_space_sweep


def test_fig9_space_sweep_fin(benchmark, fin):
    table = benchmark.pedantic(
        run_space_sweep, args=(fin,), rounds=1, iterations=1
    )
    report(table, "fig9_space_fin.txt")
    rc = table.column("RC BR")
    cc = table.column("CC BR")
    assert rc[-1] == 1.0 and cc[-1] == 1.0
    wins = sum(1 for r, c in zip(rc, cc) if r >= c - 1e-9)
    assert wins >= len(rc) * 0.8
