#!/usr/bin/env python
"""Cost-based vs syntactic query planning -> BENCH_planner.json.

Runs every paper workload query (Q1-Q12) on the med and fin DIR and
OPT graphs twice - once with the legacy *syntactic* planner (start at
the categorically cheapest access, expand in pattern order) and once
with the statistics-driven *cost-based* planner - and records the
simulated backend latency of both, the speedup, and whether the two
plans returned multiset-identical results (they must).

A second suite runs *selective variants* of workload queries (the
paper queries carry no WHERE clauses, so their plans differ mainly in
join order): equality-augmented forms of Q6/Q9/Q10 where the
syntactic heuristics demonstrably misfire - a poorly-selective
property index that syntactic ordering prefers by fiat, and a
"smaller label beats better histogram" tie-break.  These are where
the histogram-driven access-path choice pays off.

The deterministic simulated latency (work counters weighted by the
neo4j-like backend profile) is the headline metric - it is stable
across machines and CI; wall-clock medians are recorded alongside.
Planning time is excluded from both sides (plans are warmed before
measuring) so the comparison isolates plan *quality*; the plan cache
amortizes planning in real runs anyway.

Run directly::

    PYTHONPATH=src python benchmarks/bench_planner.py [--out PATH]

``benchmarks/run_bench.sh`` invokes it after the storage benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmark scale (matches the engine benchmarks).
SCALE = 0.5

#: Selective variants of med workload queries: (qid, query text,
#: indexes to create first as (label, prop) pairs).  Each is a paper
#: query with an equality predicate attached - the shapes produced by
#: parameterized application workloads.
SELECTIVE_MED = [
    (
        "Q6sel",
        # Parity case: the histogram confirms the syntactic choice
        # (scan :Indication checking desc), so both planners agree.
        "MATCH (d:Drug)-[:treat]->(i:Indication) "
        "WHERE i.desc = {DESC!r} RETURN d.name",
        [],
    ),
    (
        "Q9sel",
        # An index on the low-NDV Patient.gender exists and syntactic
        # ordering picks it by fiat; cost-based prices its bucket (the
        # most common gender) against the 1-row Drug.name label scan
        # and starts at the drug instead.
        "MATCH (p:Patient {{gender: {GENDER!r}}})-[:takes]->"
        "(d:Drug {{name: {NAME!r}}}) RETURN p.patientId",
        [("Patient", "gender")],
    ),
    (
        "Q10sel",
        # The same misfire via WHERE folding: both equalities fold
        # into the node specs, syntactic again grabs the poorly
        # selective gender index, cost-based starts at the unique
        # drug name.
        "MATCH (p:Patient)-[:takes]->(d:Drug) "
        "WHERE p.gender = {GENDER!r} AND d.name = {NAME!r} "
        "RETURN p.patientId, d.name",
        [],
    ),
]


def timed(fn, repeats: int) -> tuple[list[float], object]:
    samples = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return samples, result


def multiset(rows) -> list:
    return sorted(
        (
            tuple(
                tuple(sorted(map(repr, v))) if isinstance(v, list) else v
                for v in row
            )
            for row in rows
        ),
        key=repr,
    )


def compare(graph, qid: str, query, repeats: int) -> dict:
    """Run one query under both planners; return the comparison row."""
    runs = {}
    for mode, cost_based in (("syntactic", False), ("cost", True)):
        executor = Executor(
            GraphSession(graph, NEO4J_LIKE), cost_based=cost_based
        )
        # Plan once up front for both modes (the syntactic path has no
        # plan cache) so the timed loop measures execution only.
        parsed, plan = executor._prepare(query)
        executor._execute(parsed, plan)  # warm the page cache
        samples, result = timed(
            lambda: executor._execute(parsed, plan), repeats
        )
        runs[mode] = {
            "latency_ms": round(result.latency_ms, 4),
            "wall_median_ms": round(statistics.median(samples), 4),
            "rows": len(result.rows),
            "result": multiset(result.rows),
        }
    identical = runs["cost"]["result"] == runs["syntactic"]["result"]
    for run in runs.values():
        del run["result"]
    entry = {
        "qid": qid,
        "graph": graph.name,
        "syntactic": runs["syntactic"],
        "cost": runs["cost"],
        "speedup_simulated": round(
            runs["syntactic"]["latency_ms"]
            / max(runs["cost"]["latency_ms"], 1e-9),
            3,
        ),
        "results_identical": identical,
    }
    print(
        f"  {graph.name} {qid}: syn={entry['syntactic']['latency_ms']:.2f} "
        f"cost={entry['cost']['latency_ms']:.2f} ms "
        f"({entry['speedup_simulated']:.2f}x"
        f"{', MISMATCH!' if not identical else ''})"
    )
    return entry


def first_value(graph, query: str):
    result = Executor(GraphSession(graph, NEO4J_LIKE)).run(query)
    return result.rows[0][0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_planner.json")
    )
    parser.add_argument("--repeats", type=int, default=9)
    args = parser.parse_args(argv)

    comparisons = []
    print("workload suite (Q1-Q12, DIR and OPT):")
    pipelines = {}
    for build in (build_med, build_fin):
        dataset = build()
        pipeline = build_pipeline(dataset, scale=SCALE)
        pipelines[dataset.name] = pipeline
        for graph, queries in (
            (pipeline.dir_graph, dataset.queries),
            (pipeline.opt_graph, pipeline.rewritten),
        ):
            for qid in sorted(queries, key=lambda q: int(q[1:])):
                comparisons.append(
                    compare(graph, qid, queries[qid], args.repeats)
                )

    print("selective variants (med DIR):")
    med_dir = pipelines["MED"].dir_graph
    desc = first_value(
        med_dir,
        "MATCH (i:Indication) RETURN i.desc, count(*) AS n "
        "ORDER BY n DESC LIMIT 1",
    )
    gender = first_value(
        med_dir,
        "MATCH (p:Patient) RETURN p.gender, count(*) AS n "
        "ORDER BY n DESC LIMIT 1",
    )
    name = first_value(med_dir, "MATCH (d:Drug) RETURN d.name LIMIT 1")
    selective = []
    for qid, template, indexes in SELECTIVE_MED:
        for label, prop in indexes:
            med_dir.create_property_index(label, prop)
        text = template.format(DESC=desc, GENDER=gender, NAME=name)
        selective.append(compare(med_dir, qid, text, args.repeats))
    comparisons.extend(selective)

    mismatches = [c for c in comparisons if not c["results_identical"]]
    wins = [c for c in comparisons if c["speedup_simulated"] > 1.001]
    losses = [c for c in comparisons if c["speedup_simulated"] < 0.999]
    best = max(comparisons, key=lambda c: c["speedup_simulated"])
    report = {
        "suite": "planner",
        "scale": SCALE,
        "backend": NEO4J_LIKE.name,
        "summary": {
            "queries": len(comparisons),
            "wins": len(wins),
            "losses": len(losses),
            "mismatches": len(mismatches),
            "best": {
                "qid": best["qid"],
                "graph": best["graph"],
                "speedup_simulated": best["speedup_simulated"],
            },
        },
        "comparisons": comparisons,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\n{len(wins)} wins / {len(losses)} losses / "
        f"{len(mismatches)} result mismatches across "
        f"{len(comparisons)} queries; best: {best['qid']} on "
        f"{best['graph']} ({best['speedup_simulated']:.2f}x)"
    )
    print(f"wrote {out}")
    if mismatches:
        return 1  # plans must not change query semantics
    if not wins:
        return 1  # acceptance: beat syntactic ordering somewhere
    return 0


if __name__ == "__main__":
    sys.exit(main())
