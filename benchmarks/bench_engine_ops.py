"""Engine micro-benchmarks (wall-clock, multi-round).

Unlike the figure reproductions (which report deterministic simulated
latency), these measure the actual Python engine: query execution,
rule-engine fixpoint, and graph loading.  Useful for tracking
performance regressions of the library itself.
"""

import pytest

from repro.data.loader import load_direct
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.parser import parse_query
from repro.graphdb.session import GraphSession
from repro.rules.base import Selection
from repro.rules.engine import transform


@pytest.fixture(scope="module")
def med_graph(med):
    return load_direct(med.logical(scale=0.5))


def test_engine_pattern_query(benchmark, med, med_graph):
    query = parse_query(med.queries["Q1"])

    def run():
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        return executor.run(query)

    result = benchmark(run)
    assert result.rows


def test_engine_aggregation_query(benchmark, med, med_graph):
    query = parse_query(med.queries["Q9"])

    def run():
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        return executor.run(query)

    result = benchmark(run)
    assert result.rows


def test_engine_limit_query(benchmark, med, med_graph):
    """LIMIT short-circuits the streaming pipeline (far less work)."""
    query = parse_query(med.queries["Q6"] + " LIMIT 3")

    def run():
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        return executor.run(query)

    result = benchmark(run)
    assert len(result.rows) == 3


def test_engine_topk_query(benchmark, med, med_graph):
    """ORDER BY + LIMIT uses a bounded heap instead of a full sort."""
    query = parse_query(
        med.queries["Q6"] + " ORDER BY i.desc DESC LIMIT 5"
    )

    def run():
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        return executor.run(query)

    result = benchmark(run)
    assert len(result.rows) == 5


def test_engine_parser(benchmark, med):
    texts = list(med.queries.values())

    def run():
        return [parse_query(t) for t in texts]

    parsed = benchmark(run)
    assert len(parsed) == len(texts)


def test_rule_engine_fixpoint_med(benchmark, med):
    state = benchmark(transform, med.ontology, Selection.all())
    assert state.nodes


def test_graph_loading_med(benchmark, med):
    logical = med.logical(scale=0.25)
    graph = benchmark(load_direct, logical)
    assert graph.num_vertices == logical.num_instances
