"""Figure 8: benefit ratio vs space constraint on MED.

Reproduces both workload summaries (uniform and Zipf).  Expected
shapes: RC >= CC nearly everywhere, >= 50% of the benefit by ~20% of
the space, and BR = 1.0 at 100% (Theorem 3).
"""

from conftest import report

from repro.bench.harness import run_space_sweep


def test_fig8_space_sweep_med(benchmark, med):
    table = benchmark.pedantic(
        run_space_sweep, args=(med,), rounds=1, iterations=1
    )
    report(table, "fig8_space_med.txt")
    rc = table.column("RC BR")
    cc = table.column("CC BR")
    assert rc[-1] == 1.0 and cc[-1] == 1.0  # 100% budget endpoint
    # RC dominates CC (small tolerance: CC may luck into ties).
    wins = sum(1 for r, c in zip(rc, cc) if r >= c - 1e-9)
    assert wins >= len(rc) * 0.8
    # Roughly half the benefit by ~20-25% of the space (both
    # workloads; the paper reads "approximately 20%" off its plot).
    for offset in (0, len(rc) // 2):
        assert rc[offset + 7] >= 0.45   # the 0.20 fraction
        assert rc[offset + 8] >= 0.50   # the 0.25 fraction
