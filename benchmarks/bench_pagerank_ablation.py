"""Ablation: OntologyPR's modifications vs vanilla PageRank.

Algorithm 6 modifies PageRank in three ways (union rewiring,
inheritance removal + ancestor-max, reverse edges).  This ablation
measures what the CC algorithm loses when concept scores come from a
*vanilla* PageRank over the raw ontology digraph instead.
"""

from conftest import report

from repro.bench.harness import MICROBENCH_THRESHOLDS
from repro.bench.reporting import ExperimentTable
from repro.optimizer.costmodel import CostBenefitModel, RuleItem
from repro.optimizer.pagerank import ontology_pagerank, pagerank


def _vanilla_scores(ontology):
    adjacency = {c: [] for c in ontology.concepts}
    for rel in ontology.iter_relationships():
        adjacency[rel.src].append(rel.dst)
    scores, _ = pagerank(adjacency)
    return scores


def _cc_with_scores(dataset, scores, budget, model):
    """The CC selection loop with injected concept scores."""
    workload = dataset.workload("zipf")
    ranking = {
        c: scores.get(c, 0.0)
        * workload.af_concept(c)
        / max(1, dataset.stats.size_of_concept(dataset.ontology, c))
        for c in dataset.ontology.concepts
    }
    ranked = sorted(dataset.ontology.concepts,
                    key=lambda c: (-ranking[c], c))
    selected: list[RuleItem] = []
    seen = set()
    remaining = budget
    for concept in ranked:
        for item in sorted(
            model.items_touching(concept),
            key=lambda i: (-i.benefit, i.key),
        ):
            if item.key in seen:
                continue
            seen.add(item.key)
            if item.benefit > 0 and item.cost <= remaining:
                selected.append(item)
                remaining -= item.cost
    return model.benefit_ratio(selected)


def test_pagerank_ablation(benchmark, med, fin):
    def run():
        table = ExperimentTable(
            "CC quality: OntologyPR vs vanilla PageRank",
            ["dataset", "space", "CC BR (OntologyPR)",
             "CC BR (vanilla PR)"],
        )
        for dataset in (med, fin):
            workload = dataset.workload("zipf")
            model = CostBenefitModel(
                dataset.ontology, dataset.stats, workload,
                MICROBENCH_THRESHOLDS,
            )
            onto_scores = ontology_pagerank(dataset.ontology).scores
            plain_scores = _vanilla_scores(dataset.ontology)
            for fraction in (0.1, 0.25, 0.5):
                budget = model.budget_for_fraction(fraction)
                table.add_row(
                    dataset.name,
                    f"{fraction:.0%}",
                    round(_cc_with_scores(
                        dataset, onto_scores, budget, model), 4),
                    round(_cc_with_scores(
                        dataset, plain_scores, budget, model), 4),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table, "ablation_pagerank.txt")
    # Both variants must produce valid selections; OntologyPR should
    # not be systematically worse.
    onto_brs = table.column("CC BR (OntologyPR)")
    plain_brs = table.column("CC BR (vanilla PR)")
    assert sum(onto_brs) >= sum(plain_brs) * 0.85
