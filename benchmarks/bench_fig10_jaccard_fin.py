"""Figure 10: benefit ratio vs Jaccard thresholds on FIN.

The paper varies (theta1, theta2) over {(0.9, 0.1), (0.66, 0.33),
(0.6, 0.4), (0.5, 0.5)} with the budget fixed at half the (per-
threshold) NSC space overhead, and finds both algorithms robust:
>= ~0.7 BR in the worst case.
"""

from conftest import report

from repro.bench.harness import run_jaccard_sweep


def test_fig10_jaccard_sweep_fin(benchmark, fin):
    table = benchmark.pedantic(
        run_jaccard_sweep, args=(fin,), rounds=1, iterations=1
    )
    report(table, "fig10_jaccard_fin.txt")
    for value in table.column("RC BR"):
        assert value >= 0.6
    for value in table.column("CC BR"):
        assert value >= 0.4
