#!/usr/bin/env python
"""Graph-core benchmarks -> BENCH_core.json.

Measures the hot paths the columnar core refactor targets, on the MED
dataset (full scale, DIR graph):

* **full_label_scan** - an unindexed equality scan over every vertex
  of a label (``MATCH (d:Drug) WHERE d.name = ... RETURN count(*)``):
  the executor's scan operator must check the property on every
  candidate, so the per-row property access path dominates;
* **label_project_scan** - project one property for every vertex of a
  large label (aggregated so projection cost, not row materialization,
  dominates).  Timed on *both* pipelines: the headline stats are the
  default (vectorized) executor, and ``extra`` records the tuple-path
  median plus the speedup (target >=5x);
* **filtered_sum_aggregate** - a filtered numeric aggregation
  (``WHERE s.cohortSize > 0 RETURN sum(...)``): mask kernel plus
  batch fold, also timed on both pipelines (target >=5x);
* **two_hop_expand** - a 2-hop typed pattern
  (``(p:Patient)-[:takes]->(d:Drug)-[:treat]->(i:Indication)``):
  adjacency iteration dominates; both pipelines recorded;
* **stats_build** - a cold :class:`GraphStatistics` batch build (the
  pass every fresh graph pays on its first cost-based plan);
* **snapshot_load** - decoding a binary snapshot into a live graph;
* **pagerank_kernel** - the power-iteration PageRank kernel over the
  MED graph's adjacency (the same kernel Algorithm 6 runs on
  ontologies, here fed a graph-sized input).

Run directly::

    PYTHONPATH=src python benchmarks/bench_core.py [--out PATH]

``--smoke`` runs one small-scale iteration of everything (used by CI
to catch accidental complexity regressions without timing noise).
``benchmarks/run_bench.sh`` invokes the full version after the
storage benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import build_pipeline
from repro.datasets import build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession
from repro.graphdb.statistics import GraphStatistics
from repro.graphdb.storage import read_snapshot, write_snapshot
from repro.optimizer.pagerank import pagerank

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acceptance targets for the columnar-core refactor (vs. the
#: object-per-vertex baseline recorded in EXPERIMENTS.md).
TARGET_SCAN_SPEEDUP = 1.3
TARGET_STATS_SPEEDUP = 1.3
#: Acceptance target for the vectorized batch path vs. the tuple
#: pipeline on the same columnar core (scan-heavy shapes).
TARGET_VECTOR_SPEEDUP = 5.0


def timed(fn, repeats: int) -> list[float]:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return samples


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "median_ms": round(statistics.median(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "stdev_ms": round(
            statistics.stdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


def bench(name: str, fn, repeats: int, extra: dict | None = None) -> dict:
    fn()  # warmup (builds statistics / plan-cache entries once)
    entry = {"name": name, "stats": stats(timed(fn, repeats))}
    if extra:
        entry["extra"] = extra
    print(f"  {name}: median {entry['stats']['median_ms']:.2f} ms")
    return entry


def graph_adjacency(graph) -> dict[int, list[int]]:
    """Undirected adjacency mapping for the PageRank kernel."""
    adjacency: dict[int, list[int]] = {
        v.vid: [] for v in graph.iter_vertices()
    }
    for edge in graph.iter_edges():
        adjacency[edge.src].append(edge.dst)
        adjacency[edge.dst].append(edge.src)
    return adjacency


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small-scale pass of every benchmark (CI regression "
             "canary; no timing claims)",
    )
    parser.add_argument(
        "--scale", type=float, default=None, metavar="FACTOR",
        help="dataset scale factor (10-100x supported; default 1.0, "
             "0.25 under --smoke); generated graphs are memoized per "
             "scale in $REPRO_SNAPSHOT_CACHE",
    )
    args = parser.parse_args(argv)
    scale = (
        args.scale if args.scale is not None
        else (0.25 if args.smoke else 1.0)
    )
    repeats = 1 if args.smoke else max(3, args.repeats)

    print(f"graph-core benchmarks (MED, scale {scale:g})")
    pipeline = build_pipeline(build_med(), scale=scale)
    graph = pipeline.dir_graph
    print(f"  {graph.summary()}")
    executor = Executor(GraphSession(graph, NEO4J_LIKE))
    tuple_executor = Executor(
        GraphSession(graph, NEO4J_LIKE), vectorize=False
    )

    # Scan the *largest* label on its most common property: the scan
    # operator must examine every row of the label.  Queries are tiny
    # (sub-ms), so each sample runs an inner batch of executions.
    scan_label = max(graph.labels(), key=graph.label_count)
    sample = graph.vertex(graph.vertices_with_label(scan_label)[0])
    scan_prop = next(iter(sample.properties))
    scan_value = sample.properties[scan_prop]
    scan_query = (
        f"MATCH (x:{scan_label}) WHERE x.{scan_prop} = {scan_value!r} "
        "RETURN count(*)"
    )
    project_query = (
        f"MATCH (x:{scan_label}) RETURN count(x.{scan_prop})"
    )
    expand_query = (
        "MATCH (p:Patient)-[:takes]->(d:Drug)-[:treat]->(i:Indication) "
        "RETURN count(*)"
    )
    # The batch path needs the frozen CSR view for expansions; tuple
    # execution freezes on demand, so do it up front for fairness.
    graph.freeze()
    aggregate_query = (
        "MATCH (s:Study) WHERE s.cohortSize > 0 "
        "RETURN sum(s.cohortSize)"
    )
    batch = 1 if args.smoke else 40

    def batched(query: str, ex=None):
        ex = ex or executor

        def run():
            for _ in range(batch):
                ex.run(query)
        return run

    def executed_mode(query: str) -> str:
        from repro.graphdb.query.vectorized import ExecutionReport

        report = ExecutionReport()
        _, _, _, rows = executor.stream(query, {}, report=report)
        list(rows)
        return report.mode

    def paired(name: str, query: str, extra: dict) -> dict:
        """The default (vectorized) pipeline as headline stats, the
        tuple pipeline alongside, and the speedup in ``extra``."""
        entry = bench(name, batched(query), repeats, extra)
        tuple_fn = batched(query, tuple_executor)
        tuple_fn()  # warm the tuple executor's plan cache too
        tuple_stats = stats(timed(tuple_fn, repeats))
        vec_ms = entry["stats"]["median_ms"]
        tup_ms = tuple_stats["median_ms"]
        entry["extra"].update({
            "mode": executed_mode(query),
            "tuple_median_ms": tup_ms,
            "vectorized_median_ms": vec_ms,
            "speedup": round(tup_ms / vec_ms, 2) if vec_ms else None,
        })
        print(
            f"    tuple {tup_ms:.2f} ms -> "
            f"{entry['extra']['speedup']}x"
        )
        return entry

    benchmarks = [
        bench(
            "full_label_scan", batched(scan_query), repeats,
            {"label": scan_label, "prop": scan_prop,
             "rows_scanned": graph.label_count(scan_label),
             "runs_per_sample": batch,
             "target_speedup": TARGET_SCAN_SPEEDUP},
        ),
        paired(
            "label_project_scan", project_query,
            {"label": scan_label,
             "rows_scanned": graph.label_count(scan_label),
             "runs_per_sample": batch,
             "target_speedup": TARGET_VECTOR_SPEEDUP},
        ),
        paired(
            "filtered_sum_aggregate", aggregate_query,
            {"label": "Study", "prop": "cohortSize",
             "rows_scanned": graph.label_count("Study"),
             "runs_per_sample": batch,
             "target_speedup": TARGET_VECTOR_SPEEDUP},
        ),
        paired(
            "two_hop_expand", expand_query,
            {"result": executor.run(expand_query).single_value(),
             "runs_per_sample": batch},
        ),
        bench(
            "stats_build", lambda: GraphStatistics.build(graph), repeats,
            {"vertices": graph.num_vertices, "edges": graph.num_edges,
             "target_speedup": TARGET_STATS_SPEEDUP},
        ),
    ]

    with tempfile.TemporaryDirectory() as tmpname:
        snap = Path(tmpname) / "med-dir.rpgs"
        nbytes = write_snapshot(graph, snap)
        benchmarks.append(bench(
            "snapshot_load", lambda: read_snapshot(snap), repeats,
            {"bytes": nbytes},
        ))

    adjacency = graph_adjacency(graph)
    scores_holder: dict = {}

    def run_pagerank():
        scores, iterations = pagerank(adjacency, tol=1e-8)
        scores_holder["iterations"] = iterations
        scores_holder["checksum"] = round(sum(scores.values()), 6)

    benchmarks.append(bench(
        "pagerank_kernel", run_pagerank, max(3, repeats // 2) if not args.smoke else 1,
        None,
    ))
    benchmarks[-1]["extra"] = dict(scores_holder)

    report = {
        "suite": "core",
        "dataset": "med",
        "scale": scale,
        "benchmarks": benchmarks,
    }
    if args.smoke:
        print("smoke pass complete")
        return 0
    out = Path(args.out) if args.out else REPO_ROOT / "BENCH_core.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
