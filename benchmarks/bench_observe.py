#!/usr/bin/env python
"""Observability overhead benchmarks -> BENCH_observe.json.

The observability layer's acceptance criteria are cost budgets,
enforced on the hottest instrumented path - the driver query loop:

* **Disabled path** - with the registry off every metric update
  degrades to one ``enabled`` attribute check.  Measured against a
  baseline whose instrument handles are patched to raw no-ops (the
  same pass-through-patch technique ``bench_faults.py`` uses for
  disarmed failpoints).  Budget: < 2%.
* **Per-query tracing** - ``session.run(..., trace=True)`` wraps
  every pipeline step in a sampling timing generator.  Measured on a
  representative 2-step expansion workload (~150 rows/query) against
  the same workload untraced.  Budget: < 10%.
* **Metrics enabled vs disabled** - the default-on cost, reported as
  an informational number (no budget): a handful of counter/histogram
  updates plus a sampled plan-observation fold per *query*, which is
  microseconds - visible on a hot in-memory point query, noise on
  anything that touches storage.

Run directly::

    PYTHONPATH=src python benchmarks/bench_observe.py [--out PATH]

``benchmarks/run_bench.sh`` invokes it after the fault benchmarks.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

from repro.graphdb import connect, observe
from repro.graphdb.api import result as result_mod
from repro.graphdb.graph import PropertyGraph

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Disabled-path overhead budget (acceptance criterion).
MAX_DISABLED_OVERHEAD_PCT = 2.0

#: Per-query tracing overhead budget (acceptance criterion).
MAX_TRACED_OVERHEAD_PCT = 10.0


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "median_ms": round(statistics.median(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "stdev_ms": round(
            statistics.stdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


def overhead_pct(variant: list[float], base: list[float]) -> float:
    """Min-based overhead - the noise-robust estimator the fault
    benchmarks established (best observed run strips scheduler and
    write-back interference that hits both variants at random)."""
    return round((min(variant) / min(base) - 1.0) * 100.0, 2)


def build_graph() -> PropertyGraph:
    rng = random.Random(7)
    graph = PropertyGraph("observe-bench")
    drugs = [
        graph.add_vertex("Drug", {"id": i, "name": f"d{i}", "grp": i % 20})
        for i in range(1_000)
    ]
    conditions = [
        graph.add_vertex("Condition", {"cid": i}) for i in range(200)
    ]
    for drug in drugs:
        for cond in rng.sample(conditions, 3):
            graph.add_edge(drug, cond, "treats")
    graph.create_property_index("Drug", "id")
    graph.create_property_index("Drug", "grp")
    return graph


POINT_QUERY = "MATCH (d:Drug {id: $id}) RETURN d.name"
EXPAND_QUERY = (
    "MATCH (d:Drug {grp: $g})-[:treats]->(c:Condition) "
    "RETURN d.name, c.cid"
)


class _NoopInstrument:
    """Stands in for a Counter/Gauge/Histogram in the bare baseline."""

    def inc(self, *args) -> None:
        pass

    def observe(self, *args) -> None:
        pass

    def set(self, *args) -> None:
        pass


def bench_disabled_overhead(session, repeats: int, queries: int) -> dict:
    """Disabled registry vs no-op-patched instrument handles.

    The baseline patches the driver's per-query handles (and the plan
    observation store) to raw no-ops, mirroring how bench_faults
    measures disarmed failpoint hooks; both variants keep the call
    overhead, so the difference isolates the ``enabled`` checks the
    disabled path actually adds.
    """

    def workload() -> None:
        for i in range(queries):
            session.run(POINT_QUERY, id=i % 1_000).consume()

    real = (
        result_mod._QUERIES,
        result_mod._QUERY_ROWS,
        result_mod._QUERY_SECONDS,
    )
    real_record = observe.REGISTRY.plans.record
    disabled: list[float] = []
    bare: list[float] = []
    observe.REGISTRY.enabled = False
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            workload()
            disabled.append((time.perf_counter() - started) * 1000.0)

            noop = _NoopInstrument()
            result_mod._QUERIES = noop
            result_mod._QUERY_ROWS = noop
            result_mod._QUERY_SECONDS = noop
            observe.REGISTRY.plans.record = lambda *a, **k: None
            try:
                started = time.perf_counter()
                workload()
                bare.append((time.perf_counter() - started) * 1000.0)
            finally:
                (
                    result_mod._QUERIES,
                    result_mod._QUERY_ROWS,
                    result_mod._QUERY_SECONDS,
                ) = real
                observe.REGISTRY.plans.record = real_record
    finally:
        observe.REGISTRY.enabled = True
    pct = overhead_pct(disabled, bare)
    print(
        f"  disabled-path overhead: {pct:+.2f}% "
        f"(budget < {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
    return {
        "name": "point_query_disabled_vs_uninstrumented",
        "stats": stats(disabled),
        "baseline_stats": stats(bare),
        "extra": {
            "queries": queries,
            "overhead_pct": pct,
            "max_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
            "meets_target": pct < MAX_DISABLED_OVERHEAD_PCT,
        },
    }


def bench_enabled_cost(session, repeats: int, queries: int) -> dict:
    """Metrics on vs off - the default-on cost (informational)."""

    def workload() -> None:
        for i in range(queries):
            session.run(POINT_QUERY, id=i % 1_000).consume()

    enabled: list[float] = []
    disabled: list[float] = []
    for _ in range(repeats):
        observe.REGISTRY.enabled = True
        started = time.perf_counter()
        workload()
        enabled.append((time.perf_counter() - started) * 1000.0)
        observe.REGISTRY.enabled = False
        started = time.perf_counter()
        workload()
        disabled.append((time.perf_counter() - started) * 1000.0)
    observe.REGISTRY.enabled = True
    pct = overhead_pct(enabled, disabled)
    per_query_us = round(
        (min(enabled) - min(disabled)) / queries * 1000.0, 2
    )
    print(
        f"  metrics enabled cost: {pct:+.2f}% on a hot point query "
        f"(~{per_query_us} us/query, informational)"
    )
    return {
        "name": "point_query_metrics_enabled_vs_disabled",
        "stats": stats(enabled),
        "baseline_stats": stats(disabled),
        "extra": {
            "queries": queries,
            "overhead_pct": pct,
            "per_query_us": per_query_us,
            "informational": True,
        },
    }


def bench_traced_overhead(session, repeats: int, queries: int) -> dict:
    """trace=True vs untraced on the 2-step expansion workload."""

    def workload(traced: bool) -> None:
        for i in range(queries):
            session.run(EXPAND_QUERY, g=i % 20, trace=traced).consume()

    untraced: list[float] = []
    traced: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        workload(False)
        untraced.append((time.perf_counter() - started) * 1000.0)
        started = time.perf_counter()
        workload(True)
        traced.append((time.perf_counter() - started) * 1000.0)
    pct = overhead_pct(traced, untraced)
    print(
        f"  traced vs untraced: {pct:+.2f}% "
        f"(budget < {MAX_TRACED_OVERHEAD_PCT}%)"
    )
    return {
        "name": "expand_query_traced_vs_untraced",
        "stats": stats(traced),
        "baseline_stats": stats(untraced),
        "extra": {
            "queries": queries,
            "overhead_pct": pct,
            "max_overhead_pct": MAX_TRACED_OVERHEAD_PCT,
            "meets_target": pct < MAX_TRACED_OVERHEAD_PCT,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_observe.json")
    )
    parser.add_argument("--repeats", type=int, default=12)
    args = parser.parse_args(argv)
    repeats = max(5, args.repeats)

    print("observability benchmarks")
    db = connect(build_graph())
    session = db.session()
    # Warm the plan cache, statistics, and plan-observation sampling.
    for i in range(100):
        session.run(POINT_QUERY, id=i).consume()
        session.run(EXPAND_QUERY, g=i % 20).consume()

    was_enabled = observe.REGISTRY.enabled
    try:
        benchmarks = [
            bench_disabled_overhead(session, repeats, queries=2_000),
            bench_enabled_cost(session, repeats, queries=2_000),
            bench_traced_overhead(session, repeats, queries=300),
        ]
    finally:
        observe.REGISTRY.enabled = was_enabled
        session.close()
        db.close()

    report = {
        "suite": "observe",
        "registered_instruments": [
            {"name": i.name, "kind": i.kind}
            for i in observe.REGISTRY.instruments()
        ],
        "benchmarks": benchmarks,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
