"""Figure 11: the microbenchmark (Q1-Q12, DIR vs OPT, two backends).

Pattern matching (Q1-Q4), vertex property lookup (Q5-Q8) and
aggregation (Q9-Q12), with OPT produced under theta1=0.66, theta2=0.33
and a 0.5*(S_NSC - S_DIR) budget - the paper's parameters.  Expected
shapes: OPT wins pattern queries by >= ~2x, lookups and aggregations
by up to orders of magnitude, Q7 ties, and the disk-based neo4j-like
profile gains at least as much as janusgraph-like on structural
queries.
"""

from conftest import report

from repro.bench.harness import run_microbenchmark
from repro.workload.queries import query_class


def test_fig11_microbenchmark(benchmark, med, fin):
    table = benchmark.pedantic(
        run_microbenchmark, args=([med, fin],), rounds=1, iterations=1
    )
    report(table, "fig11_microbench.txt")

    by_query = {}
    for row in table.rows:
        qid = row[0].split("(")[0]
        by_query.setdefault(qid, []).append(row)

    # Q7 ties on both backends (no traversal either way).
    for row in by_query["Q7"]:
        assert abs(row[5] - 1.0) < 0.05

    # Every other query wins on OPT for at least one backend.
    for qid, rows in by_query.items():
        if qid == "Q7":
            continue
        assert max(row[5] for row in rows) > 1.2, qid

    # Aggregation queries show the biggest gains (paper: ~10x+).
    agg_speedups = [
        row[5] for row in table.rows
        if query_class(row[0].split("(")[0]) == "aggregation"
    ]
    assert max(agg_speedups) > 5.0
