#!/usr/bin/env python
"""Driver API benchmark: parameterized reuse vs literal re-parse.

The acceptance target of the driver redesign: a hot point-lookup
executed 1000 times through ``session.run(text, id=...)`` must reuse
its cached plan (zero re-plans after the warmup execution, verified
with the plan cache's own counters) and beat the literal-interpolated
equivalent - which re-parses and re-plans on every call because each
distinct value produces a distinct query text - by >= 2x wall time.

The workload is a single-vertex index lookup on a 5000-vertex graph:
small enough that *execution* is a few microseconds, which is exactly
the regime where parse + plan overhead dominates and parameterization
pays.  Distinct ids cycle past the plan cache's capacity, so the
literal loop cannot win by accidental text repetition - matching real
application traffic, where bind values are effectively unbounded.

Run directly::

    PYTHONPATH=src python benchmarks/bench_api.py [--out PATH]

``benchmarks/run_bench.sh`` invokes it after the graph-core benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.graphdb import connect
from repro.graphdb.graph import PropertyGraph

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acceptance target: parameterized >= 2x faster than literal re-parse.
TARGET_SPEEDUP = 2.0

NUM_VERTICES = 5000


def build_graph() -> PropertyGraph:
    g = PropertyGraph("bench-api")
    for i in range(NUM_VERTICES):
        g.add_vertex(
            "Drug", {"id": i, "name": f"drug{i}", "tier": i % 16}
        )
    g.create_property_index("Drug", "id")
    g.statistics()  # build outside the timed loops
    return g


def run_point_lookup(iterations: int) -> dict:
    graph = build_graph()
    stats = graph.statistics()
    db = connect(graph)
    ids = [(i * 37) % NUM_VERTICES for i in range(iterations)]

    with db.session() as session:
        # Warmup: parse + plan + cache the parameterized shape.
        session.run(
            "MATCH (d:Drug {id: $id}) RETURN d.name", id=0
        ).consume()
        misses_before = stats.plan_cache.misses
        hits_before = stats.plan_cache.hits
        started = time.perf_counter()
        for i in ids:
            session.run(
                "MATCH (d:Drug {id: $id}) RETURN d.name", id=i
            ).consume()
        parameterized_s = time.perf_counter() - started
        replans = stats.plan_cache.misses - misses_before
        hits = stats.plan_cache.hits - hits_before

    with db.session() as session:
        # Literal warmup for symmetry (its text never repeats, so this
        # only warms ancillary caches).
        session.run('MATCH (d:Drug {id: 0}) RETURN d.name').consume()
        started = time.perf_counter()
        for i in ids:
            session.run(
                f"MATCH (d:Drug {{id: {i}}}) RETURN d.name"
            ).consume()
        literal_s = time.perf_counter() - started

    speedup = literal_s / parameterized_s
    return {
        "iterations": iterations,
        "parameterized_ms": round(parameterized_s * 1000.0, 2),
        "literal_ms": round(literal_s * 1000.0, 2),
        "speedup": round(speedup, 2),
        "replans_after_warmup": replans,
        "plan_cache_hits": hits,
        "target_speedup": TARGET_SPEEDUP,
        "pass": replans == 0 and speedup >= TARGET_SPEEDUP,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_api.json")
    )
    parser.add_argument("--iterations", type=int, default=1000)
    args = parser.parse_args(argv)

    result = run_point_lookup(args.iterations)
    report = {"point_lookup": result}
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"Wrote {args.out}:")
    print(
        f"  point lookup x{result['iterations']}: "
        f"parameterized {result['parameterized_ms']:.0f} ms, "
        f"literal {result['literal_ms']:.0f} ms "
        f"-> {result['speedup']:.2f}x "
        f"(re-plans after warmup: {result['replans_after_warmup']})"
    )
    if not result["pass"]:
        print(
            f"  FAIL: target is >= {TARGET_SPEEDUP}x with 0 re-plans",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
