"""Motivating examples (Section 1, Figure 1).

Example 1: a pattern-matching query over the Drug/DrugInteraction
inheritance triangle.  Example 2: a COUNT aggregation over the 1:M
``treat`` relationship.  The paper reports ~2 orders of magnitude and
~8x respectively on its testbed; we check the optimized graph wins on
both (shape, not absolute numbers).
"""

from conftest import report

from repro.bench.harness import run_motivating


def test_motivating_examples(benchmark):
    table = benchmark.pedantic(
        run_motivating, kwargs={"scale": 1.0}, rounds=1, iterations=1
    )
    report(table, "motivating.txt")
    for row in table.rows:
        assert row[4] > 1.0, f"{row[0]} should win on the optimized PG"
