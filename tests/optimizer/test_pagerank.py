"""Tests for OntologyPR (Algorithm 6)."""

import pytest

from repro.ontology.builder import OntologyBuilder
from repro.optimizer.pagerank import ontology_pagerank, pagerank


class TestPlainPageRank:
    def test_empty_graph(self):
        scores, iterations = pagerank({})
        assert scores == {}
        assert iterations == 0

    def test_scores_sum_to_one(self):
        adjacency = {"a": ["b"], "b": ["c"], "c": ["a"]}
        scores, _ = pagerank(adjacency)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_cycle_uniform(self):
        adjacency = {"a": ["b"], "b": ["c"], "c": ["a"]}
        scores, _ = pagerank(adjacency)
        values = list(scores.values())
        assert max(values) - min(values) < 1e-9

    def test_hub_scores_higher(self):
        adjacency = {
            "hub": [], "a": ["hub"], "b": ["hub"], "c": ["hub"],
        }
        scores, _ = pagerank(adjacency)
        assert scores["hub"] > scores["a"]

    def test_dangling_mass_redistributed(self):
        adjacency = {"a": ["b"], "b": []}
        scores, _ = pagerank(adjacency)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_iterations_reported(self):
        adjacency = {"a": ["b"], "b": ["a"]}
        _, iterations = pagerank(adjacency)
        assert iterations >= 1


class TestOntologyPageRank:
    def test_every_concept_scored(self, fig2):
        result = ontology_pagerank(fig2)
        assert set(result.scores) == set(fig2.concepts)

    def test_drug_is_key_concept(self, fig2):
        # Drug has the highest degree in Figure 2; OntologyPR should
        # rank it at the top among non-derived concepts.
        result = ontology_pagerank(fig2)
        non_derived = set(fig2.concepts) - fig2.derived_concepts()
        top = max(non_derived, key=lambda c: result[c])
        assert top == "Drug"

    def test_union_concept_gets_member_score(self, fig2):
        result = ontology_pagerank(fig2)
        members = max(
            result["ContraIndication"], result["BlackBoxWarning"]
        )
        assert result["Risk"] == pytest.approx(members)

    def test_child_inherits_parent_score(self):
        # Parent is highly connected; the isolated child inherits its
        # centrality (depth-first ancestor max).
        onto = (
            OntologyBuilder()
            .concept("Hub")
            .concept("Child")
            .concept("A").concept("B").concept("C")
            .one_to_many("x", "A", "Hub")
            .one_to_many("y", "B", "Hub")
            .one_to_many("z", "C", "Hub")
            .inherits("Hub", "Child")
            .build()
        )
        result = ontology_pagerank(onto)
        assert result["Child"] == pytest.approx(result["Hub"])

    def test_child_keeps_higher_own_score(self):
        # The child is better connected than its parent: keep its own.
        onto = (
            OntologyBuilder()
            .concept("Parent")
            .concept("Child")
            .concept("A").concept("B").concept("C")
            .one_to_many("x", "A", "Child")
            .one_to_many("y", "B", "Child")
            .one_to_many("z", "C", "Child")
            .inherits("Parent", "Child")
            .build()
        )
        result = ontology_pagerank(onto)
        assert result["Child"] > result["Parent"]

    def test_undirected_treatment(self):
        # Out-degree counts like in-degree: a pure "source" hub still
        # ranks high (the reverse-edge rule of Section 4.2.1).
        onto = (
            OntologyBuilder()
            .concept("Source")
            .concept("A").concept("B").concept("C")
            .one_to_many("x", "Source", "A")
            .one_to_many("y", "Source", "B")
            .one_to_many("z", "Source", "C")
            .build()
        )
        result = ontology_pagerank(onto)
        assert result["Source"] == max(result.scores.values())

    def test_nested_unions(self):
        onto = (
            OntologyBuilder()
            .concept("Outer").concept("Inner")
            .concept("M1").concept("M2")
            .concept("N")
            .union("Outer", "Inner")
            .union("Inner", "M1", "M2")
            .one_to_many("touch", "N", "Outer")
            .build()
        )
        result = ontology_pagerank(onto)
        # Mass flowed through both union levels to the leaf members.
        assert result["M1"] > 0
        assert result["Outer"] == pytest.approx(
            max(result["M1"], result["M2"])
        )

    def test_deterministic(self, med_small):
        a = ontology_pagerank(med_small.ontology)
        b = ontology_pagerank(med_small.ontology)
        assert a.scores == b.scores
