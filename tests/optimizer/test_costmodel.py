"""Tests for the cost-benefit model (Equations 3-5)."""

import pytest

from repro.exceptions import OptimizationError
from repro.ontology.model import RelationshipType
from repro.ontology.stats import EDGE_SIZE_BYTES, synthesize_statistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.costmodel import CostBenefitModel
from repro.rules.base import Thresholds


@pytest.fixture()
def model(fig2, fig2_stats):
    workload = WorkloadSummary.uniform(fig2)
    return CostBenefitModel(fig2, fig2_stats, workload)


class TestItems:
    def test_item_kinds(self, fig2, model):
        by_type = {}
        for item in model.items:
            by_type.setdefault(item.rel_type, []).append(item)
        assert len(by_type[RelationshipType.UNION]) == 2
        assert len(by_type[RelationshipType.INHERITANCE]) == 2
        # treat -> Indication.desc; has -> DrugInteraction.summary;
        # cause -> Risk (no props, 0 items)
        one_to_many = by_type[RelationshipType.ONE_TO_MANY]
        assert all(item.prop is not None for item in one_to_many)
        # 1:1 relationships are never priced items.
        assert RelationshipType.ONE_TO_ONE not in by_type

    def test_union_cost_equation3(self, fig2, fig2_stats, model):
        union_items = [
            i for i in model.items
            if i.rel_type is RelationshipType.UNION
        ]
        cause = next(
            r for r in fig2.iter_relationships() if r.label == "cause"
        )
        expected = fig2_stats.rel_card(cause.rel_id) * EDGE_SIZE_BYTES
        for item in union_items:
            assert item.cost == expected

    def test_one_to_many_cost_equation5(self, fig2, fig2_stats, model):
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        item = next(
            i for i in model.items
            if i.rel_id == treat.rel_id and i.prop == "desc"
        )
        desc_size = fig2.concept("Indication").properties["desc"].size_bytes
        assert item.cost == fig2_stats.rel_card(treat.rel_id) * desc_size

    def test_inheritance_cost_merge_down(self, fig2, fig2_stats, model):
        # js = 0 < theta2: the parent's content moves; cost counts the
        # parent's property bytes and non-inheritance edge copies.
        inh = fig2.relationships_of_type(RelationshipType.INHERITANCE)[0]
        item = next(i for i in model.items if i.rel_id == inh.rel_id)
        parent = fig2.concept(inh.src)
        prop_bytes = sum(
            fig2_stats.card(inh.src) * p.size_bytes
            for p in parent.properties.values()
        )
        has = next(
            r for r in fig2.iter_relationships()
            if r.label == "has" and r.dst == "DrugInteraction"
        )
        edge_bytes = EDGE_SIZE_BYTES * fig2_stats.rel_card(has.rel_id)
        assert item.cost == prop_bytes + edge_bytes

    def test_middle_band_inheritance_has_no_item(self, fig2, fig2_stats):
        # With theta2 = 0 every zero-jaccard inheritance is in-band.
        model = CostBenefitModel(
            fig2, fig2_stats, thresholds=Thresholds(0.66, 0.0)
        )
        assert not any(
            i.rel_type is RelationshipType.INHERITANCE
            for i in model.items
        )

    def test_mn_items_priced_per_direction(self, med_small):
        model = CostBenefitModel(
            med_small.ontology, med_small.stats
        )
        mn_rel = med_small.ontology.relationships_of_type(
            RelationshipType.MANY_TO_MANY
        )[0]
        directions = {
            i.direction for i in model.items if i.rel_id == mn_rel.rel_id
        }
        assert directions == {"fwd", "rev"}


class TestAggregates:
    def test_totals(self, model):
        assert model.total_benefit == pytest.approx(
            sum(i.benefit for i in model.items)
        )
        assert model.total_cost == sum(i.cost for i in model.items)

    def test_budget_fraction(self, model):
        assert model.budget_for_fraction(0.0) == 0
        assert model.budget_for_fraction(1.0) == model.total_cost
        assert model.budget_for_fraction(0.5) == pytest.approx(
            model.total_cost / 2, abs=1
        )
        with pytest.raises(OptimizationError):
            model.budget_for_fraction(-0.1)

    def test_benefit_ratio(self, model):
        assert model.benefit_ratio(model.items) == pytest.approx(1.0)
        assert model.benefit_ratio([]) == 0.0

    def test_items_touching(self, fig2, model):
        items = model.items_touching("Drug")
        for item in items:
            rel = fig2.relationship(item.rel_id)
            assert rel.touches("Drug")

    def test_selection_includes_one_to_one(self, fig2, model):
        selection = model.selection_from_items([])
        one_one = fig2.relationships_of_type(
            RelationshipType.ONE_TO_ONE
        )[0]
        assert selection.has_rel(one_one.rel_id)

    def test_selection_from_items(self, fig2, model):
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        item = next(
            i for i in model.items
            if i.rel_id == treat.rel_id and i.prop == "desc"
        )
        selection = model.selection_from_items([item])
        assert selection.props_for(treat.rel_id, "fwd") == {"desc"}


class TestWorkloadSensitivity:
    def test_zipf_changes_benefits(self, fig2, fig2_stats):
        uniform = CostBenefitModel(
            fig2, fig2_stats, WorkloadSummary.uniform(fig2)
        )
        zipf = CostBenefitModel(
            fig2, fig2_stats, WorkloadSummary.zipf(fig2)
        )
        assert uniform.total_cost == zipf.total_cost  # cost is data-only
        u = {i.key: i.benefit for i in uniform.items}
        z = {i.key: i.benefit for i in zipf.items}
        assert u != z

    def test_merge_direction_benefit_factor(self, fig2_stats):
        # Merge-up uses js, merge-down uses 1-js (see DESIGN.md).
        from repro.ontology.builder import OntologyBuilder

        onto = (
            OntologyBuilder()
            .concept("P", a="STRING", b="STRING")
            .concept("Up", a="STRING", b="STRING", c="STRING")   # js 2/3
            .concept("Down", x="STRING")                          # js 0
            .inherits("P", "Up", "Down")
            .build()
        )
        stats = synthesize_statistics(onto, base_cardinality=10)
        model = CostBenefitModel(onto, stats)
        items = {
            onto.relationship(i.rel_id).dst: i for i in model.items
        }
        af = model.workload.af_relationship(
            next(iter(onto.relationships.values()))
        )
        assert items["Up"].benefit == pytest.approx(af * (2 / 3))
        assert items["Down"].benefit == pytest.approx(af * 1.0)
