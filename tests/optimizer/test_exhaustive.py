"""Tests for the exhaustive-search baseline (Section 5.4)."""

import pytest

from repro.exceptions import OptimizationError
from repro.ontology.samples import figure2_medical_ontology
from repro.optimizer import CostBenefitModel, optimize_exhaustive
from repro.optimizer.exhaustive import optimal_selection
from repro.optimizer.relation_centric import optimize_relation_centric


class TestOptimalSelection:
    def test_matches_brute_expectation(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Item:
            benefit: float
            cost: int

        items = [Item(6.0, 5), Item(5.0, 4), Item(4.0, 3)]
        chosen = optimal_selection(items, 7)
        assert sum(i.benefit for i in chosen) == pytest.approx(9.0)

    def test_free_items_always_taken(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Item:
            benefit: float
            cost: int

        items = [Item(3.0, 0), Item(1.0, 10)]
        chosen = optimal_selection(items, 0)
        assert chosen == [items[0]]

    def test_too_many_items_rejected(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Item:
            benefit: float
            cost: int

        items = [Item(1.0, 1)] * 30
        with pytest.raises(OptimizationError, match="infeasible"):
            optimal_selection(items, 10, max_items=20)


class TestOptimizeExhaustive:
    def test_rc_is_near_optimal_on_figure2(self, fig2, fig2_stats):
        """The paper's RC guarantee, checked against the true optimum."""
        model = CostBenefitModel(fig2, fig2_stats)
        for fraction in (0.1, 0.3, 0.6):
            budget = model.budget_for_fraction(fraction)
            exhaustive = optimize_exhaustive(fig2, fig2_stats, budget)
            rc = optimize_relation_centric(
                fig2, fig2_stats, budget, eps=0.05
            )
            assert rc.total_benefit >= 0.95 * exhaustive.total_benefit
            assert exhaustive.total_benefit >= rc.total_benefit - 1e-9

    def test_result_shape(self, fig2, fig2_stats):
        model = CostBenefitModel(fig2, fig2_stats)
        result = optimize_exhaustive(
            fig2, fig2_stats, model.budget_for_fraction(0.5)
        )
        assert result.algorithm == "EXH"
        assert result.total_cost <= result.space_limit
        assert result.schema.num_vertex_types > 0

    def test_med_scale_is_infeasible(self, med_small):
        """The paper: exhaustive search on MED 'failed ... after 3
        hours'; our guard rejects it upfront."""
        with pytest.raises(OptimizationError):
            optimize_exhaustive(
                med_small.ontology, med_small.stats, 10**9
            )
