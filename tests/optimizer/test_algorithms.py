"""Tests for NSC, CC, RC and the PGSG facade (Section 4)."""

import pytest

from repro.ontology.workload import WorkloadSummary
from repro.optimizer.concept_centric import (
    concept_scores,
    optimize_concept_centric,
)
from repro.optimizer.costmodel import CostBenefitModel
from repro.optimizer.nsc import optimize_nsc
from repro.optimizer.pgsg import optimize
from repro.optimizer.relation_centric import optimize_relation_centric


@pytest.fixture()
def med_model(med_small):
    workload = med_small.workload("zipf")
    return med_small, workload, CostBenefitModel(
        med_small.ontology, med_small.stats, workload
    )


class TestNsc:
    def test_br_is_one(self, fig2, fig2_stats):
        result = optimize_nsc(fig2, fig2_stats)
        assert result.benefit_ratio == 1.0
        assert result.space_limit is None
        assert result.algorithm == "NSC"

    def test_total_cost_matches_model(self, fig2, fig2_stats):
        result = optimize_nsc(fig2, fig2_stats)
        model = CostBenefitModel(fig2, fig2_stats)
        assert result.total_cost == model.total_cost

    def test_works_without_stats(self, fig2):
        result = optimize_nsc(fig2)
        assert result.schema.num_vertex_types > 0


class TestConceptScores:
    def test_equation2(self, med_model):
        dataset, workload, _ = med_model
        scores, iterations = concept_scores(
            dataset.ontology, dataset.stats, workload
        )
        assert set(scores) == set(dataset.ontology.concepts)
        assert iterations > 0
        assert all(v >= 0 for v in scores.values())


class TestBudgetBehaviour:
    @pytest.mark.parametrize("algorithm", ["rc", "cc"])
    def test_zero_budget_yields_zero_cost(self, med_model, algorithm):
        dataset, workload, model = med_model
        fn = (
            optimize_relation_centric
            if algorithm == "rc" else optimize_concept_centric
        )
        result = fn(dataset.ontology, dataset.stats, 0, workload)
        assert result.total_cost == 0
        # 1:1 merges still apply (they are free).
        assert result.selection.rel_ids

    @pytest.mark.parametrize("algorithm", ["rc", "cc"])
    def test_full_budget_reaches_br_one(self, med_model, algorithm):
        dataset, workload, model = med_model
        fn = (
            optimize_relation_centric
            if algorithm == "rc" else optimize_concept_centric
        )
        result = fn(
            dataset.ontology, dataset.stats, model.total_cost, workload
        )
        assert result.benefit_ratio == pytest.approx(1.0)

    @pytest.mark.parametrize("algorithm", ["rc", "cc"])
    def test_budget_respected(self, med_model, algorithm):
        dataset, workload, model = med_model
        fn = (
            optimize_relation_centric
            if algorithm == "rc" else optimize_concept_centric
        )
        for fraction in (0.05, 0.2, 0.5):
            budget = model.budget_for_fraction(fraction)
            result = fn(dataset.ontology, dataset.stats, budget, workload)
            assert result.total_cost <= budget
            assert 0 <= result.benefit_ratio <= 1

    def test_rc_beats_or_matches_cc(self, med_model):
        # The paper's headline comparison: RC's global ordering wins.
        dataset, workload, model = med_model
        for fraction in (0.1, 0.25, 0.5):
            budget = model.budget_for_fraction(fraction)
            rc = optimize_relation_centric(
                dataset.ontology, dataset.stats, budget, workload
            )
            cc = optimize_concept_centric(
                dataset.ontology, dataset.stats, budget, workload
            )
            assert rc.total_benefit >= cc.total_benefit * 0.95

    def test_br_monotone_in_budget_rc(self, med_model):
        dataset, workload, model = med_model
        ratios = []
        for fraction in (0.1, 0.3, 0.6, 1.0):
            budget = model.budget_for_fraction(fraction)
            result = optimize_relation_centric(
                dataset.ontology, dataset.stats, budget, workload
            )
            ratios.append(result.benefit_ratio)
        assert ratios == sorted(ratios)

    def test_full_budget_matches_nsc_collapses(self, med_model):
        """Figures 8/9 endpoint: at a 100% budget RC selects every
        priced item, reaching BR = 1.0 and exactly NSC's collapses.

        Full schema equality does not hold: Algorithm 5's fixpoint also
        propagates list properties *transitively* (Appendix A), while
        Equation 5 prices only direct (relationship, property) items -
        see DESIGN.md."""
        dataset, workload, model = med_model
        nsc = optimize_nsc(dataset.ontology, dataset.stats, workload)
        rc = optimize_relation_centric(
            dataset.ontology, dataset.stats, model.total_cost, workload
        )
        assert rc.benefit_ratio == pytest.approx(1.0)
        assert set(rc.mapping.collapsed) == set(nsc.mapping.collapsed)
        assert set(rc.schema.vertex_schemas) == set(
            nsc.schema.vertex_schemas
        )
        # Every list property RC materialized also exists on the NSC
        # schema (possibly recorded via a different transitive path).
        for repl in rc.mapping.replications:
            nsc_vertex = nsc.schema.vertex(repl.owner_node)
            assert nsc_vertex.has_property(repl.list_name), repl


class TestPgsg:
    def test_picks_higher_benefit(self, med_model):
        dataset, workload, model = med_model
        budget = model.budget_for_fraction(0.25)
        best = optimize(
            dataset.ontology, dataset.stats, budget, workload
        )
        assert best.algorithm in ("RC", "CC")
        assert best.total_benefit == max(
            best.extras["rc_benefit"], best.extras["cc_benefit"]
        )

    def test_candidates_exposed(self, med_model):
        dataset, workload, model = med_model
        budget = model.budget_for_fraction(0.25)
        best = optimize(dataset.ontology, dataset.stats, budget, workload)
        assert set(best.extras["candidates"]) == {"RC", "CC"}

    def test_none_budget_is_nsc(self, fig2, fig2_stats):
        result = optimize(fig2, fig2_stats, None)
        assert result.algorithm == "NSC"

    def test_default_workload_is_uniform(self, fig2, fig2_stats):
        result = optimize(fig2, fig2_stats, 10_000)
        assert result.algorithm in ("RC", "CC")


class TestResultSummary:
    def test_summary_text(self, fig2, fig2_stats):
        result = optimize_nsc(fig2, fig2_stats)
        text = result.summary()
        assert "NSC" in text and "BR=" in text

    def test_elapsed_recorded(self, med_model):
        dataset, workload, model = med_model
        result = optimize_relation_centric(
            dataset.ontology, dataset.stats,
            model.budget_for_fraction(0.5), workload,
        )
        assert result.elapsed_seconds > 0
        assert "knapsack_states" in result.extras
