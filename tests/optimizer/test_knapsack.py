"""Tests for the knapsack solvers, incl. the FPTAS (1-eps) guarantee."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OptimizationError
from repro.optimizer.knapsack import (
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
)


@dataclass(frozen=True)
class Item:
    benefit: float
    cost: int


def brute_force(items, capacity):
    """Exhaustive optimum for tiny instances."""
    best = 0.0
    n = len(items)
    for mask in range(1 << n):
        cost = benefit = 0
        for i in range(n):
            if mask >> i & 1:
                cost += items[i].cost
                benefit += items[i].benefit
        if cost <= capacity:
            best = max(best, benefit)
    return best


ITEMS = st.lists(
    st.tuples(
        st.floats(0.0, 100.0, allow_nan=False),
        st.integers(0, 50),
    ).map(lambda t: Item(*t)),
    min_size=0,
    max_size=10,
)


class TestFptas:
    def test_empty(self):
        result = knapsack_fptas([], 100)
        assert result.indices == []
        assert result.benefit == 0

    def test_zero_capacity_takes_free_items(self):
        items = [Item(5.0, 0), Item(3.0, 10)]
        result = knapsack_fptas(items, 0)
        assert result.indices == [0]

    def test_all_fit(self):
        items = [Item(1.0, 1), Item(2.0, 2), Item(3.0, 3)]
        result = knapsack_fptas(items, 10)
        assert sorted(result.indices) == [0, 1, 2]

    def test_classic_instance(self):
        # Optimal picks items 1+2 (benefit 9) over the greedy-ratio pick.
        items = [Item(6.0, 5), Item(5.0, 4), Item(4.0, 3)]
        result = knapsack_fptas(items, 7, eps=0.05)
        assert result.benefit == pytest.approx(9.0)

    def test_invalid_inputs(self):
        with pytest.raises(OptimizationError):
            knapsack_fptas([Item(1.0, -1)], 10)
        with pytest.raises(OptimizationError):
            knapsack_fptas([Item(-1.0, 1)], 10)
        with pytest.raises(OptimizationError):
            knapsack_fptas([], -1)
        with pytest.raises(OptimizationError):
            knapsack_fptas([], 1, eps=0)

    def test_no_duplicate_selection(self):
        items = [Item(10.0, 3)] * 4
        result = knapsack_fptas(items, 6, eps=0.05)
        assert len(result.indices) == len(set(result.indices)) == 2

    def test_result_select(self):
        items = [Item(6.0, 5), Item(5.0, 4)]
        result = knapsack_fptas(items, 5)
        chosen = result.select(items)
        assert all(isinstance(i, Item) for i in chosen)

    @settings(max_examples=60, deadline=None)
    @given(items=ITEMS, capacity=st.integers(0, 120))
    def test_guarantee_vs_brute_force(self, items, capacity):
        eps = 0.1
        result = knapsack_fptas(items, capacity, eps=eps)
        optimum = brute_force(items, capacity)
        assert result.cost <= capacity
        assert result.benefit >= (1 - eps) * optimum - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(items=ITEMS, capacity=st.integers(0, 120))
    def test_selection_is_consistent(self, items, capacity):
        result = knapsack_fptas(items, capacity)
        assert result.cost == sum(items[i].cost for i in result.indices)
        assert result.benefit == pytest.approx(
            sum(items[i].benefit for i in result.indices)
        )

    def test_max_states_cap_reports_effective_eps(self):
        items = [Item(float(i + 1), i + 1) for i in range(40)]
        result = knapsack_fptas(items, 100, eps=0.01, max_states=50)
        assert result.effective_eps > 0.01
        assert result.cost <= 100


class TestExact:
    def test_matches_brute_force(self):
        items = [Item(6.0, 5), Item(5.0, 4), Item(4.0, 3), Item(2.0, 2)]
        for capacity in range(0, 15):
            result = knapsack_exact(items, capacity)
            assert result.benefit == pytest.approx(
                brute_force(items, capacity)
            )
            assert result.cost <= capacity

    @settings(max_examples=40, deadline=None)
    @given(items=ITEMS, capacity=st.integers(0, 120))
    def test_exact_is_optimal(self, items, capacity):
        result = knapsack_exact(items, capacity)
        assert result.benefit == pytest.approx(brute_force(items, capacity))

    def test_rejects_huge_state_space(self):
        items = [Item(1.0, 10**9 + i) for i in range(200)]
        with pytest.raises(OptimizationError):
            knapsack_exact(items, 10**12, max_capacity_states=10)


class TestGreedy:
    def test_half_approximation(self):
        items = [Item(6.0, 5), Item(5.0, 4), Item(4.0, 3)]
        for capacity in range(0, 13):
            result = knapsack_greedy(items, capacity)
            optimum = brute_force(items, capacity)
            assert result.benefit >= optimum / 2 - 1e-9
            assert result.cost <= capacity

    def test_single_item_fallback(self):
        # Ratio-greedy would pick many small items; the single large
        # item is better.
        items = [Item(10.0, 10)] + [Item(1.2, 1)] * 5
        result = knapsack_greedy(items, 10)
        assert result.benefit == pytest.approx(10.0)

    @settings(max_examples=40, deadline=None)
    @given(items=ITEMS, capacity=st.integers(0, 120))
    def test_feasible(self, items, capacity):
        result = knapsack_greedy(items, capacity)
        assert result.cost <= capacity


class TestCrossSolver:
    @settings(max_examples=40, deadline=None)
    @given(items=ITEMS, capacity=st.integers(0, 120))
    def test_fptas_at_least_greedy_quality_bound(self, items, capacity):
        fptas = knapsack_fptas(items, capacity, eps=0.05)
        exact = knapsack_exact(items, capacity)
        assert fptas.benefit <= exact.benefit + 1e-9
        assert fptas.benefit >= 0.95 * exact.benefit - 1e-9
