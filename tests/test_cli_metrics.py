"""The ``repro metrics`` subcommand: JSON and Prometheus dumps."""

import json

import pytest

from repro.cli import main
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import GraphStore


@pytest.fixture()
def data_dir(tmp_path):
    g = PropertyGraph("clim")
    for i in range(4):
        g.add_vertex("Drug", {"id": i, "name": f"d{i}"})
    g.create_property_index("Drug", "id")
    store = GraphStore.create(tmp_path / "store", g)
    store.close()
    return str(tmp_path / "store")


class TestMetricsCommand:
    def test_json_snapshot(self, data_dir, capsys):
        assert main(["metrics", data_dir]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["enabled"] is True
        # Opening the store runs recovery, so the open itself counts.
        assert snap["counters"]["repro_recoveries_total"] >= 1
        assert "repro_query_seconds" in snap["histograms"]
        assert "plans" in snap

    def test_query_flag_populates_query_metrics(self, data_dir, capsys):
        before_main = main(["metrics", data_dir])
        assert before_main == 0
        before = json.loads(capsys.readouterr().out)["counters"][
            "repro_queries_total"
        ]
        assert main([
            "metrics", data_dir,
            "--query", "MATCH (d:Drug) RETURN count(*)",
            "--query", "MATCH (d:Drug) RETURN d.name",
        ]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["repro_queries_total"] == before + 2
        # Both queries share one plan shape (label scan); executions
        # accumulate under its fingerprint.
        assert sum(p["executions"] for p in snap["plans"].values()) >= 2

    def test_checkpoint_flag_counts_checkpoint(self, data_dir, capsys):
        assert main(["metrics", data_dir, "--checkpoint"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["repro_checkpoints_total"] >= 1
        assert snap["counters"]["repro_snapshot_writes_total"] >= 1
        assert snap["histograms"]["repro_checkpoint_seconds"]["count"] >= 1

    def test_prometheus_format(self, data_dir, capsys):
        assert main(["metrics", data_dir, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_recoveries_total counter" in out
        assert "# TYPE repro_query_seconds histogram" in out
        assert 'repro_query_seconds_bucket{le="+Inf"}' in out

    def test_missing_store_exits_1(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
