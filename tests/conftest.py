"""Shared fixtures: sample ontologies, small datasets, tiny pipelines."""

from __future__ import annotations

import pytest

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.ontology.samples import (
    figure1_mini_ontology,
    figure2_medical_ontology,
)
from repro.ontology.stats import synthesize_statistics


@pytest.fixture()
def fig2():
    return figure2_medical_ontology()


@pytest.fixture()
def fig1():
    return figure1_mini_ontology()


@pytest.fixture()
def fig2_stats(fig2):
    return synthesize_statistics(fig2, base_cardinality=40, seed=3)


@pytest.fixture(scope="session")
def med_small():
    return build_med(base_cardinality=30, seed=11)


@pytest.fixture(scope="session")
def fin_small():
    return build_fin(base_cardinality=6, seed=13)


@pytest.fixture(scope="session")
def med_pipeline(med_small):
    """A full MED pipeline at test scale (optimize + load + rewrite)."""
    return build_pipeline(med_small, scale=1.0)


@pytest.fixture(scope="session")
def fin_pipeline(fin_small):
    return build_pipeline(fin_small, scale=1.0)
