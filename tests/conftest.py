"""Shared fixtures: sample ontologies, small datasets, tiny pipelines."""

from __future__ import annotations

import pytest

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.ontology.samples import (
    figure1_mini_ontology,
    figure2_medical_ontology,
)
from repro.ontology.stats import synthesize_statistics


@pytest.fixture()
def fig2():
    return figure2_medical_ontology()


@pytest.fixture()
def fig1():
    return figure1_mini_ontology()


@pytest.fixture()
def fig2_stats(fig2):
    return synthesize_statistics(fig2, base_cardinality=40, seed=3)


@pytest.fixture(scope="session")
def med_small():
    return build_med(base_cardinality=30, seed=11)


@pytest.fixture(scope="session")
def fin_small():
    return build_fin(base_cardinality=6, seed=13)


@pytest.fixture(scope="session")
def diff_graph():
    """The differential-testing graph: every kernel-relevant column
    shape (typed columns with missing values, NaN floats, an object
    column, a mid-table promotion to object), plus a frozen CSR view.

    Session-scoped and shared: differential runs never mutate it (each
    run opens a fresh :class:`~repro.graphdb.session.GraphSession`, so
    work counters stay per-run)."""
    from tests.graphdb.diffquery import build_differential_graph

    return build_differential_graph()


@pytest.fixture()
def diff_gen():
    """Factory for seeded random query generators over ``diff_graph``'s
    schema: ``gen = diff_gen(seed)``; ``gen.query()`` yields
    ``(text, params)`` pairs."""
    import random

    from tests.graphdb.diffquery import QueryGen

    return lambda seed: QueryGen(random.Random(seed))


@pytest.fixture(scope="session")
def med_pipeline(med_small):
    """A full MED pipeline at test scale (optimize + load + rewrite)."""
    return build_pipeline(med_small, scale=1.0)


@pytest.fixture(scope="session")
def fin_pipeline(fin_small):
    return build_pipeline(fin_small, scale=1.0)
