"""The documentation surface must not rot: every relative markdown
link in README.md, docs/, EXPERIMENTS.md, and the storage README must
resolve (the CI docs job runs the same checker)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


def test_documentation_links_resolve(capsys):
    checker = load_checker()
    exit_code = checker.main([])
    output = capsys.readouterr().out
    assert exit_code == 0, f"broken documentation links:\n{output}"


def test_documentation_surface_exists():
    for relative in (
        "README.md",
        "docs/ARCHITECTURE.md",
        "docs/QUERY_LANGUAGE.md",
        "benchmarks/EXPERIMENTS.md",
        "src/repro/graphdb/storage/README.md",
    ):
        assert (REPO_ROOT / relative).is_file(), relative
