"""The documentation surface must not rot: every relative markdown
link in README.md, docs/, EXPERIMENTS.md, and the storage README must
resolve (the CI docs job runs the same checker)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


def test_documentation_links_resolve(capsys):
    checker = load_checker()
    exit_code = checker.main([])
    output = capsys.readouterr().out
    assert exit_code == 0, f"broken documentation links:\n{output}"


def test_documentation_surface_exists():
    for relative in (
        "README.md",
        "docs/API.md",
        "docs/ARCHITECTURE.md",
        "docs/QUERY_LANGUAGE.md",
        "benchmarks/EXPERIMENTS.md",
        "src/repro/graphdb/storage/README.md",
    ):
        assert (REPO_ROOT / relative).is_file(), relative


def test_readme_quickstart_executes(tmp_path, capsys):
    """The README's driver quickstart must run against the live API
    (the CI api-smoke job runs the same tool on the installed
    package)."""
    spec = importlib.util.spec_from_file_location(
        "run_readme_quickstart",
        REPO_ROOT / "tools" / "run_readme_quickstart.py",
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("run_readme_quickstart", module)
    spec.loader.exec_module(module)
    import os

    cwd = os.getcwd()
    try:
        exit_code = module.main(
            [str(REPO_ROOT / "README.md"), "--cwd", str(tmp_path)]
        )
    finally:
        os.chdir(cwd)
    output = capsys.readouterr()
    assert exit_code == 0, (
        f"README quickstart failed:\n{output.out}\n{output.err}"
    )
