"""Tests for vertex-sharing concept components on the mapping."""

import pytest

from repro.exceptions import SchemaError
from repro.schema.generate import direct_schema, optimize_schema_nsc


class TestComponents:
    def test_collapsed_rels_join_components(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        # Union collapse: Risk shares vertices with both members.
        assert mapping.same_component("Risk", "ContraIndication")
        assert mapping.same_component("Risk", "BlackBoxWarning")
        # Inheritance collapse: parent with children.
        assert mapping.same_component(
            "DrugInteraction", "DrugFoodInteraction"
        )
        # 1:1 merge.
        assert mapping.same_component("Indication", "Condition")

    def test_unrelated_concepts_stay_apart(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        assert not mapping.same_component("Drug", "Indication")
        assert not mapping.same_component("Drug", "Risk")

    def test_direct_schema_components_are_singletons(self, fig2):
        _, mapping = direct_schema(fig2)
        representatives = {
            mapping.component_of(c) for c in fig2.concepts
        }
        assert len(representatives) == fig2.num_concepts

    def test_unknown_concept_raises(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        with pytest.raises(SchemaError):
            mapping.component_of("Nope")

    def test_node_concepts_filters_to_ontology(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        concepts = mapping.node_concepts("IndicationCondition")
        assert concepts == {"Indication", "Condition"}
        # Merged node keys themselves are not concepts.
        assert "IndicationCondition" not in concepts

    def test_component_transitivity(self, fin_small):
        pipeline_mapping = optimize_schema_nsc(fin_small.ontology)[1]
        concepts = list(fin_small.ontology.concepts)
        for a in concepts[:6]:
            for b in concepts[:6]:
                for c in concepts[:6]:
                    if pipeline_mapping.same_component(
                        a, b
                    ) and pipeline_mapping.same_component(b, c):
                        assert pipeline_mapping.same_component(a, c)
