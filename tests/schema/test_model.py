"""Tests for the property graph schema model."""

import pytest

from repro.exceptions import SchemaError
from repro.ontology.model import DataType, RelationshipType
from repro.schema.model import (
    EdgeSchema,
    PropertyGraphSchema,
    PropertySchema,
    VertexSchema,
)


def _schema():
    schema = PropertyGraphSchema("test")
    schema.add_vertex_schema(
        VertexSchema(
            "Drug",
            frozenset(),
            {
                "name": PropertySchema("name", DataType.STRING),
                "Indication.desc": PropertySchema(
                    "Indication.desc", DataType.STRING, is_list=True
                ),
            },
        )
    )
    schema.add_vertex_schema(
        VertexSchema("Indication", frozenset({"Alias"}),
                     {"desc": PropertySchema("desc", DataType.STRING)})
    )
    schema.add_edge_schema(
        EdgeSchema("Drug", "Indication", "treat",
                   RelationshipType.ONE_TO_MANY, "r1")
    )
    return schema


class TestPropertySchema:
    def test_ddl_type(self):
        plain = PropertySchema("x", DataType.INT)
        listy = PropertySchema("x", DataType.INT, is_list=True)
        assert plain.ddl_type == "INT"
        assert listy.ddl_type == "LIST<INT>"

    def test_size(self):
        assert PropertySchema("x", DataType.INT).size_bytes == 8


class TestVertexSchema:
    def test_all_labels(self):
        vertex = VertexSchema("A", frozenset({"B"}))
        assert vertex.all_labels == {"A", "B"}

    def test_property_lookup(self):
        schema = _schema()
        drug = schema.vertex("Drug")
        assert drug.has_property("name")
        assert drug.property("name").data_type is DataType.STRING
        with pytest.raises(SchemaError):
            drug.property("missing")


class TestPropertyGraphSchema:
    def test_duplicate_vertex_rejected(self):
        schema = _schema()
        with pytest.raises(SchemaError):
            schema.add_vertex_schema(VertexSchema("Drug"))

    def test_edge_requires_known_vertices(self):
        schema = _schema()
        with pytest.raises(SchemaError):
            schema.add_edge_schema(
                EdgeSchema("Drug", "Nope", "x",
                           RelationshipType.ONE_TO_MANY, "r9")
            )

    def test_vertices_with_label_includes_extra(self):
        schema = _schema()
        found = schema.vertices_with_label("Alias")
        assert [v.label for v in found] == ["Indication"]

    def test_edges_with_label(self):
        schema = _schema()
        assert len(schema.edges_with_label("treat")) == 1
        assert schema.edges_with_label("nothing") == []

    def test_edges_of_origin(self):
        schema = _schema()
        assert len(schema.edges_of_origin("r1")) == 1

    def test_counts(self):
        schema = _schema()
        assert schema.num_vertex_types == 2
        assert schema.num_edge_types == 1
        assert schema.num_list_properties == 1

    def test_unknown_vertex(self):
        with pytest.raises(SchemaError):
            _schema().vertex("Nope")
