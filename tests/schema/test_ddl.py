"""Tests for the DDL emitters."""

from repro.schema.ddl import to_cypher_ddl, to_gsql
from repro.schema.generate import direct_schema, optimize_schema_nsc


class TestCypherDdl:
    def test_contains_vertex_definitions(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        ddl = to_cypher_ddl(schema)
        assert "Drug (" in ddl
        assert "IndicationCondition (" in ddl

    def test_edge_lines(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        ddl = to_cypher_ddl(schema)
        assert "(Drug)-[cause]->(ContraIndication)" in ddl
        assert "(Drug)-[treat]->(IndicationCondition)" in ddl

    def test_list_properties_quoted(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        ddl = to_cypher_ddl(schema)
        assert "`Indication.desc` LIST<STRING>" in ddl

    def test_direct_schema_keeps_structural_edges(self, fig2):
        schema, _ = direct_schema(fig2)
        ddl = to_cypher_ddl(schema)
        assert "[unionOf]" in ddl
        assert "[isA]" in ddl

    def test_deterministic(self, fig2):
        a, _ = optimize_schema_nsc(fig2)
        b, _ = optimize_schema_nsc(fig2)
        assert to_cypher_ddl(a) == to_cypher_ddl(b)


class TestGsql:
    def test_create_statements(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        gsql = to_gsql(schema)
        assert "CREATE VERTEX Drug" in gsql
        assert "CREATE DIRECTED EDGE" in gsql
        assert "PRIMARY_ID id STRING" in gsql

    def test_type_mapping(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        gsql = to_gsql(schema)
        assert 'LIST<STRING>' in gsql

    def test_unique_edge_names(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        gsql = to_gsql(schema)
        edge_lines = [
            line for line in gsql.splitlines()
            if line.startswith("CREATE DIRECTED EDGE")
        ]
        names = [line.split()[3] for line in edge_lines]
        assert len(names) == len(set(names))
