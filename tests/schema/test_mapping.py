"""Tests for the schema mapping (ontology -> optimized schema trace)."""

import pytest

from repro.exceptions import SchemaError
from repro.ontology.model import RelationshipType
from repro.rules.base import Selection
from repro.rules.engine import transform
from repro.schema.generate import optimize_schema_nsc
from repro.schema.mapping import CollapseKind, SchemaMapping


class TestCollapseKinds:
    def test_kinds(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        kinds = set(mapping.collapsed.values())
        assert kinds == {
            CollapseKind.UNION,
            CollapseKind.INHERIT_DOWN,
            CollapseKind.MERGE_1_1,
        }

    def test_is_collapsed(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        union_rel = fig2.relationships_of_type(RelationshipType.UNION)[0]
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        assert mapping.is_collapsed(union_rel.rel_id)
        assert mapping.collapse_kind(union_rel.rel_id) is CollapseKind.UNION
        assert not mapping.is_collapsed(treat.rel_id)
        assert mapping.collapse_kind(treat.rel_id) is None

    def test_collapsed_rel_ids_filter(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        unions = mapping.collapsed_rel_ids(CollapseKind.UNION)
        assert len(unions) == 2
        everything = mapping.collapsed_rel_ids()
        assert unions <= everything


class TestLabels:
    def test_member_carries_union_label(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        labels = mapping.labels_of_node("ContraIndication")
        assert "Risk" in labels
        assert "ContraIndication" in labels

    def test_child_carries_parent_label(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        labels = mapping.labels_of_node("DrugFoodInteraction")
        assert "DrugInteraction" in labels

    def test_merged_node_carries_both(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        labels = mapping.labels_of_node("IndicationCondition")
        assert {"Indication", "Condition"} <= labels

    def test_unknown_node_raises(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        with pytest.raises(SchemaError):
            mapping.labels_of_node("Nope")

    def test_resolve_concept(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        assert set(mapping.resolve_concept("Risk")) == {
            "ContraIndication", "BlackBoxWarning",
        }
        assert mapping.resolve_concept("Drug") == ("Drug",)


class TestReplications:
    def test_find_replication(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        repl = mapping.find_replication(treat.rel_id, "Indication", "desc")
        assert repl is not None
        assert repl.owner_node == "Drug"
        assert repl.list_name == "Indication.desc"

    def test_find_replication_missing(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        assert mapping.find_replication("r9999", "X", "y") is None

    def test_replications_for_rel(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        repls = mapping.replications_for_rel(treat.rel_id)
        assert any(r.source_property == "desc" for r in repls)

    def test_no_replications_without_selection(self, fig2):
        state = transform(fig2, Selection.none())
        mapping = SchemaMapping(fig2, state)
        assert mapping.replications == []

    def test_summary_mentions_counts(self, fig2):
        _, mapping = optimize_schema_nsc(fig2)
        text = mapping.summary()
        assert "collapsed" in text and "replicated" in text
