"""Tests for schema generation (generatePGS)."""

from repro.ontology.model import RelationshipType
from repro.schema.generate import (
    direct_schema,
    generate_schema,
    optimize_schema_nsc,
)
from repro.rules.base import Thresholds


class TestDirectSchema:
    def test_one_vertex_type_per_concept(self, fig2):
        schema, mapping = direct_schema(fig2)
        assert set(schema.vertex_schemas) == set(fig2.concepts)

    def test_one_edge_type_per_relationship(self, fig2):
        schema, _ = direct_schema(fig2)
        assert schema.num_edge_types == fig2.num_relationships

    def test_no_collapses(self, fig2):
        _, mapping = direct_schema(fig2)
        assert not mapping.collapsed
        assert not mapping.replications


class TestNscSchema:
    def test_figure4_union(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        assert "Risk" not in schema.vertex_schemas
        cause = schema.edges_with_label("cause")
        targets = {e.dst_label for e in cause}
        assert targets == {"ContraIndication", "BlackBoxWarning"}

    def test_figure5_inheritance(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        dfi = schema.vertex("DrugFoodInteraction")
        assert dfi.has_property("summary")
        assert "DrugInteraction" in dfi.extra_labels

    def test_figure6_one_to_one(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        merged = schema.vertex("IndicationCondition")
        assert set(merged.properties) == {"desc", "name"}
        assert merged.extra_labels == {"Indication", "Condition"}

    def test_figure7_list_property(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        drug = schema.vertex("Drug")
        assert drug.property("Indication.desc").is_list

    def test_no_structural_edges_left(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        for edge in schema.edge_schemas:
            assert edge.rel_type.is_functional

    def test_thresholds_affect_outcome(self, fig2):
        schema, _ = optimize_schema_nsc(
            fig2, thresholds=Thresholds(1.0, 0.0)
        )
        # Nothing falls outside [0, 1]: inheritance stays as isA edges.
        assert "DrugInteraction" in schema.vertex_schemas
        assert any(
            e.rel_type is RelationshipType.INHERITANCE
            for e in schema.edge_schemas
        )

    def test_edge_dedupe(self, fig2):
        schema, _ = optimize_schema_nsc(fig2)
        keys = [
            (e.src_label, e.dst_label, e.label, e.origin_rel)
            for e in schema.edge_schemas
        ]
        assert len(keys) == len(set(keys))


class TestGenerateFromState:
    def test_consistency_with_state(self, fig2):
        from repro.rules.engine import transform

        state = transform(fig2)
        schema, mapping = generate_schema(state, name="x")
        assert schema.name == "x"
        for key, node in state.nodes.items():
            vertex = schema.vertex(key)
            assert set(vertex.properties) == set(node.properties)
