"""The ``repro query`` subcommand: parameters, formats, exit codes."""

import json

import pytest

from repro.cli import main
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import GraphStore


@pytest.fixture()
def data_dir(tmp_path):
    g = PropertyGraph("cliq")
    for i in range(5):
        g.add_vertex("Drug", {"id": i, "name": f"d{i}", "score": i / 2})
    g.add_vertex("Condition", {"cname": "c0"})
    g.create_property_index("Drug", "id")
    store = GraphStore.create(tmp_path / "store", g)
    store.close()
    return str(tmp_path / "store")


class TestQueryCommand:
    def test_table_output(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN count(*) AS n",
        ]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "5" in out

    def test_json_output(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug {id: $id}) RETURN d.name AS name",
            "--param", "id=2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"] == ["name"]
        assert payload["rows"] == [["d2"]]
        assert payload["latency_ms"] > 0

    def test_json_output_carries_full_summary(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN d.name AS name",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["row_count"] == 5
        assert payload["elapsed_ms"] >= 0
        assert len(payload["plan_digest"]) == 12
        assert payload["metrics"]["rows"] == 5
        assert payload["parameters"] == {}

    def test_json_output_echoes_parameters(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug {id: $id}) RETURN d.name",
            "--param", "id=2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"] == {"id": 2}

    def test_trace_flag_table(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN count(*) AS n", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "parse" in out and "execute" in out
        assert "actual=5 rows" in out

    def test_trace_flag_json(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN d.name",
            "--trace", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        trace = payload["trace"]
        names = [child["name"] for child in trace["children"]]
        assert names == ["parse", "plan", "execute"]
        execute = trace["children"][-1]
        assert execute["rows"] == 5
        assert execute["children"][0]["actual_rows"] == 5

    def test_untraced_json_has_no_trace_key(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN d.name", "--format", "json",
        ]) == 0
        assert "trace" not in json.loads(capsys.readouterr().out)

    def test_param_json_and_string_values(self, data_dir, capsys):
        # score=0.5 parses as a JSON number; name falls back to str.
        assert main([
            "query", data_dir,
            "MATCH (d:Drug {score: $s, name: $n}) RETURN d.id",
            "--param", "s=0.5", "--param", "n=d1",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == [[1]]

    def test_vertex_binding_serialization(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug {id: $id}) RETURN d",
            "--param", "id=0", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == [[{"vertex": 0}]]

    def test_explain_flag(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug {id: $id}) RETURN d.name",
            "--param", "id=1", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "index lookup (Drug.id = $id)" in out

    def test_json_output_reports_pipeline_mode(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN sum(d.id) AS s",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "vectorized"
        assert payload["rows"] == [[10]]

    def test_json_mode_reports_fallback(self, data_dir, capsys):
        # LIMIT is tuple-only by design; the surfaced mode must say so.
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN d.id LIMIT 2",
            "--format", "json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["mode"] == "tuple"

    def test_explain_renders_chosen_path(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN count(*) AS n", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode=vectorized" in out

    def test_trace_renders_chosen_path(self, data_dir, capsys):
        assert main([
            "query", data_dir,
            "MATCH (d:Drug) RETURN count(*) AS n", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode=vectorized" in out

    def test_query_error_exits_1(self, data_dir, capsys):
        assert main(["query", data_dir, "MATCH (d:Drug RETURN d"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_param_exits_1(self, data_dir, capsys):
        assert main([
            "query", data_dir, "MATCH (d:Drug {id: $id}) RETURN d",
        ]) == 1
        assert "$id" in capsys.readouterr().err

    def test_missing_store_exits_1(self, tmp_path, capsys):
        assert main([
            "query", str(tmp_path / "nope"), "MATCH (d) RETURN d",
        ]) == 1

    def test_bad_param_syntax_exits_2(self, data_dir):
        with pytest.raises(SystemExit) as exc_info:
            main([
                "query", data_dir, "MATCH (d) RETURN d",
                "--param", "noequals",
            ])
        assert exc_info.value.code == 2

    def test_missing_args_exits_2(self, data_dir):
        with pytest.raises(SystemExit) as exc_info:
            main(["query", data_dir])
        assert exc_info.value.code == 2

    def test_load_on_snapshot_file_exits_cleanly(self, tmp_path, capsys):
        from repro.graphdb.graph import PropertyGraph
        from repro.graphdb.storage import write_snapshot

        g = PropertyGraph()
        g.add_vertex("A", {})
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        assert main(["load", str(path)]) == 1
        assert "not a data directory" in capsys.readouterr().err

    def test_query_accepts_snapshot_file(self, tmp_path, capsys):
        from repro.graphdb.graph import PropertyGraph
        from repro.graphdb.storage import write_snapshot

        g = PropertyGraph()
        g.add_vertex("A", {"x": 1})
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        assert main([
            "query", str(path), "MATCH (a:A) RETURN a.x",
            "--format", "json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["rows"] == [[1]]

    def test_readonly_leaves_store_untouched(self, data_dir, tmp_path):
        import os

        before = {
            name: os.path.getsize(os.path.join(data_dir, name))
            for name in os.listdir(data_dir)
        }
        assert main([
            "query", data_dir, "MATCH (d:Drug) RETURN count(*)",
        ]) == 0
        after = {
            name: os.path.getsize(os.path.join(data_dir, name))
            for name in os.listdir(data_dir)
        }
        assert before == after
