"""Tests for ontology validation."""

import pytest

from repro.exceptions import ValidationError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology, RelationshipType
from repro.ontology.validation import validate_ontology


def _chain(*rel_type_pairs):
    onto = Ontology()
    for name in "ABCD":
        onto.add_concept(name)
    for src, dst, rel_type in rel_type_pairs:
        onto.add_relationship("x", src, dst, rel_type)
    return onto


class TestValidation:
    def test_valid_ontology_passes(self, fig2):
        validate_ontology(fig2)

    def test_inheritance_cycle_detected(self):
        onto = _chain(
            ("A", "B", RelationshipType.INHERITANCE),
            ("B", "C", RelationshipType.INHERITANCE),
            ("C", "A", RelationshipType.INHERITANCE),
        )
        with pytest.raises(ValidationError, match="inheritance"):
            validate_ontology(onto)

    def test_union_cycle_detected(self):
        onto = _chain(
            ("A", "B", RelationshipType.UNION),
            ("B", "A", RelationshipType.UNION),
        )
        with pytest.raises(ValidationError, match="union"):
            validate_ontology(onto)

    def test_inheritance_dag_allowed(self):
        # Multi-parent (diamond) inheritance is valid: only cycles fail.
        onto = _chain(
            ("A", "B", RelationshipType.INHERITANCE),
            ("A", "C", RelationshipType.INHERITANCE),
            ("B", "D", RelationshipType.INHERITANCE),
            ("C", "D", RelationshipType.INHERITANCE),
        )
        validate_ontology(onto)

    def test_duplicate_functional_rejected(self):
        onto = Ontology()
        onto.add_concept("A")
        onto.add_concept("B")
        onto.add_relationship("x", "A", "B", RelationshipType.ONE_TO_MANY)
        onto.add_relationship("x", "A", "B", RelationshipType.ONE_TO_MANY)
        with pytest.raises(ValidationError, match="duplicate"):
            validate_ontology(onto)

    def test_same_label_different_endpoints_allowed(self):
        onto = Ontology()
        for name in "ABC":
            onto.add_concept(name)
        onto.add_relationship("has", "A", "B", RelationshipType.ONE_TO_MANY)
        onto.add_relationship("has", "A", "C", RelationshipType.ONE_TO_MANY)
        validate_ontology(onto)

    def test_structural_self_loop_rejected(self):
        onto = Ontology()
        onto.add_concept("A")
        onto.add_relationship("x", "A", "A", RelationshipType.INHERITANCE)
        with pytest.raises(ValidationError, match="self-loop"):
            validate_ontology(onto)

    def test_functional_self_loop_allowed(self):
        onto = Ontology()
        onto.add_concept("A")
        onto.add_relationship("x", "A", "A", RelationshipType.MANY_TO_MANY)
        validate_ontology(onto)

    def test_builder_runs_validation(self):
        with pytest.raises(ValidationError):
            (
                OntologyBuilder()
                .concept("A").concept("B")
                .union("A", "B")
                .union("B", "A")
                .build()
            )
