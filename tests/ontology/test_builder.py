"""Tests for the fluent ontology builder."""

import pytest

from repro.exceptions import OntologyError, ValidationError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import DataType, RelationshipType


class TestOntologyBuilder:
    def test_concept_with_properties(self):
        onto = (
            OntologyBuilder()
            .concept("Drug", name="STRING", doses="INT")
            .build()
        )
        drug = onto.concept("Drug")
        assert drug.properties["name"].data_type is DataType.STRING
        assert drug.properties["doses"].data_type is DataType.INT

    def test_concept_name_positional_only(self):
        # A property literally called "name" must not collide with the
        # concept-name parameter.
        onto = OntologyBuilder().concept("C", name="STRING").build()
        assert "name" in onto.concept("C").properties

    def test_concept_accepts_datatype_enum(self):
        onto = OntologyBuilder().concept("C", x=DataType.FLOAT).build()
        assert onto.concept("C").properties["x"].data_type is DataType.FLOAT

    def test_prop_method(self):
        onto = (
            OntologyBuilder()
            .concept("C")
            .prop("C", "x", "DATE")
            .build()
        )
        assert onto.concept("C").properties["x"].data_type is DataType.DATE

    def test_relationship_helpers(self):
        onto = (
            OntologyBuilder()
            .concept("A").concept("B").concept("C").concept("U")
            .one_to_one("ab", "A", "B")
            .one_to_many("ac", "A", "C")
            .many_to_many("bc", "B", "C")
            .union("U", "A", "B")
            .inherits("A", "C")
            .build(validate=False)
        )
        counts = onto.relationship_type_counts()
        assert counts[RelationshipType.ONE_TO_ONE] == 1
        assert counts[RelationshipType.ONE_TO_MANY] == 1
        assert counts[RelationshipType.MANY_TO_MANY] == 1
        assert counts[RelationshipType.UNION] == 2
        assert counts[RelationshipType.INHERITANCE] == 1

    def test_union_requires_members(self):
        builder = OntologyBuilder().concept("U")
        with pytest.raises(OntologyError):
            builder.union("U")

    def test_inherits_requires_children(self):
        builder = OntologyBuilder().concept("P")
        with pytest.raises(OntologyError):
            builder.inherits("P")

    def test_build_validates(self):
        builder = (
            OntologyBuilder()
            .concept("A").concept("B")
            .inherits("A", "B")
            .inherits("B", "A")
        )
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_consumed_once(self):
        builder = OntologyBuilder().concept("A")
        builder.build()
        with pytest.raises(OntologyError):
            builder.build()

    def test_skip_validation(self):
        onto = (
            OntologyBuilder()
            .concept("A").concept("B")
            .inherits("A", "B")
            .inherits("B", "A")
            .build(validate=False)
        )
        assert onto.num_relationships == 2
