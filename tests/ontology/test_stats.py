"""Tests for data statistics synthesis."""

import pytest

from repro.exceptions import OntologyError
from repro.ontology.model import RelationshipType
from repro.ontology.stats import (
    DataStatistics,
    EDGE_SIZE_BYTES,
    direct_graph_size_bytes,
    synthesize_statistics,
)


class TestDataStatistics:
    def test_card_lookup(self):
        stats = DataStatistics({"A": 10}, {"r1": 5})
        assert stats.card("A") == 10
        assert stats.rel_card("r1") == 5

    def test_missing_entries_raise(self):
        stats = DataStatistics()
        with pytest.raises(OntologyError):
            stats.card("A")
        with pytest.raises(OntologyError):
            stats.rel_card("r1")

    def test_scaled(self):
        stats = DataStatistics({"A": 10}, {"r1": 4})
        scaled = stats.scaled(2.5)
        assert scaled.card("A") == 25
        assert scaled.rel_card("r1") == 10

    def test_scaled_floors_at_one(self):
        stats = DataStatistics({"A": 2}, {"r1": 2})
        assert stats.scaled(0.01).card("A") == 1

    def test_validate_against(self, fig2, fig2_stats):
        fig2_stats.validate_against(fig2)
        incomplete = DataStatistics({"Drug": 5}, {})
        with pytest.raises(OntologyError, match="incomplete"):
            incomplete.validate_against(fig2)


class TestSynthesize:
    def test_covers_everything(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        stats.validate_against(fig2)

    def test_deterministic(self, fig2):
        a = synthesize_statistics(fig2, base_cardinality=100, seed=9)
        b = synthesize_statistics(fig2, base_cardinality=100, seed=9)
        assert a.concept_cardinality == b.concept_cardinality
        assert a.relationship_cardinality == b.relationship_cardinality

    def test_seed_changes_result(self, fig2):
        a = synthesize_statistics(fig2, base_cardinality=100, seed=1)
        b = synthesize_statistics(fig2, base_cardinality=100, seed=2)
        assert a.concept_cardinality != b.concept_cardinality

    def test_union_cardinality_is_member_sum(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        expected = stats.card("ContraIndication") + stats.card(
            "BlackBoxWarning"
        )
        assert stats.card("Risk") == expected

    def test_parent_cardinality_is_child_sum(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        expected = stats.card("DrugFoodInteraction") + stats.card(
            "DrugLabInteraction"
        )
        assert stats.card("DrugInteraction") == expected

    def test_one_to_one_endpoints_equal(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        assert stats.card("Indication") == stats.card("Condition")

    def test_one_to_many_edge_count(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        assert stats.rel_card(treat.rel_id) == stats.card("Indication")

    def test_inheritance_edge_count(self, fig2):
        stats = synthesize_statistics(fig2, base_cardinality=100)
        for rel in fig2.relationships_of_type(
            RelationshipType.INHERITANCE
        ):
            assert stats.rel_card(rel.rel_id) == stats.card(rel.dst)

    def test_mn_fanout(self, med_small):
        stats = med_small.stats
        for rel in med_small.ontology.relationships_of_type(
            RelationshipType.MANY_TO_MANY
        ):
            bigger = max(stats.card(rel.src), stats.card(rel.dst))
            assert stats.rel_card(rel.rel_id) == 3 * bigger


class TestDirectSize:
    def test_direct_size_formula(self, fig2, fig2_stats):
        size = direct_graph_size_bytes(fig2, fig2_stats)
        vertex_bytes = sum(
            fig2_stats.card(c.name) * max(1, c.total_property_bytes)
            for c in fig2.iter_concepts()
        )
        edge_bytes = EDGE_SIZE_BYTES * sum(
            fig2_stats.rel_card(r) for r in fig2.relationships
        )
        assert size == vertex_bytes + edge_bytes

    def test_scaling_grows_size(self, fig2, fig2_stats):
        bigger = fig2_stats.scaled(3)
        assert direct_graph_size_bytes(fig2, bigger) > \
            direct_graph_size_bytes(fig2, fig2_stats)
