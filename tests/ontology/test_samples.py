"""Tests for sample ontologies."""

from repro.ontology.model import RelationshipType
from repro.ontology.samples import (
    chain_ontology,
    figure1_mini_ontology,
    figure2_medical_ontology,
)
from repro.ontology.validation import validate_ontology


class TestSamples:
    def test_figure2_valid(self):
        validate_ontology(figure2_medical_ontology())

    def test_figure2_shape(self):
        onto = figure2_medical_ontology()
        assert onto.num_concepts == 9
        assert "Risk" in onto.union_concepts()
        assert "DrugInteraction" in onto.parent_concepts()

    def test_figure1_valid(self):
        onto = figure1_mini_ontology()
        validate_ontology(onto)
        counts = onto.relationship_type_counts()
        assert counts[RelationshipType.ONE_TO_MANY] == 2
        assert counts[RelationshipType.INHERITANCE] == 2

    def test_chain(self):
        onto = chain_ontology(4)
        validate_ontology(onto)
        assert onto.num_concepts == 4
        assert onto.num_relationships == 3
        assert all(
            r.rel_type is RelationshipType.ONE_TO_MANY
            for r in onto.iter_relationships()
        )
