"""Tests for ontology serialization."""

import pytest

from repro.exceptions import OntologyError
from repro.ontology.io import (
    dump_json,
    dumps,
    load_json,
    load_owl_functional,
    loads,
    ontology_from_dict,
    ontology_to_dict,
)
from repro.ontology.model import DataType, RelationshipType


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, fig2):
        clone = loads(dumps(fig2))
        assert clone.structurally_equal(fig2)

    def test_round_trip_preserves_rel_ids(self, fig2):
        clone = loads(dumps(fig2))
        assert set(clone.relationships) == set(fig2.relationships)

    def test_file_round_trip(self, fig2, tmp_path):
        path = tmp_path / "onto.json"
        dump_json(fig2, path)
        assert load_json(path).structurally_equal(fig2)

    def test_dict_shape(self, fig2):
        data = ontology_to_dict(fig2)
        assert data["name"] == "figure2-medical"
        assert data["concepts"]["Drug"] == {
            "name": "STRING", "brand": "STRING",
        }
        assert all("type" in r for r in data["relationships"])

    def test_malformed_document(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({"concepts": "nope"})

    def test_missing_keys(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({})


class TestOwlFunctional:
    TEXT = """
    # a tiny ontology
    Class(Drug)
    Class(Indication)
    Class(Risk)
    Class(ContraIndication)
    Class(DrugInteraction)
    Class(DrugFoodInteraction)
    DataProperty(Drug name STRING)
    DataProperty(Drug doses INT)
    ObjectProperty(treat Drug Indication 1:M)
    SubClassOf(DrugFoodInteraction DrugInteraction)
    UnionOf(Risk ContraIndication)
    """

    def test_parse(self):
        onto = load_owl_functional(self.TEXT, name="mini")
        assert onto.num_concepts == 6
        assert onto.concept("Drug").properties["doses"].data_type is DataType.INT
        counts = onto.relationship_type_counts()
        assert counts[RelationshipType.ONE_TO_MANY] == 1
        assert counts[RelationshipType.INHERITANCE] == 1
        assert counts[RelationshipType.UNION] == 1

    def test_subclassof_direction(self):
        onto = load_owl_functional(self.TEXT)
        rel = onto.relationships_of_type(RelationshipType.INHERITANCE)[0]
        # SubClassOf(child parent) becomes parent -> child.
        assert rel.src == "DrugInteraction"
        assert rel.dst == "DrugFoodInteraction"

    def test_unknown_directive(self):
        with pytest.raises(OntologyError, match="unknown directive"):
            load_owl_functional("Nope(A)")

    def test_bad_arity(self):
        with pytest.raises(OntologyError):
            load_owl_functional("Class(A B)")

    def test_missing_paren(self):
        with pytest.raises(OntologyError, match="parenthesis"):
            load_owl_functional("Class(A")

    def test_union_needs_member(self):
        with pytest.raises(OntologyError):
            load_owl_functional("Class(A)\nUnionOf(A)")
