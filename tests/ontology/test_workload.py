"""Tests for workload summaries (access frequencies)."""

import pytest

from repro.exceptions import OntologyError
from repro.ontology.workload import WorkloadSummary


class TestWorkloadSummary:
    def test_weights_normalized(self, fig2):
        wl = WorkloadSummary({"Drug": 3.0, "Indication": 1.0})
        assert sum(wl.concept_weights.values()) == pytest.approx(1.0)
        assert wl.concept_weights["Drug"] == pytest.approx(0.75)

    def test_zero_weights_rejected(self):
        with pytest.raises(OntologyError):
            WorkloadSummary({"Drug": 0.0})

    def test_af_concept_scales_with_total(self, fig2):
        wl = WorkloadSummary({"Drug": 1.0}, total_queries=500)
        assert wl.af_concept("Drug") == pytest.approx(500)
        assert wl.af_concept("Unknown") == 0.0

    def test_af_relationship_is_endpoint_mean(self, fig2):
        wl = WorkloadSummary(
            {"Drug": 1.0, "Indication": 3.0}, total_queries=400
        )
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        # weights: Drug 0.25, Indication 0.75 -> mean 0.5 -> 200 queries
        assert wl.af_relationship(treat) == pytest.approx(200)

    def test_af_property_splits_evenly(self, fig2):
        wl = WorkloadSummary({"Drug": 1.0, "Indication": 1.0})
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        af_rel = wl.af_relationship(treat)
        assert wl.af_property(treat, "desc", 2) == pytest.approx(
            af_rel / 2
        )
        assert wl.af_property(treat, "desc", 0) == 0.0

    def test_property_bias(self, fig2):
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        wl = WorkloadSummary(
            {"Drug": 1.0, "Indication": 1.0},
            property_bias={(treat.rel_id, "desc"): 2.0},
        )
        biased = wl.af_property(treat, "desc", 1)
        plain = wl.af_property(treat, "other", 1)
        assert biased == pytest.approx(2 * plain)

    def test_uniform_factory(self, fig2):
        wl = WorkloadSummary.uniform(fig2)
        values = set(round(v, 12) for v in wl.concept_weights.values())
        assert len(values) == 1
        assert wl.name == "uniform"

    def test_zipf_factory_head_heavier(self, fig2):
        wl = WorkloadSummary.zipf(fig2)
        # Drug has the highest degree in Figure 2, so it gets the most.
        assert wl.concept_weights["Drug"] == max(
            wl.concept_weights.values()
        )

    def test_zipf_s_parameter(self, fig2):
        steep = WorkloadSummary.zipf(fig2, s=2.0)
        flat = WorkloadSummary.zipf(fig2, s=0.5)
        assert steep.concept_weights["Drug"] > flat.concept_weights["Drug"]

    def test_from_counts(self):
        wl = WorkloadSummary.from_counts({"A": 30, "B": 10})
        assert wl.total_queries == 40
        assert wl.concept_weights["A"] == pytest.approx(0.75)

    def test_from_counts_rejects_zero_total(self):
        with pytest.raises(OntologyError):
            WorkloadSummary.from_counts({"A": 0})
