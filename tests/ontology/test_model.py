"""Tests for the core ontology model."""

import pytest

from repro.exceptions import OntologyError
from repro.ontology.model import (
    Concept,
    DataProperty,
    DataType,
    Ontology,
    Relationship,
    RelationshipType,
    jaccard_similarity,
)


class TestRelationshipType:
    def test_functional_types(self):
        assert RelationshipType.ONE_TO_ONE.is_functional
        assert RelationshipType.ONE_TO_MANY.is_functional
        assert RelationshipType.MANY_TO_MANY.is_functional

    def test_structural_types(self):
        assert RelationshipType.UNION.is_structural
        assert RelationshipType.INHERITANCE.is_structural
        assert not RelationshipType.ONE_TO_ONE.is_structural

    def test_value_round_trip(self):
        assert RelationshipType("1:M") is RelationshipType.ONE_TO_MANY
        assert RelationshipType("union") is RelationshipType.UNION


class TestDataType:
    def test_sizes_are_positive(self):
        for dtype in DataType:
            assert dtype.size_bytes > 0

    def test_string_bigger_than_bool(self):
        assert DataType.STRING.size_bytes > DataType.BOOL.size_bytes

    def test_from_name(self):
        assert DataType.from_name("string") is DataType.STRING
        assert DataType.from_name("INT") is DataType.INT

    def test_from_name_unknown(self):
        with pytest.raises(OntologyError):
            DataType.from_name("varchar")


class TestConcept:
    def test_add_property(self):
        concept = Concept("Drug")
        concept.add_property(DataProperty("name"))
        assert concept.property_names() == {"name"}

    def test_duplicate_property_rejected(self):
        concept = Concept("Drug")
        concept.add_property(DataProperty("name"))
        with pytest.raises(OntologyError):
            concept.add_property(DataProperty("name", DataType.INT))

    def test_total_property_bytes(self):
        concept = Concept("Drug")
        concept.add_property(DataProperty("name", DataType.STRING))
        concept.add_property(DataProperty("count", DataType.INT))
        expected = DataType.STRING.size_bytes + DataType.INT.size_bytes
        assert concept.total_property_bytes == expected

    def test_copy_is_independent(self):
        concept = Concept("Drug")
        concept.add_property(DataProperty("name"))
        clone = concept.copy()
        clone.add_property(DataProperty("brand"))
        assert "brand" not in concept.properties


class TestRelationship:
    def test_other_endpoint(self):
        rel = Relationship("r1", "treat", "Drug", "Indication",
                           RelationshipType.ONE_TO_MANY)
        assert rel.other("Drug") == "Indication"
        assert rel.other("Indication") == "Drug"

    def test_other_rejects_non_endpoint(self):
        rel = Relationship("r1", "treat", "Drug", "Indication",
                           RelationshipType.ONE_TO_MANY)
        with pytest.raises(OntologyError):
            rel.other("Patient")

    def test_touches(self):
        rel = Relationship("r1", "treat", "Drug", "Indication",
                           RelationshipType.ONE_TO_MANY)
        assert rel.touches("Drug")
        assert rel.touches("Indication")
        assert not rel.touches("Risk")


class TestOntology:
    def _simple(self) -> Ontology:
        onto = Ontology("test")
        onto.add_concept("A")
        onto.add_concept("B")
        onto.add_relationship("ab", "A", "B",
                              RelationshipType.ONE_TO_MANY)
        return onto

    def test_add_concept_by_name(self):
        onto = Ontology()
        concept = onto.add_concept("A")
        assert isinstance(concept, Concept)
        assert onto.concept("A") is concept

    def test_duplicate_concept_rejected(self):
        onto = Ontology()
        onto.add_concept("A")
        with pytest.raises(OntologyError):
            onto.add_concept("A")

    def test_relationship_unknown_endpoint(self):
        onto = Ontology()
        onto.add_concept("A")
        with pytest.raises(OntologyError):
            onto.add_relationship("x", "A", "B",
                                  RelationshipType.ONE_TO_MANY)

    def test_relationship_ids_are_stable(self):
        onto = self._simple()
        rel = next(onto.iter_relationships())
        assert rel.rel_id == "r0001"

    def test_inheritance_label_forced(self):
        onto = Ontology()
        onto.add_concept("P")
        onto.add_concept("C")
        rel = onto.add_relationship("whatever", "P", "C",
                                    RelationshipType.INHERITANCE)
        assert rel.label == "isA"

    def test_union_label_forced(self):
        onto = Ontology()
        onto.add_concept("U")
        onto.add_concept("M")
        rel = onto.add_relationship("member", "U", "M",
                                    RelationshipType.UNION)
        assert rel.label == "unionOf"

    def test_in_out_edges(self):
        onto = self._simple()
        assert [r.label for r in onto.out_edges("A")] == ["ab"]
        assert [r.label for r in onto.in_edges("B")] == ["ab"]
        assert onto.out_edges("B") == []

    def test_edges_of_is_union(self):
        onto = self._simple()
        onto.add_concept("C")
        onto.add_relationship("ca", "C", "A",
                              RelationshipType.ONE_TO_MANY)
        labels = {r.label for r in onto.edges_of("A")}
        assert labels == {"ab", "ca"}

    def test_remove_relationship(self):
        onto = self._simple()
        rel = next(onto.iter_relationships())
        onto.remove_relationship(rel.rel_id)
        assert onto.num_relationships == 0
        assert onto.out_edges("A") == []

    def test_remove_concept_cascades(self):
        onto = self._simple()
        onto.remove_concept("B")
        assert onto.num_relationships == 0
        assert "B" not in onto.concepts

    def test_find_relationship_unordered(self):
        onto = self._simple()
        assert onto.find_relationship("ab", "B", "A") is not None
        assert onto.find_relationship("ab", "A", "C") is None
        assert onto.find_relationship("xy", "A", "B") is None

    def test_union_and_parent_sets(self, fig2):
        assert fig2.union_concepts() == {"Risk"}
        assert fig2.parent_concepts() == {"DrugInteraction"}
        assert set(fig2.members_of("Risk")) == {
            "ContraIndication", "BlackBoxWarning",
        }
        assert set(fig2.children_of("DrugInteraction")) == {
            "DrugFoodInteraction", "DrugLabInteraction",
        }
        assert fig2.parents_of("DrugFoodInteraction") == [
            "DrugInteraction"
        ]

    def test_derived_concepts(self, fig2):
        assert fig2.derived_concepts() == {"Risk", "DrugInteraction"}

    def test_counts(self, fig2):
        assert fig2.num_concepts == 9
        assert fig2.num_properties == 10
        assert fig2.num_relationships == 8

    def test_relationship_type_counts(self, fig2):
        counts = fig2.relationship_type_counts()
        assert counts[RelationshipType.UNION] == 2
        assert counts[RelationshipType.INHERITANCE] == 2
        assert counts[RelationshipType.ONE_TO_ONE] == 1
        assert counts[RelationshipType.ONE_TO_MANY] == 3

    def test_copy_structural_equality(self, fig2):
        clone = fig2.copy()
        assert clone.structurally_equal(fig2)
        clone.add_concept("Extra")
        assert not clone.structurally_equal(fig2)

    def test_copy_continues_id_sequence(self, fig2):
        clone = fig2.copy()
        rel = clone.add_relationship(
            "extra", "Drug", "Indication", RelationshipType.MANY_TO_MANY
        )
        assert rel.rel_id not in fig2.relationships

    def test_unknown_lookups_raise(self):
        onto = Ontology()
        with pytest.raises(OntologyError):
            onto.concept("missing")
        with pytest.raises(OntologyError):
            onto.relationship("r9999")


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(
            1 / 3
        )

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 0.0

    def test_one_empty(self):
        assert jaccard_similarity({"a"}, set()) == 0.0
