"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_ontology, main
from repro.ontology.io import dumps
from repro.ontology.samples import figure2_medical_ontology


@pytest.fixture()
def onto_json(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(dumps(figure2_medical_ontology()))
    return str(path)


@pytest.fixture()
def onto_owl(tmp_path):
    path = tmp_path / "mini.owl"
    path.write_text(
        "Class(A)\nClass(B)\n"
        "DataProperty(A x STRING)\nDataProperty(B y STRING)\n"
        "ObjectProperty(ab A B 1:M)\n"
    )
    return str(path)


class TestLoadOntology:
    def test_json(self, onto_json):
        onto = load_ontology(onto_json)
        assert onto.num_concepts == 9

    def test_owl(self, onto_owl):
        onto = load_ontology(onto_owl)
        assert onto.num_concepts == 2

    def test_invalid_ontology_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "concepts": {"A": {}, "B": {}},
            "relationships": [
                {"label": "isA", "src": "A", "dst": "B",
                 "type": "inheritance"},
                {"label": "isA", "src": "B", "dst": "A",
                 "type": "inheritance"},
            ],
        }))
        assert main(["inspect", str(path)]) == 1


class TestOptimizeCommand:
    def test_cypher_output(self, onto_json, capsys):
        assert main(["optimize", onto_json]) == 0
        out = capsys.readouterr().out
        assert "IndicationCondition (" in out
        assert "(Drug)-[cause]->(ContraIndication)" in out

    def test_gsql_output(self, onto_json, capsys):
        assert main(
            ["optimize", onto_json, "--format", "gsql"]
        ) == 0
        assert "CREATE VERTEX" in capsys.readouterr().out

    def test_budget_and_workload_flags(self, onto_json, capsys):
        code = main([
            "optimize", onto_json, "--budget", "0.3",
            "--workload", "zipf", "--base-cardinality", "50",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_threshold_flags(self, onto_json, capsys):
        code = main([
            "optimize", onto_json, "--theta1", "1.0", "--theta2", "0.0",
        ])
        assert code == 0
        # Nothing leaves the middle band: DrugInteraction survives.
        assert "DrugInteraction (" in capsys.readouterr().out

    def test_missing_file(self):
        assert main(["optimize", "/nope/missing.json"]) == 1


class TestInspectCommand:
    def test_summary_and_ranks(self, onto_json, capsys):
        assert main(["inspect", onto_json, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ontology" in out
        assert "OntologyPR" in out
        assert "Drug" in out
        assert "rule family" in out


class TestDemoCommand:
    def test_med_demo(self, capsys):
        assert main(["demo", "med", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "MED microbenchmark" in out
        assert "Q1" in out
