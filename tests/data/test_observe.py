"""Tests for observed statistics and workload recording."""

import pytest

from repro.data.generator import generate_logical
from repro.data.loader import load_direct
from repro.data.observe import (
    WorkloadRecorder,
    statistics_from_graph,
    statistics_from_logical,
)
from repro.exceptions import DataGenerationError
from repro.graphdb.graph import PropertyGraph


@pytest.fixture()
def logical(fig2, fig2_stats):
    return generate_logical(fig2, fig2_stats, seed=3)


class TestStatisticsFromLogical:
    def test_matches_generation_stats(self, fig2, fig2_stats, logical):
        observed = statistics_from_logical(logical)
        assert observed.concept_cardinality == (
            fig2_stats.concept_cardinality
        )
        # 1:1 and inheritance counts are exact; M:N may dedupe samples.
        for rel in fig2.iter_relationships():
            assert observed.rel_card(rel.rel_id) == len(
                logical.links_of(rel.rel_id)
            )

    def test_usable_by_optimizer(self, fig2, logical):
        from repro.optimizer import CostBenefitModel

        observed = statistics_from_logical(logical)
        observed.validate_against(fig2)
        model = CostBenefitModel(fig2, observed)
        assert model.total_cost > 0


class TestStatisticsFromGraph:
    def test_round_trip_through_dir_graph(self, fig2, logical):
        graph = load_direct(logical)
        observed = statistics_from_graph(graph, fig2)
        expected = statistics_from_logical(logical)
        assert observed.concept_cardinality == (
            expected.concept_cardinality
        )
        assert observed.relationship_cardinality == (
            expected.relationship_cardinality
        )

    def test_nonconforming_graph_rejected(self, fig2):
        graph = PropertyGraph()
        a = graph.add_vertex("Drug", {})
        b = graph.add_vertex("Indication", {})
        graph.add_edge(a, b, "notInOntology")
        with pytest.raises(DataGenerationError):
            statistics_from_graph(graph, fig2)


class TestWorkloadRecorder:
    def test_counts_concept_labels(self, fig2):
        recorder = WorkloadRecorder(fig2)
        recorder.record(
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name"
        )
        recorder.record("MATCH (d:Drug) RETURN count(*)")
        assert recorder.counts["Drug"] == 2
        assert recorder.counts["Indication"] == 1
        assert recorder.queries_seen == 2

    def test_unknown_labels_ignored(self, fig2):
        recorder = WorkloadRecorder(fig2)
        recorder.record("MATCH (x:Nowhere) RETURN x")
        assert all(v == 0 for v in recorder.counts.values())

    def test_summary_weights(self, fig2):
        recorder = WorkloadRecorder(fig2)
        recorder.record_many(
            ["MATCH (d:Drug) RETURN d"] * 9
            + ["MATCH (i:Indication) RETURN i"]
        )
        summary = recorder.summary(smoothing=0.0)
        assert summary.concept_weights["Drug"] == pytest.approx(0.9)
        assert summary.name == "observed"
        assert summary.total_queries == 10

    def test_smoothing_avoids_zero_sum(self, fig2):
        recorder = WorkloadRecorder(fig2)
        recorder.record("MATCH (d:Drug) RETURN d")
        summary = recorder.summary(smoothing=1.0)
        assert all(w > 0 for w in summary.concept_weights.values())

    def test_empty_recorder_rejected(self, fig2):
        with pytest.raises(DataGenerationError):
            WorkloadRecorder(fig2).summary()

    def test_drives_optimization(self, fig2, fig2_stats):
        from repro.optimizer import optimize

        recorder = WorkloadRecorder(fig2)
        recorder.record_many(
            ["MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc"] * 5
        )
        result = optimize(
            fig2, fig2_stats, 10**7, recorder.summary()
        )
        assert result.total_benefit > 0
