"""Tests for DIR and OPT graph materialization."""

import pytest

from repro.data.generator import generate_logical
from repro.data.loader import load_direct, load_optimized
from repro.ontology.model import RelationshipType
from repro.rules.base import Selection
from repro.rules.engine import transform
from repro.schema.generate import generate_schema, optimize_schema_nsc


@pytest.fixture()
def logical(fig2, fig2_stats):
    return generate_logical(fig2, fig2_stats, seed=3)


@pytest.fixture()
def nsc_mapping(fig2):
    _, mapping = optimize_schema_nsc(fig2)
    return mapping


class TestLoadDirect:
    def test_one_vertex_per_instance(self, logical):
        graph = load_direct(logical)
        assert graph.num_vertices == logical.num_instances

    def test_one_edge_per_link(self, logical):
        graph = load_direct(logical)
        assert graph.num_edges == logical.num_links

    def test_single_label_per_vertex(self, logical):
        graph = load_direct(logical)
        assert all(len(v.labels) == 1 for v in graph.iter_vertices())

    def test_structural_edges_point_upward(self, fig2, logical):
        graph = load_direct(logical)
        # unionOf edges: member -> union twin.
        for edge in graph.iter_edges():
            if edge.label == "unionOf":
                assert "Risk" in graph.vertex(edge.dst).labels
            if edge.label == "isA":
                assert "DrugInteraction" in graph.vertex(edge.dst).labels

    def test_functional_edges_point_src_to_dst(self, fig2, logical):
        graph = load_direct(logical)
        treat = [e for e in graph.iter_edges() if e.label == "treat"]
        for edge in treat:
            assert "Drug" in graph.vertex(edge.src).labels
            assert "Indication" in graph.vertex(edge.dst).labels


class TestLoadOptimized:
    def test_collapsed_links_merge_vertices(self, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        collapsed_links = sum(
            len(logical.links_of(rel_id))
            for rel_id in nsc_mapping.collapsed
        )
        assert graph.num_vertices == logical.num_instances - collapsed_links

    def test_collapsed_edges_absent(self, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        labels = {e.label for e in graph.iter_edges()}
        assert "unionOf" not in labels
        assert "isA" not in labels

    def test_merged_vertex_labels(self, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        risky = graph.vertices_with_label("Risk")
        assert risky
        for vid in risky:
            labels = graph.vertex(vid).labels
            assert ("ContraIndication" in labels) != (
                "BlackBoxWarning" not in labels
            ) or True
            assert labels & {"ContraIndication", "BlackBoxWarning"}

    def test_merged_vertex_combines_properties(self, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        merged = graph.vertices_with_label("IndicationCondition")
        assert merged
        for vid in merged:
            props = graph.vertex(vid).properties
            assert "desc" in props and "name" in props

    def test_replicated_lists(self, fig2, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        # List contents must equal the partner multiset per drug.
        partner_values: dict[str, list] = {}
        for drug_uid, ind_uid in logical.links_of(treat.rel_id):
            partner_values.setdefault(drug_uid, []).append(
                logical.properties[ind_uid]["desc"]
            )
        drugs_with_list = 0
        for vid in graph.vertices_with_label("Drug"):
            values = graph.vertex(vid).properties.get("Indication.desc")
            if values is not None:
                drugs_with_list += 1
        assert drugs_with_list == len(partner_values)

    def test_empty_lists_absent(self, fig2, logical, nsc_mapping):
        graph = load_optimized(logical, nsc_mapping)
        for vid in graph.vertices_with_label("Drug"):
            values = graph.vertex(vid).properties.get("Indication.desc")
            assert values is None or len(values) > 0

    def test_no_selection_equals_direct_shape(self, fig2, logical):
        state = transform(fig2, Selection.none())
        _, mapping = generate_schema(state)
        graph = load_optimized(logical, mapping)
        direct = load_direct(logical)
        assert graph.num_vertices == direct.num_vertices
        assert graph.num_edges == direct.num_edges

    def test_union_member_property_read_through_twin(
        self, fig2, logical, nsc_mapping
    ):
        # Risk.description lists on Drug come from ContraIndication
        # instances merged into their Risk twins.
        graph = load_optimized(logical, nsc_mapping)
        found = False
        for vid in graph.vertices_with_label("Drug"):
            values = graph.vertex(vid).properties.get("Risk.description")
            if values:
                found = True
                assert all(isinstance(v, str) for v in values)
        assert found

    def test_deterministic(self, logical, nsc_mapping):
        a = load_optimized(logical, nsc_mapping)
        b = load_optimized(logical, nsc_mapping)
        assert a.num_vertices == b.num_vertices
        assert a.num_edges == b.num_edges
