"""Property-based loader invariants over random ontologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generator import generate_logical
from repro.data.loader import load_direct, load_optimized
from repro.ontology.stats import synthesize_statistics
from repro.schema.generate import optimize_schema_nsc

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from rules.test_confluence import random_ontology  # noqa: E402


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 300))
def test_loader_invariants(seed):
    ontology = random_ontology(seed, 5, 7)
    stats = synthesize_statistics(ontology, base_cardinality=12,
                                  seed=seed)
    logical = generate_logical(ontology, stats, seed=seed)
    logical.validate()

    dir_graph = load_direct(logical)
    assert dir_graph.num_vertices == logical.num_instances
    assert dir_graph.num_edges == logical.num_links

    schema, mapping = optimize_schema_nsc(ontology)
    opt_graph = load_optimized(logical, mapping)

    # Vertex count: one vertex per connected component of instances
    # under collapsed links (computed here with an independent
    # union-find as a cross-check of the loader's merging).
    parent = {uid: uid for uid in logical.concept_of}

    def find(uid):
        while parent[uid] != uid:
            parent[uid] = parent[parent[uid]]
            uid = parent[uid]
        return uid

    collapsed_links = 0
    for rel_id in mapping.collapsed:
        for src_uid, dst_uid in logical.links_of(rel_id):
            collapsed_links += 1
            ra, rb = find(src_uid), find(dst_uid)
            if ra != rb:
                parent[rb] = ra
    components = len({find(uid) for uid in logical.concept_of})
    assert opt_graph.num_vertices == components
    assert opt_graph.num_vertices >= (
        logical.num_instances - collapsed_links
    )

    # Edge count: collapsed links disappear, everything else survives.
    assert opt_graph.num_edges == logical.num_links - collapsed_links

    # Every vertex keeps at least one ontology concept label.
    for vertex in opt_graph.iter_vertices():
        assert vertex.labels & set(ontology.concepts)

    # Per-concept vertex coverage: each concept's instances map onto
    # at least one OPT vertex carrying the concept label.
    for concept, uids in logical.instances.items():
        if uids:
            assert opt_graph.label_count(concept) >= 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 300))
def test_replicated_lists_well_formed(seed):
    """List properties are absent-if-empty and hold non-null values,
    and each replication group contributes at most one entry per link."""
    ontology = random_ontology(seed, 5, 7)
    stats = synthesize_statistics(ontology, base_cardinality=10,
                                  seed=seed)
    logical = generate_logical(ontology, stats, seed=seed)
    _, mapping = optimize_schema_nsc(ontology)
    opt_graph = load_optimized(logical, mapping)

    list_names = {r.list_name for r in mapping.replications}
    groups_per_name: dict[str, set] = {}
    for repl in mapping.replications:
        groups_per_name.setdefault(repl.list_name, set()).add(
            (repl.rel_id, repl.direction, repl.source_concept,
             repl.source_property)
        )
    total_links = sum(len(p) for p in logical.links.values())
    for name in list_names:
        total = 0
        for vertex in opt_graph.iter_vertices():
            values = vertex.properties.get(name)
            if values is None:
                continue
            assert isinstance(values, list) and values, name
            assert all(v is not None for v in values)
            total += len(values)
        assert total <= total_links * len(groups_per_name[name])
