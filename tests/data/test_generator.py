"""Tests for the logical dataset and the synthetic generator."""

import pytest

from repro.data.generator import generate_logical
from repro.data.logical import LogicalDataset
from repro.exceptions import DataGenerationError
from repro.ontology.model import RelationshipType
from repro.ontology.stats import synthesize_statistics


@pytest.fixture()
def logical(fig2, fig2_stats):
    return generate_logical(fig2, fig2_stats, seed=3)


class TestLogicalDataset:
    def test_duplicate_uid_rejected(self, fig2):
        ds = LogicalDataset(fig2)
        ds.add_instance("Drug", "d1", {})
        with pytest.raises(DataGenerationError):
            ds.add_instance("Drug", "d1", {})

    def test_link_requires_known_instances(self, fig2):
        ds = LogicalDataset(fig2)
        ds.add_instance("Drug", "d1", {})
        with pytest.raises(DataGenerationError):
            ds.add_link("r0001", "d1", "missing")

    def test_validate_checks_endpoint_concepts(self, fig2):
        ds = LogicalDataset(fig2)
        ds.add_instance("Drug", "d1", {})
        ds.add_instance("Drug", "d2", {})
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        ds.add_link(treat.rel_id, "d1", "d2")  # dst should be Indication
        with pytest.raises(DataGenerationError):
            ds.validate()


class TestGenerator:
    def test_validates(self, logical):
        logical.validate()

    def test_cardinalities_match_stats(self, fig2, fig2_stats, logical):
        for concept in fig2.concepts:
            assert len(logical.instances_of(concept)) == fig2_stats.card(
                concept
            )

    def test_deterministic(self, fig2, fig2_stats):
        a = generate_logical(fig2, fig2_stats, seed=3)
        b = generate_logical(fig2, fig2_stats, seed=3)
        assert a.properties == b.properties
        assert a.links == b.links

    def test_union_twins(self, fig2, logical):
        union_rels = fig2.relationships_of_type(RelationshipType.UNION)
        for rel in union_rels:
            pairs = logical.links_of(rel.rel_id)
            # One twin per member instance.
            assert len(pairs) == len(logical.instances_of(rel.dst))
            for twin_uid, member_uid in pairs:
                assert logical.concept_of[twin_uid] == "Risk"
                assert twin_uid == f"Risk|{member_uid}"

    def test_inheritance_twins(self, fig2, logical):
        for rel in fig2.relationships_of_type(
            RelationshipType.INHERITANCE
        ):
            pairs = logical.links_of(rel.rel_id)
            assert len(pairs) == len(logical.instances_of(rel.dst))
            for twin_uid, child_uid in pairs:
                assert logical.concept_of[twin_uid] == rel.src

    def test_one_to_one_bijection(self, fig2, logical):
        rel = fig2.relationships_of_type(RelationshipType.ONE_TO_ONE)[0]
        pairs = logical.links_of(rel.rel_id)
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)

    def test_one_to_many_single_source_per_dst(self, fig2, logical):
        treat = next(
            r for r in fig2.iter_relationships() if r.label == "treat"
        )
        pairs = logical.links_of(treat.rel_id)
        dsts = [d for _, d in pairs]
        assert len(set(dsts)) == len(dsts)  # each indication: one drug
        assert len(pairs) == len(logical.instances_of("Indication"))

    def test_mn_fanout(self, med_small):
        logical = med_small.logical()
        mn = med_small.ontology.relationships_of_type(
            RelationshipType.MANY_TO_MANY
        )[0]
        pairs = logical.links_of(mn.rel_id)
        src_count = len(logical.instances_of(mn.src))
        assert len(pairs) >= src_count  # fanout >= 1 per source
        # No duplicate partners per source.
        seen = set()
        for pair in pairs:
            assert pair not in seen
            seen.add(pair)

    def test_property_values_typed(self, fig2, logical):
        for uid in logical.instances_of("Drug"):
            props = logical.properties[uid]
            assert isinstance(props["name"], str)
            assert isinstance(props["brand"], str)

    def test_identity_properties_unique(self, fig2, logical):
        names = [
            logical.properties[uid]["name"]
            for uid in logical.instances_of("Drug")
        ]
        assert len(set(names)) == len(names)

    def test_non_identity_properties_pooled(self, fig2, logical):
        descs = {
            logical.properties[uid]["desc"]
            for uid in logical.instances_of("Indication")
        }
        assert len(descs) < len(logical.instances_of("Indication"))

    def test_summary(self, logical):
        text = logical.summary()
        assert "instances" in text and "links" in text
