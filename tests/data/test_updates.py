"""Tests for incremental update handling (Section 4.2)."""

import pytest

from repro.data import (
    GraphUpdater,
    LoadRegistry,
    generate_logical,
    load_direct,
    load_optimized,
)
from repro.exceptions import DataGenerationError
from repro.graphdb import Executor, GraphSession, NEO4J_LIKE
from repro.schema.generate import optimize_schema_nsc


@pytest.fixture()
def setup(fig2, fig2_stats):
    logical = generate_logical(fig2, fig2_stats, seed=1)
    _, mapping = optimize_schema_nsc(fig2)
    dir_registry, opt_registry = LoadRegistry(), LoadRegistry()
    dir_graph = load_direct(logical, registry=dir_registry)
    opt_graph = load_optimized(logical, mapping, registry=opt_registry)
    updater = GraphUpdater(
        logical, mapping, dir_graph, dir_registry, opt_graph,
        opt_registry,
    )
    return {
        "ontology": fig2,
        "logical": logical,
        "mapping": mapping,
        "dir": dir_graph,
        "opt": opt_graph,
        "updater": updater,
        "opt_registry": opt_registry,
    }


def count(graph, query):
    return Executor(
        GraphSession(graph, NEO4J_LIKE)
    ).run(query).single_value()


class TestInsertInstance:
    def test_plain_concept(self, setup):
        before = setup["dir"].label_count("Drug")
        uid = setup["updater"].insert_instance(
            "Drug", {"name": "newdrug", "brand": "nb"}
        )
        assert setup["dir"].label_count("Drug") == before + 1
        assert setup["opt"].label_count("Drug") == before + 1
        assert setup["logical"].concept_of[uid] == "Drug"

    def test_member_creates_union_twin(self, setup):
        updater = setup["updater"]
        uid = updater.insert_instance(
            "ContraIndication", {"description": "x"}
        )
        # DIR: member vertex + Risk twin + unionOf edge.
        twin = f"Risk|{uid}"
        assert setup["logical"].concept_of[twin] == "Risk"
        dir_q = (
            "MATCH (ci:ContraIndication {description: 'x'})-"
            "[:unionOf]->(r:Risk) RETURN count(*)"
        )
        assert count(setup["dir"], dir_q) == 1
        # OPT: one merged vertex with both labels.
        opt_q = (
            "MATCH (v:Risk:ContraIndication {description: 'x'}) "
            "RETURN count(*)"
        )
        assert count(setup["opt"], opt_q) == 1

    def test_child_creates_parent_twin_chain(self, setup):
        updater = setup["updater"]
        uid = updater.insert_instance(
            "DrugFoodInteraction", {"risk": "high"}
        )
        assert f"DrugInteraction|{uid}" in setup["logical"].concept_of
        opt_q = (
            "MATCH (v:DrugFoodInteraction:DrugInteraction "
            "{risk: 'high'}) RETURN count(*)"
        )
        assert count(setup["opt"], opt_q) == 1

    def test_derived_concept_rejected(self, setup):
        with pytest.raises(DataGenerationError):
            setup["updater"].insert_instance("Risk", {})
        with pytest.raises(DataGenerationError):
            setup["updater"].insert_instance("DrugInteraction", {})


class TestInsertLink:
    def test_edge_and_list_maintained(self, setup):
        updater = setup["updater"]
        logical = setup["logical"]
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        drug = logical.instances_of("Drug")[0]
        ind = logical.instances_of("Indication")[0]
        dir_before = count(
            setup["dir"],
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN count(*)",
        )
        updater.insert_link(treat.rel_id, drug, ind)
        assert count(
            setup["dir"],
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN count(*)",
        ) == dir_before + 1
        # The drug's Indication.desc list includes the partner's desc.
        vid = setup["opt_registry"].vertex_of[drug]
        values = setup["opt"].vertex(vid).properties["Indication.desc"]
        assert logical.properties[ind]["desc"] in values

    def test_structural_link_rejected(self, setup):
        onto = setup["ontology"]
        isa = [
            r for r in onto.iter_relationships() if r.label == "isA"
        ][0]
        with pytest.raises(DataGenerationError):
            setup["updater"].insert_link(isa.rel_id, "a", "b")


class TestDeleteLink:
    def test_dir_opt_stay_equivalent(self, setup):
        updater = setup["updater"]
        logical = setup["logical"]
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        src, dst = logical.links_of(treat.rel_id)[0]
        updater.delete_link(treat.rel_id, src, dst)
        dir_count = count(
            setup["dir"],
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN count(i.desc)",
        )
        opt_total = sum(
            len(v.properties.get("Indication.desc") or [])
            for v in setup["opt"].iter_vertices()
        )
        assert dir_count == opt_total

    def test_missing_link_rejected(self, setup):
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        with pytest.raises(DataGenerationError):
            setup["updater"].delete_link(treat.rel_id, "nope", "nada")

    def test_last_link_removes_list(self, setup):
        updater = setup["updater"]
        logical = setup["logical"]
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        # Find a drug with exactly one indication.
        by_drug: dict[str, list[str]] = {}
        for s, d in logical.links_of(treat.rel_id):
            by_drug.setdefault(s, []).append(d)
        drug, inds = next(
            (s, ds) for s, ds in by_drug.items() if len(ds) == 1
        )
        updater.delete_link(treat.rel_id, drug, inds[0])
        vid = setup["opt_registry"].vertex_of[drug]
        assert "Indication.desc" not in setup["opt"].vertex(
            vid
        ).properties


class TestSetProperty:
    def test_vertex_and_lists_refreshed(self, setup):
        updater = setup["updater"]
        logical = setup["logical"]
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        drug, ind = logical.links_of(treat.rel_id)[0]
        updater.set_property(ind, "desc", "FRESH")
        vid = setup["opt_registry"].vertex_of[drug]
        values = setup["opt"].vertex(vid).properties["Indication.desc"]
        assert "FRESH" in values
        # DIR vertex updated too.
        dir_count = count(
            setup["dir"],
            "MATCH (i:Indication {desc: 'FRESH'}) RETURN count(*)",
        )
        assert dir_count == 1

    def test_queries_stay_equivalent_after_mixed_updates(self, setup):
        updater = setup["updater"]
        logical = setup["logical"]
        onto = setup["ontology"]
        treat = onto.find_relationship("treat", "Drug", "Indication")
        drug = logical.instances_of("Drug")[0]
        new_ci = updater.insert_instance(
            "ContraIndication", {"description": "added"}
        )
        cause = onto.find_relationship("cause", "Drug", "Risk")
        updater.insert_link(cause.rel_id, drug, f"Risk|{new_ci}")
        src, dst = logical.links_of(treat.rel_id)[0]
        updater.delete_link(treat.rel_id, src, dst)
        dir_q = (
            "MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-"
            "(ci:ContraIndication) RETURN count(*)"
        )
        opt_q = (
            "MATCH (d:Drug)-[:cause]->(ci:Risk:ContraIndication) "
            "RETURN count(*)"
        )
        assert count(setup["dir"], dir_q) == count(setup["opt"], opt_q)
