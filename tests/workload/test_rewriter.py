"""Tests for the DIR -> OPT query rewriter."""

import pytest

from repro.data.generator import generate_logical
from repro.data.loader import load_direct, load_optimized
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.ast import (
    FuncCall,
    NullCheck,
    PropertyRef,
    query_text,
)
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.parser import parse_query
from repro.graphdb.session import GraphSession
from repro.schema.generate import direct_schema, optimize_schema_nsc
from repro.workload.rewriter import QueryRewriter


@pytest.fixture()
def setup(fig2, fig2_stats):
    logical = generate_logical(fig2, fig2_stats, seed=3)
    _, mapping = optimize_schema_nsc(fig2)
    return {
        "ontology": fig2,
        "mapping": mapping,
        "rewriter": QueryRewriter(fig2, mapping),
        "dir": load_direct(logical),
        "opt": load_optimized(logical, mapping),
    }


def run_both(setup, dir_text, expect_same_rows=True):
    rewritten = setup["rewriter"].rewrite(dir_text)
    dir_result = Executor(GraphSession(setup["dir"], NEO4J_LIKE)).run(
        dir_text
    )
    opt_result = Executor(GraphSession(setup["opt"], NEO4J_LIKE)).run(
        rewritten
    )
    return dir_result, opt_result, rewritten


def normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                tuple(sorted(v)) if isinstance(v, list) else v
                for v in row
            )
        )
    return sorted(out, key=repr)


class TestCollapseRewrites:
    def test_union_hop_removed(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-"
            "(ci:ContraIndication) RETURN d.name",
        )
        assert "unionOf" not in query_text(rewritten)
        assert normalize(d.rows) == normalize(o.rows)

    def test_isa_hop_removed(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) "
            "RETURN di.summary",
        )
        assert "isA" not in query_text(rewritten)
        assert len(rewritten.patterns[0].nodes) == 1
        assert normalize(d.rows) == normalize(o.rows)

    def test_one_to_one_hop_removed(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (i:Indication)-[:has]->(c:Condition) "
            "RETURN i.desc, c.name",
        )
        assert len(rewritten.patterns[0].nodes) == 1
        assert normalize(d.rows) == normalize(o.rows)

    def test_chain_of_collapses(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:has]->(di:DrugInteraction)<-[:isA]-"
            "(dfi:DrugFoodInteraction) RETURN d.name, dfi.risk",
        )
        assert len(rewritten.patterns[0].nodes) == 2
        assert normalize(d.rows) == normalize(o.rows)

    def test_where_follows_substitution(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) "
            "WHERE di.summary IS NOT NULL RETURN count(*)",
        )
        assert normalize(d.rows) == normalize(o.rows)


class TestReplicationRewrites:
    def test_count_of_far_property(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN d.name, count(i.desc) AS n",
        )
        assert normalize(d.rows) == normalize(o.rows)
        assert isinstance(rewritten.where, NullCheck)

    def test_count_of_far_vertex(self, setup):
        d, o, _ = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN d.name, count(i) AS n",
        )
        assert normalize(d.rows) == normalize(o.rows)

    def test_collect_flattens(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN size(collect(i.desc))",
        )
        assert normalize(d.rows) == normalize(o.rows)
        collect = rewritten.return_items[0].expr.args[0]
        assert isinstance(collect, FuncCall) and collect.flatten

    def test_plain_far_property_returns_lists(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc",
        )
        # Shape change (the paper's Q6): OPT returns one list per drug;
        # the flattened value multisets agree.
        dir_values = sorted(v for (v,) in d.rows)
        opt_values = sorted(
            x for (lst,) in o.rows for x in lst
        )
        assert dir_values == opt_values

    def test_mixed_projection_keeps_hop(self, setup):
        _, _, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN d.name, i.desc",
        )
        assert len(rewritten.patterns[0].nodes) == 2  # hop kept

    def test_count_star_keeps_hop(self, setup):
        d, o, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN count(*)",
        )
        assert len(rewritten.patterns[0].nodes) == 2
        assert d.rows == o.rows

    def test_grouping_key_on_far_node_keeps_hop_or_flips(self, setup):
        # Grouping by the far node's property forces the rewrite to the
        # other orientation or keeps the hop; results must agree.
        d, o, _ = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "RETURN i.desc, count(d.name) AS n",
        )
        assert normalize(d.rows) == normalize(o.rows)

    def test_far_node_in_two_hops_keeps_hop(self, setup):
        _, _, rewritten = run_both(
            setup,
            "MATCH (d:Drug)-[:treat]->(i:Indication), "
            "(d)-[:cause]->(r:Risk)<-[:unionOf]-(b:BlackBoxWarning) "
            "RETURN d.name, count(i.desc)",
        )
        # d participates in two hops: it can never be the far node.
        assert any(
            node.var == "d"
            for pattern in rewritten.patterns
            for node in pattern.nodes
        )


class TestRewriterEdgeCases:
    def test_query_without_rewrites_unchanged(self, setup):
        q = "MATCH (d:Drug) RETURN d.name"
        rewritten = setup["rewriter"].rewrite(q)
        assert rewritten == parse_query(q)

    def test_unknown_labels_lenient(self, setup):
        q = "MATCH (x:Nowhere)-[:nope]->(y:Nothing) RETURN x"
        rewritten = setup["rewriter"].rewrite(q)
        assert rewritten == parse_query(q)

    def test_strict_mode_raises(self, fig2, setup):
        strict = QueryRewriter(fig2, setup["mapping"], strict=True)
        from repro.exceptions import RewriteError

        with pytest.raises(RewriteError):
            strict.rewrite("MATCH (x:Nowhere)-[:nope]->(y:N) RETURN x")

    def test_accepts_parsed_query(self, setup):
        q = parse_query("MATCH (d:Drug) RETURN d.name")
        assert setup["rewriter"].rewrite(q) == q

    def test_direct_mapping_is_identity_modulo_one_to_one(self, fig2):
        # Against the DIR schema nothing is collapsed or replicated.
        _, mapping = direct_schema(fig2)
        rewriter = QueryRewriter(fig2, mapping)
        q = (
            "MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-"
            "(ci:ContraIndication) RETURN d.name"
        )
        assert rewriter.rewrite(q) == parse_query(q)
