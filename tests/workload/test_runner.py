"""Tests for workload generation and execution."""

import pytest

from repro.datasets.base import Dataset
from repro.exceptions import DataGenerationError
from repro.graphdb.backends import JANUSGRAPH_LIKE, NEO4J_LIKE
from repro.workload.generator import mixed_workload
from repro.workload.queries import (
    ALL_QUERIES,
    QUERY_CATALOG,
    queries_for_dataset,
    query_class,
)
from repro.workload.runner import run_queries, run_single


class TestQueryCatalog:
    def test_twelve_queries(self):
        assert len(QUERY_CATALOG) == 12
        assert set(ALL_QUERIES) == set(QUERY_CATALOG)

    def test_dataset_assignment(self):
        med = queries_for_dataset("MED")
        fin = queries_for_dataset("FIN")
        assert set(med) == {"Q1", "Q2", "Q5", "Q6", "Q9", "Q10"}
        assert set(fin) == {"Q3", "Q4", "Q7", "Q8", "Q11", "Q12"}

    def test_classes(self):
        assert query_class("Q1") == "pattern"
        assert query_class("Q5") == "lookup"
        assert query_class("Q9") == "aggregation"

    def test_four_per_class(self):
        by_class = {}
        for qid in QUERY_CATALOG:
            by_class.setdefault(query_class(qid), []).append(qid)
        assert all(len(v) == 4 for v in by_class.values())


class TestMixedWorkload:
    def test_size(self, med_small):
        workload = mixed_workload(med_small, size=15, seed=1)
        assert len(workload) == 15

    def test_queries_come_from_dataset(self, med_small):
        workload = mixed_workload(med_small, size=15, seed=1)
        assert {wq.qid for wq in workload} <= set(med_small.queries)

    def test_deterministic(self, med_small):
        a = mixed_workload(med_small, seed=4)
        b = mixed_workload(med_small, seed=4)
        assert a == b

    def test_zipf_skews(self, med_small):
        workload = mixed_workload(
            med_small, size=200, seed=1, distribution="zipf"
        )
        counts = {}
        for wq in workload:
            counts[wq.qid] = counts.get(wq.qid, 0) + 1
        first = sorted(med_small.queries)[0]
        last = sorted(med_small.queries)[-1]
        assert counts.get(first, 0) > counts.get(last, 0)

    def test_unknown_distribution(self, med_small):
        with pytest.raises(DataGenerationError):
            mixed_workload(med_small, distribution="pareto")

    def test_empty_templates_raise(self, med_small):
        empty = Dataset(
            name="empty",
            ontology=med_small.ontology,
            stats=med_small.stats,
        )
        with pytest.raises(DataGenerationError):
            mixed_workload(empty)


class TestRunner:
    def test_run_queries_report(self, med_pipeline):
        queries = [
            (qid, text)
            for qid, text in sorted(med_pipeline.dataset.queries.items())
        ]
        report = run_queries(med_pipeline.dir_graph, NEO4J_LIKE, queries)
        assert len(report.runs) == len(queries)
        assert report.total_latency_ms > 0
        assert report.total_wall_ms > 0
        assert report.backend == "neo4j-like"

    def test_latency_of_filters_by_qid(self, med_pipeline):
        queries = [("Q1", med_pipeline.dataset.queries["Q1"])] * 2
        report = run_queries(med_pipeline.dir_graph, NEO4J_LIKE, queries)
        assert report.latency_of("Q1") == pytest.approx(
            report.total_latency_ms
        )
        assert report.latency_of("Q9") == 0

    def test_total_metrics_merge(self, med_pipeline):
        queries = [
            ("Q1", med_pipeline.dataset.queries["Q1"]),
            ("Q5", med_pipeline.dataset.queries["Q5"]),
        ]
        report = run_queries(med_pipeline.dir_graph, NEO4J_LIKE, queries)
        total = report.total_metrics
        assert total.queries == 2
        assert total.rows == sum(r.rows for r in report.runs)

    def test_run_single(self, med_pipeline):
        run = run_single(
            med_pipeline.dir_graph, JANUSGRAPH_LIKE,
            med_pipeline.dataset.queries["Q5"], qid="Q5",
        )
        assert run.qid == "Q5"
        assert run.latency_ms > 0

    def test_cache_shared_across_workload(self, med_pipeline):
        # Running the same query twice in one workload: the second run
        # should see page-cache hits from the first.
        q = med_pipeline.dataset.queries["Q5"]
        report = run_queries(
            med_pipeline.dir_graph, NEO4J_LIKE, [("a", q), ("b", q)]
        )
        first, second = report.runs
        assert second.metrics.page_misses < max(
            1, first.metrics.page_misses
        ) or first.metrics.page_misses == 0
