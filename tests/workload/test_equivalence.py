"""Property-based DIR-vs-OPT equivalence.

For random small ontologies and random data, the benchmark-style
queries must return the same results on the direct graph and on the
fully optimized graph after rewriting.  This exercises the whole
pipeline: rule engine -> mapping -> loader -> rewriter -> executor.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generator import generate_logical
from repro.data.loader import load_direct, load_optimized
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession
from repro.ontology.builder import OntologyBuilder
from repro.ontology.stats import synthesize_statistics
from repro.schema.generate import optimize_schema_nsc
from repro.workload.rewriter import QueryRewriter


def _normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                tuple(sorted(map(repr, v))) if isinstance(v, list)
                else v
                for v in row
            )
        )
    return sorted(out, key=repr)


def build_setup(seed: int):
    onto = (
        OntologyBuilder(f"equiv-{seed}")
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .concept("Condition", cname="STRING")
        .concept("Interaction", summary="STRING")
        .concept("FoodInteraction", risk="STRING")
        .concept("Risk")
        .concept("Warning", note="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .one_to_one("has", "Indication", "Condition")
        .one_to_many("has", "Drug", "Interaction")
        .inherits("Interaction", "FoodInteraction")
        .one_to_many("cause", "Drug", "Risk")
        .union("Risk", "Warning")
        .many_to_many("flag", "Warning", "Drug")
        .build()
    )
    stats = synthesize_statistics(onto, base_cardinality=25, seed=seed)
    logical = generate_logical(onto, stats, seed=seed)
    _, mapping = optimize_schema_nsc(onto)
    return {
        "rewriter": QueryRewriter(onto, mapping),
        "dir": load_direct(logical),
        "opt": load_optimized(logical, mapping),
    }


QUERIES = [
    # collapse rewrites
    "MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(w:Warning) "
    "RETURN d.name",
    "MATCH (f:FoodInteraction)-[:isA]->(x:Interaction) RETURN x.summary",
    "MATCH (i:Indication)-[:has]->(c:Condition) RETURN i.desc, c.cname",
    # replication rewrites
    "MATCH (d:Drug)-[:treat]->(i:Indication) "
    "RETURN d.name, count(i.desc) AS n",
    "MATCH (d:Drug)-[:treat]->(i:Indication) "
    "RETURN size(collect(i.desc))",
    "MATCH (w:Warning)-[:flag]->(d:Drug) "
    "RETURN w.note, count(d.name) AS n",
    # kept hops
    "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN count(*)",
    "MATCH (d:Drug) WHERE d.brand IS NOT NULL RETURN count(d)",
]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_dir_opt_equivalence(seed):
    setup = build_setup(seed)
    for text in QUERIES:
        rewritten = setup["rewriter"].rewrite(text)
        dir_rows = Executor(
            GraphSession(setup["dir"], NEO4J_LIKE)
        ).run(text).rows
        opt_rows = Executor(
            GraphSession(setup["opt"], NEO4J_LIKE)
        ).run(rewritten).rows
        assert _normalize(dir_rows) == _normalize(opt_rows), text


@pytest.mark.parametrize("qid", ["Q1", "Q2", "Q5", "Q9", "Q10"])
def test_med_microbench_equivalence(med_pipeline, qid):
    dataset = med_pipeline.dataset
    dir_rows = Executor(
        GraphSession(med_pipeline.dir_graph, NEO4J_LIKE)
    ).run(dataset.queries[qid]).rows
    opt_rows = Executor(
        GraphSession(med_pipeline.opt_graph, NEO4J_LIKE)
    ).run(med_pipeline.rewritten[qid]).rows
    assert _normalize(dir_rows) == _normalize(opt_rows)


@pytest.mark.parametrize("qid", ["Q3", "Q4", "Q7", "Q8", "Q11", "Q12"])
def test_fin_microbench_equivalence(fin_pipeline, qid):
    dataset = fin_pipeline.dataset
    dir_rows = Executor(
        GraphSession(fin_pipeline.dir_graph, NEO4J_LIKE)
    ).run(dataset.queries[qid]).rows
    opt_rows = Executor(
        GraphSession(fin_pipeline.opt_graph, NEO4J_LIKE)
    ).run(fin_pipeline.rewritten[qid]).rows
    if qid == "Q3":
        # Q3 returns vertices; compare cardinalities (vertex identities
        # necessarily differ between the two graphs).
        assert len(dir_rows) == len(opt_rows)
    else:
        assert _normalize(dir_rows) == _normalize(opt_rows)
