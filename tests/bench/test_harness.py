"""Tests for the experiment drivers (shape assertions on small scales).

Each driver is exercised at test scale; shape expectations mirror the
paper's qualitative claims (see DESIGN.md section 4).  The full-scale
numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.bench.harness import (
    build_pipeline,
    run_efficiency,
    run_jaccard_sweep,
    run_knapsack_ablation,
    run_microbenchmark,
    run_space_sweep,
    run_workload_experiment,
)


class TestPipeline:
    def test_pipeline_components(self, med_pipeline):
        assert med_pipeline.dir_graph.num_vertices > 0
        assert med_pipeline.opt_graph.num_vertices > 0
        assert med_pipeline.opt_graph.num_vertices < (
            med_pipeline.dir_graph.num_vertices
        )
        assert set(med_pipeline.rewritten) == set(
            med_pipeline.dataset.queries
        )

    def test_budget_respected(self, med_pipeline):
        result = med_pipeline.result
        assert result.total_cost <= result.space_limit


class TestSpaceSweep:
    def test_rows_and_shape(self, med_small):
        table = run_space_sweep(
            med_small, fractions=(0.05, 0.25, 1.0),
            workload_kinds=("uniform",),
        )
        assert len(table.rows) == 3
        rc = table.column("RC BR")
        assert rc == sorted(rc)          # monotone in budget
        assert rc[-1] == pytest.approx(1.0)
        cc = table.column("CC BR")
        assert cc[-1] == pytest.approx(1.0)

    def test_rc_dominates_cc(self, med_small):
        table = run_space_sweep(
            med_small, fractions=(0.1, 0.5), workload_kinds=("zipf",),
        )
        for rc, cc in zip(table.column("RC BR"), table.column("CC BR")):
            assert rc >= cc - 0.05


class TestJaccardSweep:
    def test_robustness(self, med_small):
        table = run_jaccard_sweep(
            med_small,
            pairs=((0.9, 0.1), (0.5, 0.5)),
            workload_kinds=("uniform",),
        )
        assert len(table.rows) == 2
        for value in table.column("RC BR"):
            assert value >= 0.5  # paper: >= ~0.7 at 50% budget


class TestMicrobenchmark:
    def test_speedups(self, med_small):
        table = run_microbenchmark([med_small], scale=1.0)
        # 6 queries x 2 backends
        assert len(table.rows) == 12
        speedups = table.column("speedup")
        assert all(s >= 0.9 for s in speedups)
        assert any(s > 1.5 for s in speedups)


class TestWorkloadExperiment:
    def test_opt_wins(self, med_small):
        table = run_workload_experiment([med_small], scale=1.0, size=6)
        assert len(table.rows) == 2  # 2 backends
        for row in table.rows:
            direct_ms, opt_ms = row[2], row[3]
            assert opt_ms < direct_ms


class TestEfficiency:
    def test_table_shape(self, med_small):
        table = run_efficiency(
            [med_small], fractions=(0.25, 0.75), repeats=1
        )
        assert len(table.rows) == 2
        for row in table.rows:
            assert row[2] > 0 and row[3] > 0  # RC ms, CC ms


class TestKnapsackAblation:
    def test_fptas_at_least_greedy(self, med_small):
        table = run_knapsack_ablation(
            med_small, fractions=(0.1, 0.5)
        )
        for fptas, greedy in zip(
            table.column("FPTAS BR"), table.column("greedy BR")
        ):
            assert fptas >= greedy - 0.1


class TestPipelineDatabase:
    def test_unknown_graph_name_rejected(self):
        from repro.bench.harness import Pipeline

        pipeline = Pipeline.__new__(Pipeline)
        try:
            pipeline.database("dri")
        except ValueError as exc:
            assert "dri" in str(exc)
        else:  # pragma: no cover - guard must fire
            raise AssertionError("typo'd graph name was accepted")
