"""Tests for experiment tables."""

import pytest

from repro.bench.reporting import ExperimentTable, speedup


class TestExperimentTable:
    def _table(self):
        table = ExperimentTable("Demo", ["name", "value"])
        table.add_row("alpha", 1.2345)
        table.add_row("beta", 12345)
        table.add_note("a note")
        return table

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.23" in text
        assert "note: a note" in text

    def test_alignment(self):
        lines = self._table().render().splitlines()
        header = lines[2]
        separator = lines[3]
        assert len(header) == len(separator)

    def test_csv(self):
        csv = self._table().to_csv()
        assert csv.splitlines()[0] == "name,value"
        assert "alpha" in csv

    def test_column(self):
        table = self._table()
        assert table.column("name") == ["alpha", "beta"]
        with pytest.raises(ValueError):
            table.column("nope")

    def test_number_formats(self):
        table = ExperimentTable("n", ["x"])
        table.add_row(0.00012)
        table.add_row(0)
        table.add_row(123456.7)
        text = table.render()
        assert "0.0001" in text
        assert "123,457" in text


class TestSpeedup:
    def test_ratio(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_optimized(self):
        assert speedup(10.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0
