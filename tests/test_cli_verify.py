"""The ``repro verify`` subcommand: offline integrity audit.

Exit codes are part of the contract (health checks script against
them): 0 = every artifact intact, 1 = corruption or a torn WAL tail
found, 2 = the path is not a data directory at all.
"""

import json

import pytest

from repro.cli import main
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import GraphStore
from repro.graphdb.storage.recovery import snapshot_name, wal_name


@pytest.fixture()
def store_dir(tmp_path):
    g = PropertyGraph("verify-demo")
    a = g.add_vertex("Drug", {"name": "aspirin"})
    b = g.add_vertex("Drug", {"name": "ibuprofen"})
    g.add_edge(a, b, "interacts")
    target = tmp_path / "store"
    store = GraphStore.create(target, g)
    store.graph.add_vertex("Drug", {"name": "late"})
    store.close()
    return target


def test_clean_store_verifies_ok(store_dir, capsys):
    assert main(["verify", str(store_dir)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    (entry,) = report["generations"]
    assert entry["generation"] == 1
    assert entry["snapshot"]["status"] == "ok"
    assert entry["snapshot"]["vertices"] == 2
    assert entry["wal"]["status"] == "ok"
    assert entry["wal"]["records"] == 1
    assert entry["wal"]["torn_bytes"] == 0


def test_corrupt_snapshot_exits_one(store_dir, capsys):
    snap = store_dir / snapshot_name(1)
    blob = bytearray(snap.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    snap.write_bytes(bytes(blob))
    assert main(["verify", str(store_dir)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    (entry,) = report["generations"]
    assert entry["snapshot"]["status"] == "corrupt"
    assert "error" in entry["snapshot"]


def test_torn_wal_exits_one(store_dir, capsys):
    with open(store_dir / wal_name(1), "ab") as fh:
        fh.write(b"\xff" * 10)
    assert main(["verify", str(store_dir)]) == 1
    report = json.loads(capsys.readouterr().out)
    (entry,) = report["generations"]
    assert entry["wal"]["status"] == "torn"
    assert entry["wal"]["torn_bytes"] == 10
    # verify must not repair: the tail is still there afterwards.
    assert main(["verify", str(store_dir)]) == 1


def test_verify_is_read_only(store_dir, capsys):
    before = {
        p.name: p.read_bytes() for p in sorted(store_dir.iterdir())
    }
    assert main(["verify", str(store_dir)]) == 0
    after = {
        p.name: p.read_bytes() for p in sorted(store_dir.iterdir())
    }
    assert before == after


def test_missing_directory_exits_two(tmp_path, capsys):
    assert main(["verify", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_quarantined_and_tmp_debris_listed(store_dir, capsys):
    (store_dir / (snapshot_name(9) + ".tmp")).write_bytes(b"junk")
    (store_dir / (snapshot_name(3) + ".quarantined")).write_bytes(
        b"old bad snapshot"
    )
    assert main(["verify", str(store_dir)]) == 0  # debris is inert
    report = json.loads(capsys.readouterr().out)
    assert report["tmp"] == [snapshot_name(9) + ".tmp"]
    assert report["quarantined"] == [
        snapshot_name(3) + ".quarantined"
    ]


def test_generation_mismatch_reported(store_dir, capsys):
    import os

    os.rename(
        store_dir / wal_name(1), store_dir / wal_name(2)
    )
    assert main(["verify", str(store_dir)]) == 1
    report = json.loads(capsys.readouterr().out)
    by_gen = {e["generation"]: e for e in report["generations"]}
    assert by_gen[2]["wal"]["status"] == "generation-mismatch"
    assert by_gen[2]["snapshot"]["status"] == "missing"
    assert by_gen[1]["wal"]["status"] == "missing"
