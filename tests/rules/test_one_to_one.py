"""Tests for the 1:1 rule (Algorithm 3 / Figure 6)."""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import RelationshipType
from repro.rules.base import SchemaState
from repro.rules.one_to_one import apply_one_to_one


def _onto():
    return (
        OntologyBuilder()
        .concept("Drug", name="STRING")
        .concept("Indication", desc="STRING")
        .concept("Condition", name="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .one_to_one("has", "Indication", "Condition")
        .build()
    )


def _one_one(onto):
    return onto.relationships_of_type(RelationshipType.ONE_TO_ONE)[0]


class TestOneToOne:
    def test_merged_node_name_follows_declaration_order(self):
        onto = _onto()
        state = SchemaState(onto)
        apply_one_to_one(state, _one_one(onto))
        assert "IndicationCondition" in state.nodes

    def test_merged_properties(self):
        onto = _onto()
        state = SchemaState(onto)
        apply_one_to_one(state, _one_one(onto))
        merged = state.nodes["IndicationCondition"]
        assert set(merged.properties) == {"desc", "name"}

    def test_merged_concepts_recorded(self):
        onto = _onto()
        state = SchemaState(onto)
        apply_one_to_one(state, _one_one(onto))
        merged = state.nodes["IndicationCondition"]
        assert merged.concepts == {"Indication", "Condition"}

    def test_both_endpoints_resolve_to_merged(self):
        onto = _onto()
        state = SchemaState(onto)
        apply_one_to_one(state, _one_one(onto))
        assert state.resolve("Indication") == ("IndicationCondition",)
        assert state.resolve("Condition") == ("IndicationCondition",)

    def test_incident_edges_redirected(self):
        onto = _onto()
        state = SchemaState(onto)
        apply_one_to_one(state, _one_one(onto))
        treat = [e for e in state.edges if e.label == "treat"]
        assert len(treat) == 1
        assert treat[0].dst == "IndicationCondition"

    def test_one_to_one_edge_removed(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = _one_one(onto)
        apply_one_to_one(state, rel)
        assert rel.rel_id in state.consumed
        assert not any(e.origin_rel == rel.rel_id for e in state.edges)

    def test_one_shot(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = _one_one(onto)
        assert apply_one_to_one(state, rel)
        assert not apply_one_to_one(state, rel)

    def test_chained_merges(self):
        onto = (
            OntologyBuilder()
            .concept("A", a="STRING")
            .concept("B", b="STRING")
            .concept("C", c="STRING")
            .one_to_one("ab", "A", "B")
            .one_to_one("bc", "B", "C")
            .build()
        )
        state = SchemaState(onto)
        for rel in onto.relationships_of_type(
            RelationshipType.ONE_TO_ONE
        ):
            apply_one_to_one(state, rel)
        assert len(state.nodes) == 1
        node = next(iter(state.nodes.values()))
        assert set(node.properties) == {"a", "b", "c"}
        assert state.resolve("A") == state.resolve("C")

    def test_name_collision_suffix(self):
        onto = (
            OntologyBuilder()
            .concept("AB")       # occupies the natural merged name
            .concept("A", a="STRING")
            .concept("B", b="STRING")
            .one_to_one("ab", "A", "B")
            .build()
        )
        state = SchemaState(onto)
        apply_one_to_one(
            state,
            onto.relationships_of_type(RelationshipType.ONE_TO_ONE)[0],
        )
        assert "AB_2" in state.nodes
