"""Tests for the fixpoint rule engine (Algorithm 5)."""

from repro.ontology.model import RelationshipType
from repro.rules.base import Selection, Thresholds
from repro.rules.engine import direct_state, transform


class TestTransform:
    def test_direct_state_untouched(self, fig2):
        state = direct_state(fig2)
        assert set(state.nodes) == set(fig2.concepts)
        assert not state.consumed

    def test_empty_selection_is_direct(self, fig2):
        state = transform(fig2, Selection.none())
        assert set(state.nodes) == set(fig2.concepts)
        assert len(state.edges) == fig2.num_relationships

    def test_nsc_matches_paper_figures(self, fig2):
        state = transform(fig2)
        # Figure 4: Risk dissolved into its members.
        assert not state.is_live("Risk")
        # Figure 5(a): DrugInteraction merged down into children.
        assert not state.is_live("DrugInteraction")
        assert "summary" in state.nodes["DrugFoodInteraction"].properties
        # Figure 6: Indication+Condition merged.
        assert "IndicationCondition" in state.nodes
        # Figure 7: Indication.desc list on Drug.
        assert "Indication.desc" in state.nodes["Drug"].properties

    def test_nsc_consumes_structural_rels(self, fig2):
        state = transform(fig2)
        structural = {
            r.rel_id for r in fig2.iter_relationships()
            if r.rel_type.is_structural
            or r.rel_type is RelationshipType.ONE_TO_ONE
        }
        assert structural == state.consumed

    def test_selection_restricts_effects(self, fig2):
        union_rel = fig2.relationships_of_type(RelationshipType.UNION)[0]
        selection = Selection(rel_ids=frozenset({union_rel.rel_id}))
        state = transform(fig2, selection)
        assert state.is_live("Risk")  # second member not selected
        assert union_rel.rel_id in state.consumed
        # Nothing else happened.
        assert state.is_live("DrugInteraction")
        assert "Indication.desc" not in state.nodes["Drug"].properties

    def test_rule_order_override(self, fig2):
        order = sorted(fig2.relationships, reverse=True)
        a = transform(fig2, rule_order=order)
        b = transform(fig2)
        assert a.fingerprint() == b.fingerprint()

    def test_custom_thresholds_respected(self, fig2):
        # With theta2 = 0 nothing is below it: inheritance stays.
        state = transform(fig2, thresholds=Thresholds(1.0, 0.0))
        assert state.is_live("DrugInteraction")

    def test_terminates_on_larger_ontology(self, med_small):
        state = transform(med_small.ontology)
        assert state.nodes  # converged without raising


class TestGeneratedSchema:
    def test_schema_matches_state(self, fig2):
        from repro.schema.generate import generate_schema

        state = transform(fig2)
        schema, mapping = generate_schema(state)
        assert set(schema.vertex_schemas) == set(state.nodes)
        assert schema.num_edge_types == len(
            {(e.src, e.dst, e.label, e.origin_rel) for e in state.edges}
        )
