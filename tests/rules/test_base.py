"""Tests for the rule-engine working state."""

import pytest

from repro.exceptions import SchemaError
from repro.ontology.model import RelationshipType
from repro.ontology.samples import figure2_medical_ontology
from repro.rules.base import (
    Provenance,
    SchemaProperty,
    SchemaState,
    Selection,
    Thresholds,
)


def _prop(name, concept="X"):
    from repro.ontology.model import DataType

    return SchemaProperty(
        name=name,
        data_type=DataType.STRING,
        is_list=False,
        origin_concept=concept,
        origin_name=name,
        provenance=Provenance.NATIVE,
    )


class TestThresholds:
    def test_defaults(self):
        t = Thresholds()
        assert t.theta1 == 0.66
        assert t.theta2 == 0.33

    def test_invalid_order(self):
        with pytest.raises(SchemaError):
            Thresholds(0.3, 0.6)

    def test_out_of_range(self):
        with pytest.raises(SchemaError):
            Thresholds(1.5, 0.2)


class TestSelection:
    def test_all(self):
        sel = Selection.all()
        assert sel.has_rel("anything")
        assert sel.props_for("r1", "fwd") is None
        assert not sel.is_empty()

    def test_none(self):
        sel = Selection.none()
        assert not sel.has_rel("r1")
        assert sel.props_for("r1", "fwd") == frozenset()
        assert sel.is_empty()

    def test_specific(self):
        sel = Selection(
            rel_ids=frozenset({"r1"}),
            list_props=frozenset({("r2", "fwd", "p"), ("r2", "rev", "q")}),
        )
        assert sel.has_rel("r1")
        assert not sel.has_rel("r2")
        assert sel.props_for("r2", "fwd") == {"p"}
        assert sel.props_for("r2", "rev") == {"q"}
        assert sel.props_for("r3", "fwd") == frozenset()


class TestSchemaState:
    def test_direct_mapping(self, fig2):
        state = SchemaState(fig2)
        assert set(state.nodes) == set(fig2.concepts)
        assert len(state.edges) == fig2.num_relationships
        drug = state.nodes["Drug"]
        assert set(drug.properties) == {"name", "brand"}

    def test_jaccard_frozen_on_init(self, fig2):
        state = SchemaState(fig2)
        inheritance = fig2.relationships_of_type(
            RelationshipType.INHERITANCE
        )
        for rel in inheritance:
            assert rel.rel_id in state.jaccard
            assert state.jaccard[rel.rel_id] == 0.0  # disjoint props

    def test_resolve_live_node(self, fig2):
        state = SchemaState(fig2)
        assert state.resolve("Drug") == ("Drug",)

    def test_drop_and_resolve(self, fig2):
        state = SchemaState(fig2)
        state.drop_node("Risk", ("ContraIndication", "BlackBoxWarning"))
        assert not state.is_live("Risk")
        assert set(state.resolve("Risk")) == {
            "ContraIndication", "BlackBoxWarning",
        }

    def test_drop_rewrites_edges(self, fig2):
        state = SchemaState(fig2)
        state.drop_node("Risk", ("ContraIndication",))
        touched = state.edges_touching("ContraIndication")
        labels = {e.label for e in touched}
        assert "cause" in labels  # Drug-cause->Risk now targets the member

    def test_drop_unknown_raises(self, fig2):
        state = SchemaState(fig2)
        with pytest.raises(SchemaError):
            state.drop_node("Nope", ())

    def test_transitive_resolution(self, fig2):
        state = SchemaState(fig2)
        state.drop_node("Risk", ("ContraIndication",))
        state.drop_node("ContraIndication", ("BlackBoxWarning",))
        assert state.resolve("Risk") == ("BlackBoxWarning",)

    def test_add_property_resolves(self, fig2):
        state = SchemaState(fig2)
        state.drop_node("Risk", ("ContraIndication",))
        assert state.add_property("Risk", _prop("extra"))
        assert "extra" in state.nodes["ContraIndication"].properties

    def test_add_property_idempotent(self, fig2):
        state = SchemaState(fig2)
        assert state.add_property("Drug", _prop("extra"))
        assert not state.add_property("Drug", _prop("extra"))

    def test_add_edge_skips_structural_self_loop(self, fig2):
        state = SchemaState(fig2)
        changed = state.add_edge(
            "Drug", "Drug", "isA", RelationshipType.INHERITANCE, "rX"
        )
        assert not changed

    def test_has_edge_of_type(self, fig2):
        state = SchemaState(fig2)
        assert state.has_edge_of_type(
            "Risk", RelationshipType.UNION, as_src=True
        )
        assert not state.has_edge_of_type(
            "Drug", RelationshipType.UNION, as_src=True
        )

    def test_fingerprint_changes_on_mutation(self, fig2):
        state = SchemaState(fig2)
        before = state.fingerprint()
        state.add_property("Drug", _prop("extra"))
        assert state.fingerprint() != before

    def test_fingerprint_stable(self, fig2):
        a = SchemaState(fig2).fingerprint()
        b = SchemaState(figure2_medical_ontology()).fingerprint()
        assert a == b

    def test_properties_of_merges_resolved(self, fig2):
        state = SchemaState(fig2)
        state.drop_node(
            "Risk", ("ContraIndication", "BlackBoxWarning")
        )
        props = state.properties_of("Risk")
        assert "description" in props and "note" in props
