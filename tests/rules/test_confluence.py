"""Property-based tests for Theorem 3 (rule-order independence).

The theorem: applying the union, inheritance, 1:M and M:N rules in any
order produces a unique PGS when there is no space constraint.  We
generate random ontologies (with every relationship type) and random
rule orders with hypothesis, and check the final state fingerprints are
identical.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.model import Ontology, RelationshipType
from repro.ontology.validation import validate_ontology
from repro.rules.engine import transform

#: Theorem 3 covers exactly these rules ("applying the union,
#: inheritance, 1:M and M:N rules in any order produces a unique PGS").
#: 1:1 is excluded by the theorem - and indeed a 1:1 whose endpoint is
#: also a union concept (or a merge-dropped parent/child) interacts
#: order-sensitively with node drops; see test_one_to_one_union_interaction.
REL_TYPES = [
    RelationshipType.ONE_TO_MANY,
    RelationshipType.MANY_TO_MANY,
    RelationshipType.UNION,
    RelationshipType.INHERITANCE,
]


def random_ontology(seed: int, n_concepts: int, n_rels: int) -> Ontology:
    """A random, valid ontology (structural relations kept acyclic by
    only pointing from lower to higher concept index)."""
    rng = random.Random(seed)
    onto = Ontology(f"random-{seed}")
    for i in range(n_concepts):
        concept = onto.add_concept(f"K{i}")
        for j in range(rng.randint(0, 3)):
            from repro.ontology.model import DataProperty

            # Shared names across concepts create Jaccard overlap.
            concept.add_property(DataProperty(f"p{rng.randint(0, 5)}j{j}"))
    added = 0
    guard = 0
    while added < n_rels and guard < 100 * n_rels:
        guard += 1
        rel_type = rng.choice(REL_TYPES)
        a, b = rng.sample(range(n_concepts), 2)
        if rel_type.is_structural:
            a, b = min(a, b), max(a, b)  # acyclic by construction
        src, dst = f"K{a}", f"K{b}"
        duplicate = any(
            r.rel_type is rel_type and r.src == src and r.dst == dst
            for r in onto.iter_relationships()
        )
        if duplicate:
            continue
        onto.add_relationship(f"rel{added}", src, dst, rel_type)
        added += 1
    validate_ontology(onto)
    return onto


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    order_seed=st.integers(0, 10_000),
    n_concepts=st.integers(3, 8),
    n_rels=st.integers(2, 12),
)
def test_theorem3_order_independence(seed, order_seed, n_concepts, n_rels):
    onto = random_ontology(seed, n_concepts, n_rels)
    baseline = transform(onto).fingerprint()
    order = sorted(onto.relationships)
    random.Random(order_seed).shuffle(order)
    shuffled = transform(onto, rule_order=order).fingerprint()
    assert shuffled == baseline


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fixpoint_is_stable(seed):
    """Re-running the engine on its own fixpoint changes nothing."""
    onto = random_ontology(seed, 6, 8)
    first = transform(onto)
    again = transform(onto)
    assert first.fingerprint() == again.fingerprint()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_monotone_node_count(seed):
    """The fixpoint never invents concepts: every final node maps back
    to original concepts and every original concept resolves to >= 1
    live node."""
    onto = random_ontology(seed, 6, 8)
    state = transform(onto)
    for node in state.nodes.values():
        assert node.concepts <= set(onto.concepts)
    for concept in onto.concepts:
        assert state.resolve(concept), concept


def test_one_to_one_union_interaction_is_order_dependent():
    """Documented edge case OUTSIDE Theorem 3: a 1:1 relationship whose
    endpoint is also a union concept.  Merging first prevents the union
    node from dissolving (the merged node also represents the 1:1
    partner); dissolving first merges the partner with the member.
    Both outcomes are valid schemas; Theorem 3 simply does not cover
    the 1:1 rule.  Real ontologies don't put derived concepts in 1:1
    relationships (neither MED nor FIN does)."""
    from repro.ontology.builder import OntologyBuilder

    def build():
        return (
            OntologyBuilder()
            .concept("U", shared="STRING")
            .concept("M", own="STRING")
            .concept("Partner", other="STRING")
            .union("U", "M")
            .one_to_one("pairs", "Partner", "U")
            .build()
        )

    onto = build()
    rel_ids = sorted(onto.relationships)
    first = transform(onto, rule_order=rel_ids)
    second = transform(onto, rule_order=list(reversed(rel_ids)))
    # Both converge and consume both relationships...
    assert first.consumed == second.consumed == set(rel_ids)
    # ...but the resulting node sets legitimately differ.
    assert set(first.nodes) != set(second.nodes)


def test_figure2_order_independence_exhaustive_pairs(fig2):
    """Swap every adjacent pair of relationships in the default order."""
    base_order = sorted(fig2.relationships)
    baseline = transform(fig2, rule_order=base_order).fingerprint()
    for i in range(len(base_order) - 1):
        order = list(base_order)
        order[i], order[i + 1] = order[i + 1], order[i]
        assert transform(fig2, rule_order=order).fingerprint() == baseline
