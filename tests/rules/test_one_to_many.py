"""Tests for the 1:M and M:N rules (Algorithm 4 / Figure 7)."""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import RelationshipType
from repro.ontology.samples import chain_ontology
from repro.rules.base import Provenance, SchemaState
from repro.rules.engine import transform
from repro.rules.one_to_many import (
    apply_many_to_many,
    apply_one_to_many,
)


def _onto():
    return (
        OntologyBuilder()
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .build()
    )


class TestOneToMany:
    def test_list_property_created(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        assert apply_one_to_many(state, rel, None)
        drug = state.nodes["Drug"]
        assert "Indication.desc" in drug.properties
        prop = drug.properties["Indication.desc"]
        assert prop.is_list
        assert prop.provenance is Provenance.REPLICATED
        assert prop.via_rel == rel.rel_id
        assert prop.origin_concept == "Indication"

    def test_destination_unchanged(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_one_to_many(state, rel, None)
        assert set(state.nodes["Indication"].properties) == {"desc"}

    def test_edge_kept(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_one_to_many(state, rel, None)
        assert any(e.origin_rel == rel.rel_id for e in state.edges)
        assert rel.rel_id not in state.consumed

    def test_selection_filters_properties(self):
        onto = (
            OntologyBuilder()
            .concept("A")
            .concept("B", p="STRING", q="STRING")
            .one_to_many("r", "A", "B")
            .build()
        )
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_one_to_many(state, rel, frozenset({"p"}))
        props = state.nodes["A"].properties
        assert "B.p" in props
        assert "B.q" not in props

    def test_empty_selection_is_noop(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        assert not apply_one_to_many(state, rel, frozenset())

    def test_idempotent(self):
        onto = _onto()
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_one_to_many(state, rel, None)
        assert not apply_one_to_many(state, rel, None)

    def test_transitive_propagation_keeps_prefix(self):
        # C0 -> C1 -> C2: C2.p2 first lands on C1 as "C2.p2", then
        # propagates to C0 under the SAME name (Appendix A semantics).
        onto = chain_ontology(3)
        state = transform(onto)
        c0 = state.nodes["C0"]
        assert "C1.p1" in c0.properties
        assert "C2.p2" in c0.properties

    def test_mutual_propagation_terminates(self):
        # A -1:M-> B and B -1:M-> A: propagation closes transitively
        # (Algorithm 4 has no cycle guard; list names are bounded by
        # concept x property combinations, so the fixpoint terminates).
        onto = (
            OntologyBuilder()
            .concept("A", pa="STRING")
            .concept("B", pb="STRING")
            .one_to_many("ab", "A", "B")
            .one_to_many("ba", "B", "A")
            .build()
        )
        state = transform(onto)
        assert "B.pb" in state.nodes["A"].properties
        assert "A.pa" in state.nodes["B"].properties
        # The transitive echo ("A.pa" back on A) keeps its prefixed
        # name and never collides with the native property.
        assert "pa" in state.nodes["A"].properties


class TestManyToMany:
    def test_both_directions(self):
        onto = (
            OntologyBuilder()
            .concept("A", pa="STRING")
            .concept("B", pb="STRING")
            .many_to_many("ab", "A", "B")
            .build()
        )
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_many_to_many(state, rel, None, None)
        assert "B.pb" in state.nodes["A"].properties
        assert "A.pa" in state.nodes["B"].properties

    def test_directions_selected_independently(self):
        onto = (
            OntologyBuilder()
            .concept("A", pa="STRING")
            .concept("B", pb="STRING")
            .many_to_many("ab", "A", "B")
            .build()
        )
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        apply_many_to_many(
            state, rel, frozenset(), frozenset({"pa"})
        )
        assert "B.pb" not in state.nodes["A"].properties
        assert "A.pa" in state.nodes["B"].properties

    def test_self_loop_mn(self):
        onto = (
            OntologyBuilder()
            .concept("A", pa="STRING")
            .many_to_many("peer", "A", "A")
            .build()
        )
        state = SchemaState(onto)
        rel = next(iter(onto.relationships.values()))
        # A self M:N replicates the concept's own properties as a list
        # (peer values), under the prefixed name.
        assert apply_many_to_many(state, rel, None, None)
        assert "A.pa" in state.nodes["A"].properties
        assert "pa" in state.nodes["A"].properties
