"""Tests for the inheritance rule (Algorithm 2 / Figure 5)."""

import pytest

from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import RelationshipType
from repro.rules.base import Provenance, SchemaState, Thresholds
from repro.rules.inheritance import apply_inheritance


def _build(parent_props, child_props, extra_child=None):
    builder = OntologyBuilder()
    builder.concept("P", **{p: "STRING" for p in parent_props})
    builder.concept("C", **{p: "STRING" for p in child_props})
    builder.concept("N", note="STRING")
    builder.one_to_many("uses", "N", "P")
    children = ["C"]
    if extra_child is not None:
        builder.concept("C2", **{p: "STRING" for p in extra_child})
        children.append("C2")
    builder.inherits("P", *children)
    return builder.build()


def _inh_rels(onto):
    return onto.relationships_of_type(RelationshipType.INHERITANCE)


class TestMergeDown:
    """js < theta2: the child absorbs the parent (Figure 5(a)/(b))."""

    def test_child_gets_parent_properties(self):
        onto = _build({"summary"}, {"risk"})
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        child = state.nodes["C"]
        assert "summary" in child.properties
        assert child.properties["summary"].provenance is (
            Provenance.FROM_PARENT
        )

    def test_child_gets_parent_edges(self):
        onto = _build({"summary"}, {"risk"})
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        uses_targets = {e.dst for e in state.edges if e.label == "uses"}
        assert "C" in uses_targets

    def test_parent_dropped_when_childless(self):
        onto = _build({"summary"}, {"risk"})
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        assert not state.is_live("P")
        assert state.resolve("P") == ("C",)

    def test_parent_survives_with_remaining_child(self):
        onto = _build({"summary"}, {"risk"}, extra_child={"mech"})
        state = SchemaState(onto)
        rels = _inh_rels(onto)
        apply_inheritance(state, rels[0])
        assert state.is_live("P")  # second child still attached
        apply_inheritance(state, rels[1])
        assert not state.is_live("P")
        assert set(state.resolve("P")) == {"C", "C2"}

    def test_isa_edge_removed(self):
        onto = _build({"summary"}, {"risk"})
        state = SchemaState(onto)
        rel = _inh_rels(onto)[0]
        apply_inheritance(state, rel)
        assert rel.rel_id in state.consumed
        assert not any(e.origin_rel == rel.rel_id for e in state.edges)


class TestMergeUp:
    """js > theta1: the parent absorbs the child (Figure 5(c)/(d))."""

    def _onto(self):
        # P{a,b} C{a,b,c}: js = 2/3 > 0.66
        return _build({"a", "b"}, {"a", "b", "c"})

    def test_parent_gets_child_properties(self):
        onto = self._onto()
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        parent = state.nodes["P"]
        assert "c" in parent.properties
        assert parent.properties["c"].provenance is Provenance.FROM_CHILD

    def test_child_dropped(self):
        onto = self._onto()
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        assert not state.is_live("C")
        assert state.resolve("C") == ("P",)

    def test_shared_properties_not_duplicated(self):
        onto = self._onto()
        state = SchemaState(onto)
        apply_inheritance(state, _inh_rels(onto)[0])
        assert sorted(state.nodes["P"].properties) == ["a", "b", "c"]

    def test_one_shot(self):
        onto = self._onto()
        state = SchemaState(onto)
        rel = _inh_rels(onto)[0]
        assert apply_inheritance(state, rel)
        assert not apply_inheritance(state, rel)


class TestMiddleBand:
    def test_isa_kept(self):
        # P{a,b} C{a,c}: js = 1/3, inside [0.33, 0.66] -> keep isA
        onto = _build({"a", "b"}, {"a", "c"})
        state = SchemaState(onto)
        rel = _inh_rels(onto)[0]
        assert not apply_inheritance(state, rel)
        assert rel.rel_id not in state.consumed
        assert any(e.origin_rel == rel.rel_id for e in state.edges)
        assert state.is_live("P") and state.is_live("C")

    def test_custom_thresholds_change_band(self):
        onto = _build({"a", "b"}, {"a", "c"})  # js = 1/3
        state = SchemaState(onto, Thresholds(0.9, 0.5))
        rel = _inh_rels(onto)[0]
        assert apply_inheritance(state, rel)  # now js < theta2
        assert not state.is_live("P")


class TestJaccardEdgeCases:
    @pytest.mark.parametrize("js,theta1,theta2,expected", [
        (0.66, 0.66, 0.33, "keep"),   # boundary: not strictly greater
        (0.33, 0.66, 0.33, "keep"),   # boundary: not strictly smaller
    ])
    def test_boundaries_keep(self, js, theta1, theta2, expected):
        # Construct P/C with the exact jaccard: js = |I|/|U|
        if js == 0.66:
            parent, child = {"a", "b"}, {"a", "b", "c"}
        else:
            parent, child = {"a", "b"}, {"a", "c"}
        onto = _build(parent, child)
        state = SchemaState(onto, Thresholds(theta1, theta2))
        rel = _inh_rels(onto)[0]
        state.jaccard[rel.rel_id] = js  # pin the exact value
        assert not apply_inheritance(state, rel)
