"""Tests for the union rule (Algorithm 1 / Figure 4)."""

from repro.ontology.model import RelationshipType
from repro.rules.base import SchemaState
from repro.rules.union import apply_union


def _union_rels(ontology):
    return ontology.relationships_of_type(RelationshipType.UNION)


class TestUnionRule:
    def test_member_inherits_union_edges(self, fig2):
        state = SchemaState(fig2)
        for rel in _union_rels(fig2):
            apply_union(state, rel)
        # Drug-cause->X edges now target both members.
        cause_targets = {
            e.dst for e in state.edges if e.label == "cause"
        }
        assert cause_targets == {"ContraIndication", "BlackBoxWarning"}

    def test_union_node_dropped_after_all_members(self, fig2):
        state = SchemaState(fig2)
        rels = _union_rels(fig2)
        apply_union(state, rels[0])
        assert state.is_live("Risk")  # one member still attached
        apply_union(state, rels[1])
        assert not state.is_live("Risk")

    def test_union_resolution_points_to_members(self, fig2):
        state = SchemaState(fig2)
        for rel in _union_rels(fig2):
            apply_union(state, rel)
        assert set(state.resolve("Risk")) == {
            "ContraIndication", "BlackBoxWarning",
        }

    def test_union_of_edges_removed(self, fig2):
        state = SchemaState(fig2)
        for rel in _union_rels(fig2):
            apply_union(state, rel)
        assert not any(
            e.rel_type is RelationshipType.UNION for e in state.edges
        )
        assert {r.rel_id for r in _union_rels(fig2)} <= state.consumed

    def test_partial_application_keeps_union(self, fig2):
        state = SchemaState(fig2)
        rels = _union_rels(fig2)
        apply_union(state, rels[0])
        # The second unionOf edge schema is still present.
        remaining_unions = [
            e for e in state.edges
            if e.rel_type is RelationshipType.UNION
        ]
        assert len(remaining_unions) == 1
        assert state.is_live("Risk")

    def test_union_properties_copied(self):
        from repro.ontology.builder import OntologyBuilder

        onto = (
            OntologyBuilder()
            .concept("U", shared="STRING")
            .concept("M1", own="STRING")
            .concept("M2")
            .union("U", "M1", "M2")
            .build()
        )
        state = SchemaState(onto)
        for rel in _union_rels(onto):
            apply_union(state, rel)
        assert "shared" in state.nodes["M1"].properties
        assert "shared" in state.nodes["M2"].properties

    def test_idempotent_at_fixpoint(self, fig2):
        state = SchemaState(fig2)
        for rel in _union_rels(fig2):
            apply_union(state, rel)
        before = state.fingerprint()
        for rel in _union_rels(fig2):
            changed = apply_union(state, rel)
            assert not changed
        assert state.fingerprint() == before

    def test_late_edges_reach_members_via_resolution(self, fig2):
        state = SchemaState(fig2)
        for rel in _union_rels(fig2):
            apply_union(state, rel)
        state.add_edge(
            "Indication", "Risk", "linked",
            RelationshipType.ONE_TO_MANY, "rZ",
        )
        targets = {e.dst for e in state.edges if e.label == "linked"}
        assert targets == {"ContraIndication", "BlackBoxWarning"}
