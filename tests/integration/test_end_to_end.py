"""End-to-end integration: ontology -> schema -> data -> queries.

These tests walk the full pipeline the way the examples do, asserting
the cross-module invariants that no unit test covers alone.
"""

import pytest

from repro.bench.harness import build_pipeline
from repro.graphdb.backends import JANUSGRAPH_LIKE, NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession
from repro.ontology.io import loads, dumps
from repro.rules.base import Thresholds
from repro.schema.ddl import to_cypher_ddl
from repro.workload.runner import run_queries


class TestMedEndToEnd:
    def test_optimizer_reduces_graph(self, med_pipeline):
        dir_graph = med_pipeline.dir_graph
        opt_graph = med_pipeline.opt_graph
        assert opt_graph.num_vertices < dir_graph.num_vertices
        assert opt_graph.num_edges < dir_graph.num_edges

    def test_all_queries_faster_or_equal(self, med_pipeline):
        dataset = med_pipeline.dataset
        for qid, text in dataset.queries.items():
            dir_run = run_queries(
                med_pipeline.dir_graph, NEO4J_LIKE, [(qid, text)]
            ).runs[0]
            opt_run = run_queries(
                med_pipeline.opt_graph, NEO4J_LIKE,
                [(qid, med_pipeline.rewritten[qid])],
            ).runs[0]
            assert opt_run.latency_ms <= dir_run.latency_ms * 1.05, qid

    def test_traversals_never_increase(self, med_pipeline):
        dataset = med_pipeline.dataset
        for qid, text in dataset.queries.items():
            dir_run = run_queries(
                med_pipeline.dir_graph, NEO4J_LIKE, [(qid, text)]
            ).runs[0]
            opt_run = run_queries(
                med_pipeline.opt_graph, NEO4J_LIKE,
                [(qid, med_pipeline.rewritten[qid])],
            ).runs[0]
            assert (
                opt_run.metrics.edge_traversals
                <= dir_run.metrics.edge_traversals
            ), qid

    def test_both_backends_execute(self, med_pipeline):
        for profile in (NEO4J_LIKE, JANUSGRAPH_LIKE):
            report = run_queries(
                med_pipeline.opt_graph, profile,
                list(med_pipeline.rewritten.items()),
            )
            assert all(run.latency_ms > 0 for run in report.runs)


class TestFinEndToEnd:
    def test_fin_pipeline_runs(self, fin_pipeline):
        assert fin_pipeline.opt_graph.num_vertices < (
            fin_pipeline.dir_graph.num_vertices
        )

    def test_q7_is_a_tie(self, fin_pipeline):
        """Q7 needs no traversal on either schema (paper Section 5.3)."""
        dataset = fin_pipeline.dataset
        dir_run = run_queries(
            fin_pipeline.dir_graph, NEO4J_LIKE,
            [("Q7", dataset.queries["Q7"])],
        ).runs[0]
        opt_run = run_queries(
            fin_pipeline.opt_graph, NEO4J_LIKE,
            [("Q7", fin_pipeline.rewritten["Q7"])],
        ).runs[0]
        assert dir_run.metrics.edge_traversals == 0
        assert opt_run.metrics.edge_traversals == 0

    def test_q3_collapses_to_single_node(self, fin_pipeline):
        rewritten = fin_pipeline.rewritten["Q3"]
        assert len(rewritten.patterns[0].nodes) == 1
        labels = set(rewritten.patterns[0].nodes[0].labels)
        assert labels == {
            "AutonomousAgent", "Person", "ContractParty",
        }


class TestSerializationRoundTripPipeline:
    def test_ontology_round_trip_preserves_optimization(self, med_small):
        round_tripped = loads(dumps(med_small.ontology))
        from repro.schema.generate import optimize_schema_nsc

        a, _ = optimize_schema_nsc(med_small.ontology)
        b, _ = optimize_schema_nsc(round_tripped)
        assert to_cypher_ddl(a) == to_cypher_ddl(b)


class TestThresholdVariants:
    @pytest.mark.parametrize("theta1,theta2", [
        (0.9, 0.1), (0.66, 0.33), (0.5, 0.5),
    ])
    def test_pipeline_under_thresholds(self, med_small, theta1, theta2):
        pipeline = build_pipeline(
            med_small, thresholds=Thresholds(theta1, theta2), scale=0.5
        )
        executor = Executor(
            GraphSession(pipeline.opt_graph, NEO4J_LIKE)
        )
        for qid, query in pipeline.rewritten.items():
            result = executor.run(query)
            assert result.metrics.queries == 1
