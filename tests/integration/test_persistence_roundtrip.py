"""Round-trip invariant: save -> reopen -> identical query results.

For MED and FIN, on both the direct and the optimized graphs, a
delete-heavy mutation sequence is applied through a durable
:class:`GraphStore` (so it flows through the WAL), then the store is
reopened and the *full benchmark workload suite* is executed on the
live graph and on the recovered graph.  Result multisets must be
identical.  A second pass checks the bare snapshot codec (write ->
read, no WAL) the same way, after a checkpoint.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession
from repro.graphdb.storage import (
    GraphStore,
    graph_state,
    read_snapshot,
    recover_graph,
    write_snapshot,
)


def _normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                tuple(sorted(map(repr, v))) if isinstance(v, list)
                else v
                for v in row
            )
        )
    return sorted(out, key=repr)


def run_suite(graph, queries) -> dict:
    """qid -> normalized result rows for the whole workload suite."""
    results = {}
    for qid, query in queries.items():
        rows = Executor(GraphSession(graph, NEO4J_LIKE)).run(query).rows
        results[qid] = _normalize(rows)
    return results


def mutate_heavily(graph, seed: int) -> None:
    """A deterministic, delete-heavy mutation burst.

    Roughly 8% of vertices and 5% of surviving edges are removed
    (vertex removal cascades through incident edges), properties are
    rewritten and deleted, and a few fresh vertices/edges are added so
    recovery also replays id allocation.
    """
    rng = random.Random(seed)
    vids = [v.vid for v in graph.iter_vertices()]
    victims = rng.sample(vids, max(1, len(vids) // 12))
    for vid in victims:
        graph.remove_vertex(vid)
    eids = [e.eid for e in graph.iter_edges()]
    for eid in rng.sample(eids, max(1, len(eids) // 20)):
        graph.remove_edge(eid)
    survivors = [v.vid for v in graph.iter_vertices()]
    for vid in rng.sample(survivors, max(1, len(survivors) // 10)):
        graph.set_property(vid, "touched", rng.randint(0, 99))
    for vid in rng.sample(survivors, max(1, len(survivors) // 20)):
        props = graph.vertex(vid).properties
        if props:
            graph.remove_property(vid, next(iter(props)))
    fresh = [
        graph.add_vertex("Fresh", {"n": i, "tag": f"new{i}"})
        for i in range(5)
    ]
    for vid in fresh[1:]:
        graph.add_edge(fresh[0], vid, "freshLink")


@pytest.fixture(scope="module")
def med_pipe():
    return build_pipeline(build_med(base_cardinality=30, seed=11))


@pytest.fixture(scope="module")
def fin_pipe():
    return build_pipeline(build_fin(base_cardinality=6, seed=13))


_SEEDS = {
    ("med", "dir"): 101, ("med", "opt"): 202,
    ("fin", "dir"): 303, ("fin", "opt"): 404,
}


def test_snapshot_roundtrip_without_mutations(med_pipe, tmp_path):
    """The unmutated pipeline graphs survive the codec exactly.

    Runs before the mutation tests below, which deliberately tear up
    the module-scoped pipeline graphs.
    """
    for which, graph in (
        ("dir", med_pipe.dir_graph), ("opt", med_pipe.opt_graph),
    ):
        path = tmp_path / f"{which}.rpgs"
        write_snapshot(graph, path)
        loaded = read_snapshot(path)
        queries = (
            med_pipe.dataset.queries if which == "dir"
            else med_pipe.rewritten
        )
        assert run_suite(loaded, queries) == run_suite(graph, queries)


@pytest.mark.parametrize("which", ["dir", "opt"])
@pytest.mark.parametrize("name", ["med", "fin"])
def test_mutated_store_roundtrip(
    name, which, med_pipe, fin_pipe, tmp_path
):
    pipe = med_pipe if name == "med" else fin_pipe
    graph = pipe.dir_graph if which == "dir" else pipe.opt_graph
    queries = (
        pipe.dataset.queries if which == "dir" else pipe.rewritten
    )

    data_dir = tmp_path / f"{name}-{which}"
    store = GraphStore.create(data_dir, graph, sync="batch")
    try:
        mutate_heavily(graph, seed=_SEEDS[(name, which)])
    finally:
        store.close()

    live = run_suite(graph, queries)

    # WAL replay path.
    recovered = recover_graph(data_dir)
    assert graph_state(recovered) == graph_state(graph)
    assert run_suite(recovered, queries) == live

    # Checkpoint + bare snapshot codec path.
    with GraphStore.open(data_dir) as reopened:
        snapshot_path = reopened.checkpoint()
    reloaded = read_snapshot(snapshot_path)
    assert graph_state(reloaded) == graph_state(graph)
    assert run_suite(reloaded, queries) == live
