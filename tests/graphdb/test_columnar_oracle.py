"""Property-based churn parity: column store vs a naive dict oracle.

Random interleavings of vertex/edge adds and removals and property
churn are applied simultaneously to a :class:`PropertyGraph` and to a
plain dict-of-dicts oracle.  After the churn, query results (label
scans, folded equality scans, typed expansion patterns) must be
multiset-identical to what the oracle computes by brute force - both
through the mutable adjacency path and again after ``freeze()``
through the CSR view.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor
from repro.graphdb.session import GraphSession

LABELSETS = [("A",), ("B",), ("A", "B"), ("C",)]
EDGE_TYPES = ["T", "U"]

_op = st.one_of(
    st.tuples(
        st.just("add_v"),
        st.sampled_from(LABELSETS),
        st.integers(min_value=0, max_value=3),
        st.sampled_from(["s0", "s1", "s2", None]),
    ),
    st.tuples(
        st.just("add_e"),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.sampled_from(EDGE_TYPES),
    ),
    st.tuples(st.just("rm_v"), st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("rm_e"), st.integers(min_value=0, max_value=40)),
    st.tuples(
        st.just("set_p"),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=3),
    ),
    st.tuples(st.just("rm_p"), st.integers(min_value=0, max_value=40)),
)


class Oracle:
    """The naive model: plain dicts, brute-force queries."""

    def __init__(self):
        self.vertices: dict[int, tuple[frozenset, dict]] = {}
        self.edges: dict[int, tuple[int, int, str]] = {}

    def label_values(self, label: str, prop: str) -> Counter:
        return Counter(
            repr(props.get(prop))
            for labels, props in self.vertices.values()
            if label in labels
        )

    def eq_count(self, label: str, prop: str, value: object) -> int:
        return sum(
            1
            for labels, props in self.vertices.values()
            if label in labels and props.get(prop) == value
        )

    def expand_rows(self, label: str, edge_type: str) -> Counter:
        return Counter(
            (
                repr(self.vertices[src][1].get("p")),
                repr(self.vertices[dst][1].get("p")),
            )
            for src, dst, etype in self.edges.values()
            if etype == edge_type and label in self.vertices[src][0]
        )


def _apply(ops, graph: PropertyGraph, oracle: Oracle) -> None:
    for op in ops:
        kind = op[0]
        if kind == "add_v":
            _, labels, p, s = op
            props: dict = {"p": p}
            if s is not None:
                props["s"] = s
            vid = graph.add_vertex(labels, props)
            oracle.vertices[vid] = (frozenset(labels), dict(props))
        elif kind == "add_e":
            _, i, j, etype = op
            live = sorted(oracle.vertices)
            if not live:
                continue
            src = live[i % len(live)]
            dst = live[j % len(live)]
            eid = graph.add_edge(src, dst, etype)
            oracle.edges[eid] = (src, dst, etype)
        elif kind == "rm_v":
            live = sorted(oracle.vertices)
            if not live:
                continue
            vid = live[op[1] % len(live)]
            graph.remove_vertex(vid)
            del oracle.vertices[vid]
            oracle.edges = {
                eid: e for eid, e in oracle.edges.items()
                if vid not in (e[0], e[1])
            }
        elif kind == "rm_e":
            live = sorted(oracle.edges)
            if not live:
                continue
            eid = live[op[1] % len(live)]
            graph.remove_edge(eid)
            del oracle.edges[eid]
        elif kind == "set_p":
            live = sorted(oracle.vertices)
            if not live:
                continue
            vid = live[op[1] % len(live)]
            graph.set_property(vid, "p", op[2])
            oracle.vertices[vid][1]["p"] = op[2]
        elif kind == "rm_p":
            live = sorted(oracle.vertices)
            if not live:
                continue
            vid = live[op[1] % len(live)]
            graph.remove_property(vid, "p")
            oracle.vertices[vid][1].pop("p", None)


def _check(graph: PropertyGraph, oracle: Oracle) -> None:
    executor = Executor(GraphSession(graph, NEO4J_LIKE))
    for label in ("A", "B", "C"):
        rows = executor.run(f"MATCH (x:{label}) RETURN x.p").rows
        assert Counter(repr(r[0]) for r in rows) == oracle.label_values(
            label, "p"
        ), label
        for value in (0, 2):
            got = executor.run(
                f"MATCH (x:{label}) WHERE x.p = {value} RETURN count(*)"
            ).single_value()
            assert got == oracle.eq_count(label, "p", value)
        got = executor.run(
            f"MATCH (x:{label}) WHERE x.s = 's1' RETURN count(*)"
        ).single_value()
        assert got == oracle.eq_count(label, "s", "s1")
    for edge_type in EDGE_TYPES:
        rows = executor.run(
            f"MATCH (a:A)-[:{edge_type}]->(b) RETURN a.p, b.p"
        ).rows
        got = Counter((repr(r[0]), repr(r[1])) for r in rows)
        assert got == oracle.expand_rows("A", edge_type), edge_type
    # Direct API parity.
    for label in ("A", "B", "C"):
        expected = sorted(
            vid for vid, (labels, _) in oracle.vertices.items()
            if label in labels
        )
        assert sorted(graph.vertices_with_label(label)) == expected
    assert graph.num_vertices == len(oracle.vertices)
    assert graph.num_edges == len(oracle.edges)


@settings(max_examples=40, deadline=None)
@given(st.lists(_op, min_size=1, max_size=40))
def test_churn_matches_oracle(ops):
    graph = PropertyGraph("churn")
    oracle = Oracle()
    _apply(ops, graph, oracle)
    # Mutable-adjacency path first, then the frozen CSR path: results
    # must agree with the oracle (and therefore with each other).
    _check(graph, oracle)
    graph.freeze()
    assert graph.frozen_view is not None
    _check(graph, oracle)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(_op, min_size=1, max_size=25),
    st.lists(_op, min_size=1, max_size=25),
)
def test_churn_across_freeze_boundary(before, after):
    # Mutations after a freeze invalidate the view; queries must keep
    # agreeing with the oracle through the fallback dict path.
    graph = PropertyGraph("churn")
    oracle = Oracle()
    _apply(before, graph, oracle)
    view = graph.freeze()
    epoch = graph.mutation_epoch
    _apply(after, graph, oracle)
    if graph.mutation_epoch != epoch:  # some ops are no-ops
        assert not view.valid
    _check(graph, oracle)
