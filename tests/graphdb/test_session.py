"""Tests for the instrumented graph session and metrics."""

import pytest

from repro.graphdb.backends import JANUSGRAPH_LIKE, NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache
from repro.graphdb.session import GraphSession


@pytest.fixture()
def graph():
    g = PropertyGraph()
    for i in range(100):
        g.add_vertex("N", {"x": i})
    for i in range(99):
        g.add_edge(i, i + 1, "next")
    return g


class TestMetrics:
    def test_merge(self):
        a = ExecutionMetrics(edge_traversals=2, rows=1, queries=1)
        b = ExecutionMetrics(edge_traversals=3, vertex_reads=4, queries=1)
        a.merge(b)
        assert a.edge_traversals == 5
        assert a.vertex_reads == 4
        assert a.queries == 2

    def test_as_dict(self):
        d = ExecutionMetrics(page_hits=2).as_dict()
        assert d["page_hits"] == 2
        assert set(d) >= {"edge_traversals", "page_misses", "rows"}


class TestLruCache:
    def test_hit_after_touch(self):
        cache = LruPageCache(2)
        assert not cache.touch(("v", 1))
        assert cache.touch(("v", 1))

    def test_eviction_order(self):
        cache = LruPageCache(2)
        cache.touch(("v", 1))
        cache.touch(("v", 2))
        cache.touch(("v", 1))     # 1 becomes most recent
        cache.touch(("v", 3))     # evicts 2
        assert cache.touch(("v", 1))
        assert not cache.touch(("v", 2))

    def test_zero_capacity_never_hits(self):
        cache = LruPageCache(0)
        assert not cache.touch(("v", 1))
        assert not cache.touch(("v", 1))

    def test_clear(self):
        cache = LruPageCache(4)
        cache.touch(("v", 1))
        cache.clear()
        assert len(cache) == 0
        assert not cache.touch(("v", 1))


class TestSession:
    def test_counts_reads(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        session.read_labels(0)
        session.read_property(0, "x")
        assert session.metrics.vertex_reads == 1
        assert session.metrics.property_reads == 1

    def test_expand_counts_traversals(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        edges = session.expand(5, "next", "out")
        assert len(edges) == 1
        assert session.metrics.edge_traversals == 1
        session.expand(5, "next", "any")
        assert session.metrics.edge_traversals == 3  # 1 out + 1 in + prev

    def test_expand_direction(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        assert session.expand(5, "next", "out")[0].dst == 6
        assert session.expand(5, "next", "in")[0].src == 4

    def test_page_accounting(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        session.read_labels(0)
        assert session.metrics.page_misses == 1
        session.read_labels(1)  # same page (32 vertices per page)
        assert session.metrics.page_misses == 1
        assert session.metrics.page_hits == 1
        session.read_labels(64)  # different page
        assert session.metrics.page_misses == 2

    def test_reset_metrics(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        session.read_labels(0)
        old = session.reset_metrics()
        assert old.vertex_reads == 1
        assert session.metrics.vertex_reads == 0

    def test_latency_profiles_differ(self, graph):
        for profile in (NEO4J_LIKE, JANUSGRAPH_LIKE):
            session = GraphSession(graph, profile)
            for i in range(50):
                session.expand(i, "next", "out")
            latency = session.latency_ms()
            assert latency > 0
        # Janus per-op costs dominate at small scale.
        neo = GraphSession(graph, NEO4J_LIKE)
        janus = GraphSession(graph, JANUSGRAPH_LIKE)
        for i in range(50):
            neo.expand(i, "next", "out")
            janus.expand(i, "next", "out")
        assert janus.latency_ms() > neo.latency_ms()

    def test_missing_property_is_none(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        assert session.read_property(0, "missing") is None

    def test_index_lookup_counts(self, graph):
        graph.create_property_index("N", "x")
        session = GraphSession(graph, NEO4J_LIKE)
        assert session.index_lookup("N", "x", 5) == [5]
        assert session.metrics.index_lookups == 1

    def test_label_scan_counts(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        assert len(session.label_scan("N")) == 100
        assert session.metrics.index_lookups == 1


class TestBackendProfiles:
    def test_latency_formula(self):
        metrics = ExecutionMetrics(
            edge_traversals=10, vertex_reads=4, property_reads=2,
            index_lookups=1, page_misses=3, queries=1,
        )
        profile = NEO4J_LIKE
        expected_us = (
            profile.fixed_overhead_us
            + 10 * profile.traversal_us
            + 4 * profile.vertex_read_us
            + 2 * profile.property_read_us
            + 1 * profile.index_lookup_us
            + 3 * profile.page_miss_us
        )
        assert profile.latency_ms(metrics) == pytest.approx(
            expected_us / 1000
        )

    def test_zero_queries_still_counts_one_overhead(self):
        metrics = ExecutionMetrics()
        assert NEO4J_LIKE.latency_ms(metrics) == pytest.approx(
            NEO4J_LIKE.fixed_overhead_us / 1000
        )

    def test_profiles_registry(self):
        from repro.graphdb.backends import PROFILES

        assert set(PROFILES) == {"neo4j-like", "janusgraph-like"}
