"""Observability through the driver: metrics, traces, event log.

The registry and event log are process-global, so these tests measure
*deltas* around their own workload and always restore the global state
they touch.
"""

import json
from dataclasses import fields

import pytest

from repro.exceptions import ResourceLimitError
from repro.graphdb import ObserveConfig, PropertyGraph, connect
from repro.graphdb import observe
from repro.graphdb.metrics import ExecutionMetrics


def small_graph() -> PropertyGraph:
    g = PropertyGraph("obs")
    for i in range(30):
        g.add_vertex("Drug", {"id": i, "name": f"d{i}"})
    g.create_property_index("Drug", "id")
    return g


@pytest.fixture(autouse=True)
def pristine_observe_state():
    """Restore the global observe layer after each test."""
    was_enabled = observe.REGISTRY.enabled
    yield
    observe.REGISTRY.enabled = was_enabled
    observe.EVENTS.disable()


def counter(name: str) -> float:
    return observe.REGISTRY.snapshot()["counters"][name]


class TestDatabaseMetrics:
    def test_query_workload_populates_registry(self):
        before = counter("repro_queries_total")
        rows_before = counter("repro_query_rows_total")
        with connect(small_graph()) as db:
            with db.session() as session:
                session.run("MATCH (d:Drug) RETURN d.name").consume()
            snap = db.metrics()
        assert snap["counters"]["repro_queries_total"] == before + 1
        assert (
            snap["counters"]["repro_query_rows_total"] == rows_before + 30
        )
        hist = snap["histograms"]["repro_query_seconds"]
        assert hist["count"] >= 1

    def test_plan_cache_and_guardrail_counters(self):
        hits_before = counter("repro_plan_cache_hits_total")
        with connect(small_graph()) as db:
            with db.session() as session:
                q = "MATCH (d:Drug {id: $id}) RETURN d.name"
                session.run(q, id=1).consume()
                session.run(q, id=2).consume()  # cached plan
                trips = observe.REGISTRY.snapshot()["labeled_counters"][
                    "repro_guardrail_trips_total"
                ]["values"].get("max_rows", 0)
                with pytest.raises(ResourceLimitError):
                    session.run(
                        "MATCH (d:Drug) RETURN d.name", max_rows=3
                    ).consume()
        assert counter("repro_plan_cache_hits_total") == hits_before + 1
        snap = observe.REGISTRY.snapshot()
        assert (
            snap["labeled_counters"]["repro_guardrail_trips_total"][
                "values"
            ]["max_rows"]
            == trips + 1
        )

    def test_plan_observations_record_est_vs_actual(self):
        # A variable name no other test uses -> a fresh plan
        # fingerprint, still inside the exact-fold sampling window.
        query = "MATCH (obsdrug:Drug) RETURN obsdrug.name"
        with connect(small_graph()) as db:
            with db.session() as session:
                summary = session.run(query).consume()
        plans = observe.REGISTRY.snapshot()["plans"]
        entry = plans[summary.plan_digest]
        assert entry["executions"] >= 1
        assert entry["sampled"] >= 1
        assert entry["steps"][0]["actual_rows_last"] == 30

    def test_disabled_registry_freezes_counters(self):
        observe.REGISTRY.enabled = False
        before = counter("repro_queries_total")
        with connect(small_graph()) as db:
            with db.session() as session:
                session.run("MATCH (d:Drug) RETURN d.name").consume()
        assert counter("repro_queries_total") == before

    def test_connect_observe_metrics_false_disables(self):
        with connect(small_graph(), observe={"metrics": False}) as db:
            assert db.metrics()["enabled"] is False
        observe.REGISTRY.enabled = True


class TestTracing:
    def test_summary_trace_spans(self):
        with connect(small_graph()) as db:
            with db.session() as session:
                result = session.run(
                    "MATCH (d:Drug) RETURN d.name", trace=True
                )
                records = list(result)
                summary = result.consume()
        trace = summary.trace
        assert trace is not None
        names = [s.name for s in trace.root.children]
        assert names == ["parse", "plan", "execute"]
        execute = trace.execute_span
        assert execute.attrs["rows"] == len(records) == 30
        assert execute.end is not None
        assert all(
            child.end is not None for child in execute.children
        )

    def test_untraced_summary_has_no_trace(self):
        with connect(small_graph()) as db:
            with db.session() as session:
                summary = session.run(
                    "MATCH (d:Drug) RETURN d.name"
                ).consume()
        assert summary.trace is None

    def test_trace_actuals_match_explain_analyze(self):
        query = "MATCH (d:Drug {id: $id}) RETURN d.name"
        with connect(small_graph()) as db:
            with db.session() as session:
                result = session.run(query, id=3, trace=True)
                summary = result.consume()
                analyzed = session.explain(query, analyze=True, id=3)
        ops = summary.trace.execute_span.children
        # One source of truth: every operator span's text and actual
        # row count appears verbatim in EXPLAIN ANALYZE.
        for span in ops:
            text = span.name.split(". ", 1)[1]
            assert text in analyzed
            assert f"actual={span.attrs['actual_rows']} rows" in analyzed

    def test_traced_and_untraced_rows_identical(self):
        query = "MATCH (d:Drug) RETURN d.name"
        with connect(small_graph()) as db:
            with db.session() as session:
                plain = [r.values() for r in session.run(query)]
                traced = [
                    r.values() for r in session.run(query, trace=True)
                ]
        assert sorted(map(tuple, plain)) == sorted(map(tuple, traced))

    def test_cached_plan_collapses_to_plan_span(self):
        query = "MATCH (d:Drug {id: $id}) RETURN d.name"
        with connect(small_graph()) as db:
            with db.session() as session:
                session.run(query, id=1).consume()
                summary = session.run(query, id=2, trace=True).consume()
        names = [s.name for s in summary.trace.root.children]
        assert names == ["plan", "execute"]
        plan_span = summary.trace.root.children[0]
        assert plan_span.attrs.get("cached") is True


class TestEventLogWiring:
    def test_connect_observe_arms_slow_query_log(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        config = ObserveConfig(log_path=log_path, slow_query_ms=0)
        with connect(small_graph(), observe=config) as db:
            with db.session() as session:
                summary = session.run(
                    "MATCH (d:Drug) RETURN d.name"
                ).consume()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        slow = [e for e in events if e["event"] == "slow_query"]
        assert len(slow) == 1
        event = slow[0]
        assert event["plan_digest"] == summary.plan_digest
        assert event["rows"] == 30
        assert event["metrics"]["rows"] == 30
        assert event["threshold_ms"] == 0

    def test_storage_lifecycle_events(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        data_dir = tmp_path / "store"
        with connect(data_dir, observe=str(log_path)) as db:
            with db.session() as session:
                with session.begin_tx() as tx:
                    tx.add_vertex("Drug", {"id": 1, "name": "aspirin"})
                    tx.commit()
            db.checkpoint()
        with connect(data_dir) as db:  # reopen -> recovery event
            pass
        kinds = [
            json.loads(line)["event"]
            for line in log_path.read_text().splitlines()
        ]
        assert "checkpoint" in kinds
        assert kinds.count("recovery") >= 2  # first open + reopen

    def test_high_threshold_stays_silent(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        config = ObserveConfig(log_path=log_path, slow_query_ms=60_000.0)
        with connect(small_graph(), observe=config) as db:
            with db.session() as session:
                session.run("MATCH (d:Drug) RETURN d.name").consume()
        events = (
            [
                json.loads(line)
                for line in log_path.read_text().splitlines()
            ]
            if log_path.exists()
            else []
        )
        assert not [e for e in events if e["event"] == "slow_query"]


class TestExecutionMetricsDerivation:
    def test_as_dict_covers_every_field(self):
        m = ExecutionMetrics()
        assert set(m.as_dict()) == {f.name for f in fields(ExecutionMetrics)}

    def test_merge_sums_every_field(self):
        a, b = ExecutionMetrics(), ExecutionMetrics()
        for i, f in enumerate(fields(ExecutionMetrics), start=1):
            setattr(a, f.name, i)
            setattr(b, f.name, 10 * i)
        a.merge(b)
        for i, f in enumerate(fields(ExecutionMetrics), start=1):
            assert getattr(a, f.name) == 11 * i
