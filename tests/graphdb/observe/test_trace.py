"""Trace / Span: nesting, timing, rendering."""

import time

import pytest

from repro.graphdb.observe import Trace
from repro.graphdb.observe.trace import Span


class TestSpan:
    def test_finish_sets_end_once(self):
        span = Span("s")
        span.finish()
        end = span.end
        span.finish()  # idempotent
        assert span.end == end
        assert span.duration_ms is not None and span.duration_ms >= 0

    def test_unfinished_span_has_no_duration(self):
        assert Span("s").duration_ms is None

    def test_walk_is_depth_first(self):
        root = Span("root")
        a, b = Span("a"), Span("b")
        a.children.append(Span("a1"))
        root.children.extend([a, b])
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]

    def test_as_dict_includes_attrs_and_children(self):
        span = Span("s")
        span.attrs["rows"] = 3
        span.children.append(Span("child").finish())
        span.finish()
        d = span.as_dict()
        assert d["name"] == "s" and d["rows"] == 3
        assert d["children"][0]["name"] == "child"
        assert d["duration_ms"] >= 0


class TestTrace:
    def test_phase_spans_nest_under_root(self):
        trace = Trace("MATCH (n) RETURN n")
        with trace.span("parse"):
            pass
        with trace.span("plan"):
            pass
        trace.begin_execute()
        names = [s.name for s in trace.root.children]
        assert names == ["parse", "plan", "execute"]

    def test_span_timing_is_monotonic(self):
        trace = Trace("q")
        with trace.span("parse") as parse:
            time.sleep(0.001)
        with trace.span("plan") as plan:
            pass
        assert parse.end <= plan.start
        assert parse.duration_ms >= 1.0

    def test_complete_builds_operator_spans(self):
        trace = Trace("q")
        trace.begin_execute()
        trace.step_times = [0.002, 0.005]
        trace.complete(
            step_texts=["Scan d", "Expand d->i"],
            est_rows=[50.0, None],
            actual_rows=[48, 120],
            rows=120,
        )
        execute = trace.execute_span
        assert execute.attrs["rows"] == 120
        assert execute.end is not None and trace.root.end is not None
        ops = execute.children
        assert [s.name for s in ops] == ["1. Scan d", "2. Expand d->i"]
        assert ops[0].attrs == {"est_rows": 50.0, "actual_rows": 48}
        assert ops[1].attrs == {"est_rows": None, "actual_rows": 120}
        # step_times are inclusive seconds offset from execute start
        assert ops[0].duration_ms == pytest.approx(2.0, rel=0.01)
        assert ops[1].duration_ms == pytest.approx(5.0, rel=0.01)

    def test_complete_without_execute_span_synthesizes_one(self):
        trace = Trace("q")
        trace.complete(["s"], [1.0], [1], 1)
        assert trace.execute_span is not None
        assert trace.root.end is not None

    def test_missing_actual_rows_default_to_zero(self):
        trace = Trace("q")
        trace.complete(["a", "b"], [1.0, 2.0], [5], 5)
        ops = trace.execute_span.children
        assert ops[0].attrs["actual_rows"] == 5
        assert ops[1].attrs["actual_rows"] == 0

    def test_render_tree(self):
        trace = Trace("MATCH (d:Drug) RETURN d")
        with trace.span("parse"):
            pass
        trace.begin_execute()
        trace.step_times = [0.001]
        trace.complete(["Scan d via label scan (:Drug)"], [22.0], [22], 22)
        text = trace.render()
        lines = text.splitlines()
        assert lines[0].startswith("query MATCH (d:Drug) RETURN d")
        assert any(line.startswith("|- parse") for line in lines)
        assert any(line.startswith("`- execute") for line in lines)
        assert "est~22, actual=22 rows" in text

    def test_cached_plan_span_renders_marker(self):
        trace = Trace("q")
        span = trace.begin("plan").finish()
        span.attrs["cached"] = True
        assert "cached plan" in trace.render()

    def test_as_dict_carries_query_and_started_at(self):
        trace = Trace("MATCH (n) RETURN n")
        trace.complete([], [], [], 0)
        d = trace.as_dict()
        assert d["query"] == "MATCH (n) RETURN n"
        assert d["started_at"] > 0
        assert d["duration_ms"] >= 0
