"""EventLog / ObserveConfig: JSONL sink, slow-query threshold."""

import json
from pathlib import Path

import pytest

from repro.graphdb.observe import EventLog, ObserveConfig, query_fingerprint


def read_events(path: Path) -> list[dict]:
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


class TestQueryFingerprint:
    def test_stable_and_short(self):
        fp = query_fingerprint("MATCH (n) RETURN n")
        assert fp == query_fingerprint("MATCH (n) RETURN n")
        assert len(fp) == 12
        assert fp != query_fingerprint("MATCH (m) RETURN m")


class TestObserveConfig:
    def test_coerce_passthrough(self):
        config = ObserveConfig(slow_query_ms=5.0)
        assert ObserveConfig.coerce(config) is config

    def test_coerce_path_is_log_path(self, tmp_path):
        config = ObserveConfig.coerce(tmp_path / "ev.jsonl")
        assert config.log_path == tmp_path / "ev.jsonl"
        assert config.slow_query_ms is None and config.metrics is True

    def test_coerce_dict(self):
        config = ObserveConfig.coerce(
            {"slow_query_ms": 10.0, "metrics": False}
        )
        assert config.slow_query_ms == 10.0 and config.metrics is False

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError, match="observe="):
            ObserveConfig.coerce(42)


class TestEventLog:
    def test_inert_until_configured(self, tmp_path):
        log = EventLog()
        assert not log.enabled
        log.emit("noop", x=1)  # no path -> dropped silently

    def test_emit_appends_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("checkpoint", generation=2)
        log.emit("recovery", replayed_ops=7)
        events = read_events(path)
        assert [e["event"] for e in events] == ["checkpoint", "recovery"]
        assert events[0]["generation"] == 2
        assert events[1]["replayed_ops"] == 7
        assert all(e["ts"] > 0 for e in events)
        log.disable()

    def test_emit_serializes_paths_as_strings(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("quarantine", path=tmp_path / "bad.wal")
        assert read_events(path)[0]["path"].endswith("bad.wal")
        log.disable()

    def test_disable_clears_path_and_threshold(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl", slow_query_ms=1.0)
        log.disable()
        assert not log.enabled and log.slow_query_ms is None
        log.emit("after", x=1)
        assert not (tmp_path / "e.jsonl").exists()

    def test_unarmed_slow_query_logs_nothing(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path)  # no threshold
        log.slow_query(1000.0, "MATCH (n) RETURN n", "digest", 1, {})
        assert not path.exists()
        log.disable()

    def test_threshold_gates_slow_queries(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path, slow_query_ms=50.0)
        log.slow_query(49.9, "fast", "d1", 1, {})
        log.slow_query(50.0, "at-threshold", "d2", 2, {"rows": 2})
        log.slow_query(200.0, "slow", "d3", 3, {})
        events = read_events(path)
        assert [e["query"] for e in events] == ["at-threshold", "slow"]
        first = events[0]
        assert first["event"] == "slow_query"
        assert first["elapsed_ms"] == 50.0
        assert first["threshold_ms"] == 50.0
        assert first["plan_digest"] == "d2"
        assert first["rows"] == 2
        assert first["metrics"] == {"rows": 2}
        assert first["query_fingerprint"] == query_fingerprint(
            "at-threshold"
        )
        log.disable()

    def test_zero_threshold_logs_every_query(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path, slow_query_ms=0)
        log.slow_query(0.01, "q", "d", 0, {})
        assert len(read_events(path)) == 1
        log.disable()

    def test_configure_repoints_sink(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        log = EventLog(first)
        log.emit("one")
        log.configure(path=second)
        log.emit("two")
        assert [e["event"] for e in read_events(first)] == ["one"]
        assert [e["event"] for e in read_events(second)] == ["two"]
        log.disable()
