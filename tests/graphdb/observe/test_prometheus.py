"""Prometheus text exposition of a MetricsRegistry."""

from repro.graphdb.observe import MetricsRegistry, render_prometheus


def fresh_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_c_total", help="A counter.").inc(3)
    reg.gauge("repro_g", help="A gauge.").set(2.5)
    reg.labeled_counter("repro_lc_total", "kind").inc("time\"out")
    reg.histogram("repro_h_seconds", buckets=(0.001, 1.0)).observe(0.5)
    return reg


class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(fresh_registry())
        assert "# HELP repro_c_total A counter." in text
        assert "# TYPE repro_c_total counter" in text
        assert "\nrepro_c_total 3\n" in text
        assert "# TYPE repro_g gauge" in text
        assert "\nrepro_g 2.5\n" in text

    def test_labeled_counter_escapes_quotes(self):
        text = render_prometheus(fresh_registry())
        assert 'repro_lc_total{kind="time\\"out"} 1' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = fresh_registry()
        reg.histogram("repro_h_seconds").observe(0.0005)
        text = render_prometheus(reg)
        assert 'repro_h_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 2' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_h_seconds_sum 0.5005" in text
        assert "repro_h_seconds_count 2" in text

    def test_integral_floats_render_as_ints(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.0)
        assert "\ng 4\n" in render_prometheus(reg)

    def test_ends_with_newline(self):
        assert render_prometheus(fresh_registry()).endswith("\n")

    def test_defaults_to_global_registry(self):
        # The global registry always carries the engine's instruments.
        text = render_prometheus()
        assert "repro_queries_total" in text
        assert "repro_wal_appends_total" in text
