"""MetricsRegistry: instruments, thread safety, snapshots."""

import threading

import pytest

from repro.graphdb.observe import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestInstrumentCreation:
    def test_getters_are_idempotent(self, reg):
        c1 = reg.counter("c_total")
        c2 = reg.counter("c_total")
        assert c1 is c2
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.labeled_counter("lc", "kind") is reg.labeled_counter(
            "lc", "kind"
        )

    def test_type_conflict_raises(self, reg):
        reg.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("name")

    def test_instruments_in_registration_order(self, reg):
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        assert [i.name for i in reg.instruments()] == ["a", "b", "c"]

    def test_histogram_requires_buckets(self, reg):
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("empty", buckets=())


class TestCounterGauge:
    def test_counter_inc(self, reg):
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_inc(self, reg):
        g = reg.gauge("g")
        g.set(7)
        g.inc(-2)
        assert g.value == 5

    def test_labeled_counter_per_label(self, reg):
        lc = reg.labeled_counter("lc", "kind")
        lc.inc("timeout")
        lc.inc("timeout")
        lc.inc("max_rows", 3)
        assert lc.value("timeout") == 2
        assert lc.value("max_rows") == 3
        assert lc.value("absent") == 0
        assert lc.values == {"timeout": 2, "max_rows": 3}

    def test_disabled_updates_are_noops(self, reg):
        c, g = reg.counter("c"), reg.gauge("g")
        h = reg.histogram("h", buckets=(1.0,))
        lc = reg.labeled_counter("lc", "kind")
        reg.enabled = False
        c.inc()
        g.set(9)
        h.observe(0.5)
        lc.inc("x")
        assert c.value == 0 and g.value == 0.0
        assert h.count == 0 and lc.values == {}
        reg.enabled = True
        c.inc()
        assert c.value == 1


class TestHistogram:
    def test_le_semantics_value_on_bound_lands_in_that_bucket(self, reg):
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)  # == first bound -> first bucket (le is <=)
        h.observe(1.0001)  # just past -> second bucket
        h.observe(10.0)  # == last bound -> second bucket
        h.observe(10.5)  # past every bound -> +Inf
        buckets = dict(h.bucket_counts())
        assert buckets[1.0] == 1
        assert buckets[10.0] == 3  # cumulative: 1 + 2
        assert buckets[float("inf")] == 4
        assert h.count == 4
        assert h.sum == pytest.approx(1.0 + 1.0001 + 10.0 + 10.5)

    def test_bucket_counts_are_cumulative_and_end_with_inf(self, reg):
        h = reg.histogram("h", buckets=(1, 2, 3))
        for v in (0.5, 1.5, 2.5, 99):
            h.observe(v)
        assert h.bucket_counts() == [
            (1, 1), (2, 2), (3, 3), (float("inf"), 4)
        ]

    def test_bounds_are_sorted(self, reg):
        h = reg.histogram("h", buckets=(10.0, 1.0, 5.0))
        assert h.bounds == (1.0, 5.0, 10.0)

    def test_default_buckets_are_seconds_scale(self, reg):
        h = reg.histogram("h")
        assert h.bounds == DEFAULT_SECONDS_BUCKETS


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self, reg):
        c = reg.counter("c")
        lc = reg.labeled_counter("lc", "kind")
        h = reg.histogram("h", buckets=(1.0,))
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc()
                lc.inc("k")
                h.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert c.value == total
        assert lc.value("k") == total
        assert h.count == total
        assert h.sum == pytest.approx(0.5 * total)

    def test_snapshot_during_updates_does_not_deadlock(self, reg):
        c = reg.counter("c")
        reg.histogram("h", buckets=(1.0,))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                c.inc()

        t = threading.Thread(target=hammer)
        t.start()
        try:
            for _ in range(50):
                snap = reg.snapshot()
                assert snap["counters"]["c"] >= 0
        finally:
            stop.set()
            t.join()


class TestSnapshotReset:
    def test_snapshot_shape(self, reg):
        reg.counter("c").inc(2)
        reg.gauge("g").set(3)
        reg.labeled_counter("lc", "point").inc("a")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 3}
        assert snap["labeled_counters"]["lc"] == {
            "label": "point", "values": {"a": 1}
        }
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1 and hist["sum"] == 0.5
        assert hist["buckets"][-1] == ["+Inf", 1]
        assert snap["plans"] == {}

    def test_reset_zeroes_in_place(self, reg):
        c = reg.counter("c")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        reg.plans.record("fp", [("step", 1.0, 1)])
        reg.reset()
        assert c.value == 0
        assert h.count == 0 and h.sum == 0.0
        assert len(reg.plans) == 0
        c.inc()  # handle still live after reset
        assert c.value == 1


class TestPlanObservations:
    def test_accumulates_per_fingerprint(self, reg):
        reg.plans.record("fp1", [("Scan d", 50.0, 48)])
        reg.plans.record("fp1", [("Scan d", 50.0, 52)])
        snap = reg.plans.snapshot()
        assert snap["fp1"]["executions"] == 2
        step = snap["fp1"]["steps"][0]
        assert step["est_rows"] == 50.0
        assert step["actual_rows_total"] == 100
        assert step["actual_rows_last"] == 52

    def test_shape_change_resets_entry(self, reg):
        reg.plans.record("fp", [("a", 1.0, 1), ("b", 2.0, 2)])
        reg.plans.record("fp", [("a", 1.0, 1)])  # replanned: fewer steps
        snap = reg.plans.snapshot()
        assert snap["fp"]["executions"] == 1
        assert len(snap["fp"]["steps"]) == 1

    def test_lru_eviction_keeps_recent(self):
        reg = MetricsRegistry()
        reg.plans.capacity = 2
        reg.plans.record("a", [("s", 1.0, 1)])
        reg.plans.record("b", [("s", 1.0, 1)])
        reg.plans.record("a", [("s", 1.0, 1)])  # refresh a
        reg.plans.record("c", [("s", 1.0, 1)])  # evicts b (oldest)
        assert set(reg.plans.snapshot()) == {"a", "c"}

    def test_disabled_registry_records_nothing(self, reg):
        reg.enabled = False
        reg.plans.record("fp", [("s", 1.0, 1)])
        assert len(reg.plans) == 0
