"""Driver API: connect / Database / Session / Result / Transaction."""

import pytest

from repro.exceptions import (
    GraphError,
    ParameterError,
    QueryError,
    QuerySyntaxError,
    TransactionError,
)
from repro.graphdb import (
    Database,
    PropertyGraph,
    Record,
    connect,
)
from repro.graphdb.storage import GraphStore


def small_graph() -> PropertyGraph:
    g = PropertyGraph("drv")
    for i in range(20):
        g.add_vertex("Drug", {"id": i, "name": f"d{i}"})
    g.create_property_index("Drug", "id")
    return g


@pytest.fixture
def db():
    return connect(small_graph())


class TestConnect:
    def test_graph_connect_is_in_memory(self, db):
        assert isinstance(db, Database)
        assert db.store is None and not db.durable

    def test_directory_connect_is_durable(self, tmp_path):
        with connect(tmp_path / "d") as db:
            assert db.durable
            with db.session() as s, s.begin_tx() as tx:
                tx.add_vertex("A", {"x": 1})
                tx.commit()
        with connect(tmp_path / "d", create=False) as db:
            with db.session() as s:
                n = s.run("MATCH (a:A) RETURN count(*)").single()[0]
                assert n == 1

    def test_readonly_connect(self, tmp_path):
        store = GraphStore.create(tmp_path / "d", small_graph())
        store.close()
        with connect(tmp_path / "d", readonly=True) as db:
            assert db.store is None
            with db.session() as s:
                assert (
                    s.run("MATCH (d:Drug) RETURN count(*)").single()[0]
                    == 20
                )

    def test_readonly_missing_dir_raises(self, tmp_path):
        with pytest.raises(GraphError):
            connect(tmp_path / "nope", readonly=True)

    def test_snapshot_file_connect(self, tmp_path):
        from repro.graphdb.storage import write_snapshot

        path = tmp_path / "g.rpgs"
        write_snapshot(small_graph(), path)
        with connect(path) as db:
            assert db.store is None
            with db.session() as s:
                assert (
                    s.run("MATCH (d:Drug) RETURN count(*)").single()[0]
                    == 20
                )

    def test_closed_database_rejects_sessions(self, db):
        db.close()
        with pytest.raises(GraphError):
            db.session()


class TestResultCursor:
    def test_keys_and_records(self, db):
        with db.session() as s:
            result = s.run(
                "MATCH (d:Drug {id: $id}) RETURN d.id AS id, "
                "d.name AS name",
                id=4,
            )
            assert result.keys() == ["id", "name"]
            records = result.records()
            assert records == [Record(["id", "name"], (4, "d4"))]

    def test_record_accessors(self, db):
        with db.session() as s:
            record = s.run(
                "MATCH (d:Drug {id: $id}) RETURN d.id AS id", id=1
            ).single()
            assert record["id"] == 1
            assert record[0] == 1
            assert record.get("id") == 1
            assert record.get("missing", "x") == "x"
            assert record.data() == {"id": 1}
            assert list(record) == [1]
            assert "id" in record
            with pytest.raises(KeyError):
                record["nope"]

    def test_single_zero_rows(self, db):
        with db.session() as s:
            with pytest.raises(QueryError, match="none"):
                s.run(
                    "MATCH (d:Drug {id: $id}) RETURN d", id=999
                ).single()

    def test_single_many_rows(self, db):
        with db.session() as s:
            with pytest.raises(QueryError, match="more than one"):
                s.run("MATCH (d:Drug) RETURN d").single()

    def test_values_drains(self, db):
        with db.session() as s:
            values = s.run(
                "MATCH (d:Drug) RETURN d.id ORDER BY d.id LIMIT 3"
            ).values()
            assert values == [[0], [1], [2]]

    def test_lazy_streaming(self, db):
        """Pulling one record must not execute the full match."""
        with db.session() as s:
            result = s.run("MATCH (d:Drug) RETURN d.id")
            iterator = iter(result)
            next(iterator)
            # Work done so far is bounded: well below a full scan.
            assert s._graph_session.metrics.vertex_reads < 20

    def test_detach_on_next_query(self, db):
        with db.session() as s:
            first = s.run("MATCH (d:Drug) RETURN d.id")
            second = s.run("MATCH (d:Drug) RETURN count(*)")
            assert second.single()[0] == 20
            # The first result was buffered, not lost.
            assert len(first.records()) == 20

    def test_consume_summary(self, db):
        with db.session() as s:
            result = s.run(
                "MATCH (d:Drug {id: $id}) RETURN d.name", id=2
            )
            summary = result.consume()
            assert summary.rows == 1
            assert summary.metrics.queries == 1
            assert summary.latency_ms > 0
            assert "index lookup (Drug.id = $id)" in summary.plan
            assert "actual=1" in summary.plan
            assert summary.parameters == {"id": 2}

    def test_summary_after_iteration_costs_nothing(self, db):
        with db.session() as s:
            result = s.run("MATCH (d:Drug) RETURN d.id")
            rows = result.values()
            summary = result.consume()
            assert summary.rows == len(rows) == 20

    def test_parameters_dict_and_kwargs_merge(self, db):
        with db.session() as s:
            record = s.run(
                "MATCH (d:Drug {id: $id}) RETURN d.name, $tag",
                {"id": 9, "tag": "a"},
                tag="b",  # kwargs win
            ).single()
            assert record.values() == ["d9", "b"]

    def test_missing_parameter_is_parameter_error(self, db):
        with db.session() as s:
            with pytest.raises(ParameterError):
                s.run("MATCH (d:Drug {id: $id}) RETURN d")

    def test_syntax_error_hierarchy(self, db):
        with db.session() as s:
            with pytest.raises(QuerySyntaxError) as exc_info:
                s.run("MATCH (d:Drug RETURN d")
            # The documented catch-all for driver users.
            assert isinstance(exc_info.value, GraphError)


class TestSessionLifecycle:
    def test_closed_session_rejects_run(self, db):
        s = db.session()
        s.close()
        with pytest.raises(TransactionError):
            s.run("MATCH (d:Drug) RETURN d")

    def test_explain(self, db):
        with db.session() as s:
            plan = s.explain("MATCH (d:Drug {id: $id}) RETURN d")
            assert "$id" in plan

    def test_last_summary(self, db):
        with db.session() as s:
            s.run("MATCH (d:Drug) RETURN count(*)").consume()
            assert s.last_summary().rows == 1


class TestTransactions:
    def test_commit_visible_and_durable(self, tmp_path):
        with connect(tmp_path / "d", sync="always") as db:
            with db.session() as s:
                with s.begin_tx() as tx:
                    vid = tx.add_vertex("Drug", {"id": 1})
                    tx.set_property(vid, "name", "aspirin")
                    tx.commit()
        with connect(tmp_path / "d", readonly=True) as db:
            with db.session() as s:
                record = s.run(
                    "MATCH (d:Drug) RETURN d.name"
                ).single()
                assert record[0] == "aspirin"

    def test_rollback_in_context_manager(self, db):
        with db.session() as s:
            with s.begin_tx() as tx:
                tx.add_vertex("Drug", {"id": 999})
                # no commit: __exit__ rolls back
            n = s.run("MATCH (d:Drug) RETURN count(*)").single()[0]
            assert n == 20

    def test_tx_reads_see_uncommitted_writes(self, db):
        with db.session() as s:
            with s.begin_tx() as tx:
                tx.add_vertex("Drug", {"id": 777})
                n = tx.run(
                    "MATCH (d:Drug) RETURN count(*)"
                ).single()[0]
                assert n == 21
                tx.rollback()
            assert (
                s.run("MATCH (d:Drug) RETURN count(*)").single()[0]
                == 20
            )

    def test_closed_tx_rejects_use(self, db):
        with db.session() as s:
            tx = s.begin_tx()
            tx.commit()
            with pytest.raises(TransactionError):
                tx.add_vertex("Drug", {})
            with pytest.raises(TransactionError):
                tx.commit()

    def test_one_tx_per_session(self, db):
        with db.session() as s:
            s.begin_tx()
            with pytest.raises(TransactionError):
                s.begin_tx()

    def test_session_close_rolls_back_open_tx(self, db):
        s = db.session()
        tx = s.begin_tx()
        tx.add_vertex("Drug", {"id": 555})
        s.close()
        with db.session() as s2:
            assert (
                s2.run("MATCH (d:Drug) RETURN count(*)").single()[0]
                == 20
            )

    def test_open_result_isolated_from_rollback(self, db):
        """A cursor opened before a transaction must never surface
        rows the transaction later rolled back."""
        with db.session() as s:
            result = s.run("MATCH (d:Drug) RETURN d.id")
            with s.begin_tx() as tx:
                tx.add_vertex("Drug", {"id": 777})
                tx.rollback()
            ids = [record[0] for record in result]
            assert 777 not in ids and len(ids) == 20

    def test_open_result_isolated_from_tx_mutation(self, db):
        """A cursor streaming inside a transaction settles before
        each mutation, so it reflects pre-mutation state."""
        with db.session() as s:
            with s.begin_tx() as tx:
                result = tx.run("MATCH (d:Drug) RETURN d.id")
                next(iter(result))
                tx.add_vertex("Drug", {"id": 888})
                ids = [record[0] for record in result]
                assert 888 not in ids
                tx.rollback()

    def test_commit_after_database_close_is_driver_error(self, tmp_path):
        """A closed store must surface as TransactionError *before*
        the in-memory commit, leaving the transaction open and
        retryable - not as a raw file error afterwards."""
        db = connect(tmp_path / "d")
        s = db.session()
        tx = s.begin_tx()
        tx.add_vertex("Drug", {"id": 1})
        db.close()
        with pytest.raises(TransactionError, match="closed"):
            tx.commit()
        assert not tx.closed  # still open: nothing half-committed
        assert db.graph.in_transaction

    def test_commit_after_close_in_memory_still_commits(self, db):
        """An in-memory database has nothing durable at stake:
        closing it must not turn explicit commits into rollbacks."""
        s = db.session()
        tx = s.begin_tx()
        tx.add_vertex("Drug", {"id": 999})
        db.close()
        tx.commit()
        assert db.graph.get_property(20, "id") == 999

    def test_sync_on_closed_database_is_driver_error(self, tmp_path):
        db = connect(tmp_path / "d")
        db.close()
        with pytest.raises(GraphError):
            db.sync()

    def test_tx_rollback_keeps_plan_cache_usable(self, db):
        """Rollback leaves statistics/plan-cache epochs consistent:
        the same parameterized query stays cached across a tx."""
        stats = db.graph.statistics()
        with db.session() as s:
            q = "MATCH (d:Drug {id: $id}) RETURN d.name"
            s.run(q, id=1).consume()
            with s.begin_tx() as tx:
                tx.add_vertex("Drug", {"id": 888})
                tx.rollback()
            misses = stats.plan_cache.misses
            s.run(q, id=2).consume()
            s.run(q, id=3).consume()
            # At most one replan (epoch may have advanced); never one
            # per execution.
            assert stats.plan_cache.misses <= misses + 1
            before = stats.plan_cache.misses
            s.run(q, id=4).consume()
            assert stats.plan_cache.misses == before
