"""Query guardrails: ``session.run(..., timeout=, max_rows=)``.

The deadline is enforced *inside* the executor's streaming loop (one
check per binding pulled), so it interrupts aggregations and sorts
that drain the pipeline eagerly, not just slow consumers.  ``max_rows``
is a budget, not a ``LIMIT``: exceeding it raises, because silently
truncating would let a buggy query masquerade as a healthy one.
"""

import pytest

from repro.graphdb import (
    GraphError,
    QueryError,
    QueryTimeoutError,
    ResourceLimitError,
    connect,
)
from repro.graphdb.graph import PropertyGraph


@pytest.fixture
def db():
    graph = PropertyGraph("guard")
    people = [
        graph.add_vertex("Person", {"name": f"p{i}", "age": i})
        for i in range(20)
    ]
    for i, vid in enumerate(people[1:], start=1):
        graph.add_edge(people[i - 1], vid, "knows")
    with connect(graph) as database:
        yield database


class TestHierarchy:
    def test_guardrail_errors_are_graph_errors(self):
        assert issubclass(ResourceLimitError, GraphError)
        assert issubclass(QueryTimeoutError, ResourceLimitError)
        # Not query errors: the query text is fine, the budget is not.
        assert not issubclass(ResourceLimitError, QueryError)


class TestMaxRows:
    def test_over_budget_raises(self, db):
        with db.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.name", max_rows=5
            )
            with pytest.raises(ResourceLimitError, match="max_rows=5"):
                result.records()

    def test_under_budget_passes(self, db):
        with db.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.name", max_rows=20
            )
            assert len(result.records()) == 20
            assert result.consume().rows == 20

    def test_limit_inside_budget_is_fine(self, db):
        with db.session() as session:
            rows = session.run(
                "MATCH (p:Person) RETURN p.name LIMIT 3", max_rows=5
            ).values()
            assert len(rows) == 3

    def test_raises_lazily_at_the_offending_row(self, db):
        with db.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.name", max_rows=2
            )
            it = iter(result)
            assert next(it) is not None
            assert next(it) is not None
            with pytest.raises(ResourceLimitError):
                next(it)

    def test_aggregate_single_row_passes(self, db):
        with db.session() as session:
            record = session.run(
                "MATCH (p:Person) RETURN count(*) AS n", max_rows=1
            ).single()
            assert record["n"] == 20

    def test_session_survives_a_trip(self, db):
        with db.session() as session:
            with pytest.raises(ResourceLimitError):
                session.run(
                    "MATCH (p:Person) RETURN p.name", max_rows=1
                ).records()
            # The session stays usable for the next query.
            assert session.run(
                "MATCH (p:Person) RETURN count(*) AS n"
            ).single()["n"] == 20

    def test_abandoned_tripped_result_settles_quietly(self, db):
        with db.session() as session:
            session.run("MATCH (p:Person) RETURN p.name", max_rows=1)
            # Starting the next query detaches (drains) the first one;
            # its budget trip must not surface from this call.
            assert session.run(
                "MATCH (p:Person) RETURN count(*) AS n"
            ).single()["n"] == 20

    def test_invalid_budget_rejected(self, db):
        with db.session() as session:
            with pytest.raises(QueryError):
                session.run("MATCH (p:Person) RETURN p", max_rows=-1)


class TestTimeout:
    def test_zero_timeout_trips_deterministically(self, db):
        with db.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.name", timeout=0
            )
            with pytest.raises(QueryTimeoutError):
                result.records()

    def test_expiry_interrupts_aggregation(self, db):
        """Aggregation drains the match stream eagerly (inside
        ``session.run``); the deadline check sits upstream of
        projection, so it interrupts that drain too."""
        with db.session() as session:
            with pytest.raises(QueryTimeoutError):
                session.run(
                    "MATCH (p:Person)-[:knows]->(q:Person) "
                    "RETURN count(*) AS n",
                    timeout=0,
                ).records()

    def test_generous_timeout_passes(self, db):
        with db.session() as session:
            record = session.run(
                "MATCH (p:Person) RETURN count(*) AS n", timeout=60.0
            ).single()
            assert record["n"] == 20

    def test_timeout_is_a_resource_limit(self, db):
        with db.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.name", timeout=0
            )
            with pytest.raises(ResourceLimitError):
                result.records()

    def test_negative_timeout_rejected(self, db):
        with db.session() as session:
            with pytest.raises(QueryError):
                session.run("MATCH (p:Person) RETURN p", timeout=-1)


class TestVectorizedGuardrails:
    """The same guardrails, tripped *inside* the batch pipeline.

    The vectorized driver checks the deadline between batches and the
    row budget in the executor's shared tail, so every behavior above
    must hold unchanged when the query takes the batch path.  Each
    test first proves its query actually vectorizes (otherwise it
    would silently re-test the tuple pipeline).
    """

    @pytest.fixture
    def vdb(self):
        graph = PropertyGraph("vguard")
        people = [
            graph.add_vertex("Person", {"age": i, "score": i / 4})
            for i in range(30)
        ]
        for i in range(1, 30):
            graph.add_edge(people[i - 1], people[i], "knows")
        graph.freeze()
        with connect(graph) as database:
            yield database

    def _assert_vectorized(self, session, text):
        summary = session.run(text).consume()
        assert summary.mode == "vectorized", summary.plan
        return summary

    def test_max_rows_trips_in_batch_pipeline(self, vdb):
        with vdb.session() as session:
            self._assert_vectorized(
                session, "MATCH (p:Person) RETURN p.age"
            )
            result = session.run(
                "MATCH (p:Person) RETURN p.age", max_rows=5
            )
            with pytest.raises(ResourceLimitError, match="max_rows=5"):
                result.records()

    def test_timeout_trips_between_batches(self, vdb):
        with vdb.session() as session:
            self._assert_vectorized(
                session, "MATCH (p:Person) RETURN p.age"
            )
            result = session.run(
                "MATCH (p:Person) RETURN p.age", timeout=0
            )
            with pytest.raises(QueryTimeoutError):
                result.records()

    def test_timeout_interrupts_batch_aggregation(self, vdb):
        with vdb.session() as session:
            self._assert_vectorized(
                session,
                "MATCH (p:Person)-[:knows]->(q:Person) "
                "RETURN count(*) AS n",
            )
            with pytest.raises(QueryTimeoutError):
                session.run(
                    "MATCH (p:Person)-[:knows]->(q:Person) "
                    "RETURN count(*) AS n",
                    timeout=0,
                ).records()

    def test_tripped_abandoned_cursor_settles_quietly(self, vdb):
        with vdb.session() as session:
            session.run("MATCH (p:Person) RETURN p.age", max_rows=1)
            # The next query detaches (drains) the tripped cursor; the
            # budget trip must not surface from this unrelated call.
            record = session.run(
                "MATCH (p:Person) RETURN count(*) AS n"
            ).single()
            assert record["n"] == 30
            assert session.last_summary().mode == "vectorized"

    def test_under_budget_batch_run_passes(self, vdb):
        with vdb.session() as session:
            result = session.run(
                "MATCH (p:Person) RETURN p.age", max_rows=30, timeout=60.0
            )
            assert len(result.records()) == 30
            summary = result.consume()
            assert summary.mode == "vectorized"
            assert summary.rows == 30


class TestMetricsCounters:
    def test_summary_reports_fault_counters(self, db):
        with db.session() as session:
            summary = session.run(
                "MATCH (p:Person) RETURN count(*) AS n"
            ).consume()
        assert summary.metrics.io_retries == 0
        assert summary.metrics.faults_injected == 0
        assert "io_retries" in summary.metrics.as_dict()
        assert "faults_injected" in summary.metrics.as_dict()

    def test_counters_attribute_to_the_open_execution(self, tmp_path):
        """Storage retries during a result's window land in its
        summary (durable store + injected transient fsync errors)."""
        import errno

        from repro.graphdb import faults
        from repro.graphdb.graph import PropertyGraph
        from repro.graphdb.storage import GraphStore

        graph = PropertyGraph("m")
        graph.add_vertex("A", {"n": 1})
        GraphStore.create(tmp_path / "d", graph).close()
        with connect(tmp_path / "d", create=False, sync="always") as db:
            with db.session() as session:
                result = session.run("MATCH (a:A) RETURN a.n")
                with faults.REGISTRY.armed(
                    "wal.flush.fsync", mode="error",
                    errno_code=errno.EINTR, times=1,
                ):
                    db.graph.add_vertex("A", {"n": 2})
                summary = result.consume()
        faults.REGISTRY.reset()
        assert summary.metrics.io_retries >= 1
        assert summary.metrics.faults_injected >= 1
