"""Crash-recovery invariants.

The central property: **recovery from any WAL prefix reproduces
exactly the prefix of applied mutations**.  The tests below cut the
log at every byte offset (not just record boundaries) and assert the
recovered graph equals the state after the longest complete record
prefix - a torn tail loses at most the torn record, never corrupts,
and never resurrects anything.
"""

import shutil
import struct
import zlib

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (
    GraphStore,
    RecoveryManager,
    graph_state,
    read_snapshot,
    recover_graph,
    write_snapshot,
)
from repro.graphdb.storage.recovery import snapshot_name, wal_name
from repro.graphdb.storage.wal import (
    _HEADER,
    _RECORD,
    apply_mutation,
    decode_mutation,
    read_wal,
)


def seed_store(data_dir):
    """A small store: snapshotted base graph + a delete-heavy WAL."""
    base = PropertyGraph("crash")
    drugs = [
        base.add_vertex("Drug", {"name": f"drug{i}"}) for i in range(6)
    ]
    conds = [
        base.add_vertex("Condition", {"cname": f"c{i}"}) for i in range(4)
    ]
    for i, d in enumerate(drugs):
        base.add_edge(d, conds[i % len(conds)], "treat")
    store = GraphStore.create(data_dir, base, sync="always")
    g = store.graph
    # A mutation tail exercising every opcode, deletes included.
    g.add_vertex("Drug", {"name": "late", "doses": [1, 2]})
    g.add_edge(10, conds[0], "treat")
    g.set_property(drugs[0], "name", "renamed")
    g.set_property(drugs[1], "score", 2.5)
    g.remove_property(drugs[2], "name")
    g.remove_edge(1)
    g.remove_vertex(drugs[3])        # cascades into remove_edge
    g.create_property_index("Drug", "name")
    g.add_vertex(("Drug", "Generic"), {"name": "😀 multi"})
    g.remove_vertex(conds[1])        # cascades
    store.close()
    return data_dir


def record_boundaries(wal_path):
    """Byte offsets of record starts (plus the end offset)."""
    data = wal_path.read_bytes()
    offsets = [_HEADER.size]
    pos = _HEADER.size
    while pos + _RECORD.size <= len(data):
        length, _crc = _RECORD.unpack_from(data, pos)
        pos += _RECORD.size + length
        offsets.append(pos)
    assert pos == len(data), "fixture WAL must end on a record boundary"
    return offsets


def expected_states(data_dir):
    """graph_state after each *physical record* prefix of the WAL.

    Frame-aware: cascaded ``remove_vertex`` wraps its records in
    ``tx_begin``/``tx_commit``, so ops inside a frame only become
    visible at the commit record - a prefix cut mid-frame recovers the
    pre-frame state.
    """
    generation = RecoveryManager(data_dir).snapshot_generations()[0]
    graph = read_snapshot(data_dir / snapshot_name(generation))
    data = (data_dir / wal_name(generation)).read_bytes()
    states = [graph_state(graph)]
    frame = None
    pos = _HEADER.size
    while pos + _RECORD.size <= len(data):
        length, _crc = _RECORD.unpack_from(data, pos)
        start = pos + _RECORD.size
        op, args = decode_mutation(data[start:start + length])
        pos = start + length
        if op == "tx_begin":
            frame = []
        elif op == "tx_commit":
            for fop, fargs in frame:
                apply_mutation(graph, fop, fargs)
            frame = None
        elif op == "tx_rollback":
            frame = None
        elif frame is not None:
            frame.append((op, args))
        else:
            apply_mutation(graph, op, args)
        states.append(graph_state(graph))
    return states


class TestTruncationProperty:
    def test_every_byte_boundary_recovers_a_prefix(self, tmp_path):
        """Cut the WAL at *every* byte: recovery == longest full prefix."""
        origin = seed_store(tmp_path / "origin")
        states = expected_states(origin)
        wal_path = origin / wal_name(1)
        boundaries = record_boundaries(wal_path)
        full = wal_path.read_bytes()
        assert len(states) == len(boundaries)

        work = tmp_path / "work"
        for cut in range(_HEADER.size, len(full) + 1):
            # How many complete records fit in `cut` bytes?
            complete = max(
                i for i, off in enumerate(boundaries) if off <= cut
            )
            if work.exists():
                shutil.rmtree(work)
            shutil.copytree(origin, work)
            (work / wal_name(1)).write_bytes(full[:cut])
            recovered = recover_graph(work)
            assert graph_state(recovered) == states[complete], (
                f"cut at byte {cut}: expected prefix of "
                f"{complete} records"
            )

    def test_truncation_repairs_the_file(self, tmp_path):
        """Opening a torn store truncates the tail; reopen is clean."""
        origin = seed_store(tmp_path / "origin")
        wal_path = origin / wal_name(1)
        full = wal_path.read_bytes()
        wal_path.write_bytes(full[:-4])
        graph, report = RecoveryManager(origin).recover(truncate=True)
        assert report.truncated_bytes > 0
        # The file now ends exactly at the last valid record.
        assert wal_path.stat().st_size == report.wal_path.stat().st_size
        scan = read_wal(wal_path)
        assert scan.torn_bytes == 0
        _, report2 = RecoveryManager(origin).recover()
        assert report2.truncated_bytes == 0
        assert graph_state(graph) == graph_state(recover_graph(origin))

    def test_readonly_recovery_leaves_tail(self, tmp_path):
        origin = seed_store(tmp_path / "origin")
        wal_path = origin / wal_name(1)
        full = wal_path.read_bytes()
        wal_path.write_bytes(full[:-4])
        recover_graph(origin)  # truncate=False inside
        assert wal_path.stat().st_size == len(full) - 4


class TestGenerations:
    def test_corrupt_snapshot_falls_back(self, tmp_path):
        data_dir = seed_store(tmp_path / "d")
        # Checkpoint to generation 2, then corrupt that snapshot.
        with GraphStore.open(data_dir) as store:
            store.graph.add_vertex("Drug", {"name": "gen2"})
            store.checkpoint()
            expected = graph_state(store.graph)
        snap2 = data_dir / snapshot_name(2)
        blob = bytearray(snap2.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        # Keep a generation-1 fallback alongside.
        write_snapshot(recover_graph(data_dir), data_dir / snapshot_name(1), 1)
        snap2.write_bytes(bytes(blob))
        graph, report = RecoveryManager(data_dir).recover()
        assert report.generation == 1
        assert [p.name for p in report.corrupt_snapshots] == [snap2.name]
        # Generation 1 has no WAL here: state is the gen-2 checkpoint
        # state minus nothing (the fallback snapshot was written from
        # the post-checkpoint graph), so it must match exactly.
        assert graph_state(graph) == expected

    def test_mismatched_wal_generation_skipped(self, tmp_path):
        data_dir = seed_store(tmp_path / "d")
        wal1 = data_dir / wal_name(1)
        # Pretend the WAL belongs to generation 9 by rewriting its
        # header (filename still says 1).
        data = bytearray(wal1.read_bytes())
        header = bytearray(
            _HEADER.pack(b"RPGWAL01", 1, 0, 9, 0)
        )
        header[-4:] = struct.pack(
            "<I", zlib.crc32(bytes(header[:-4]))
        )
        data[:_HEADER.size] = header
        wal1.write_bytes(bytes(data))
        graph, report = RecoveryManager(data_dir).recover()
        assert report.replayed_ops == 0
        assert report.skipped_wals
        # Only the snapshot's state is visible.
        assert graph_state(graph) == graph_state(
            read_snapshot(data_dir / snapshot_name(1))
        )

    def test_empty_directory_recovers_fresh(self, tmp_path):
        target = tmp_path / "fresh"
        target.mkdir()
        graph, report = RecoveryManager(target, graph_name="g").recover()
        assert graph.num_vertices == 0
        assert report.generation == 0
        assert report.snapshot_path is None

    def test_all_snapshots_corrupt_raises(self, tmp_path):
        from repro.graphdb.storage import RecoveryError

        data_dir = seed_store(tmp_path / "d")
        snap = data_dir / snapshot_name(1)
        snap.write_bytes(b"garbage")
        with pytest.raises(RecoveryError):
            RecoveryManager(data_dir).recover()


class TestTransientIOErrors:
    """Transient read failures must abort recovery, never destroy data."""

    def test_snapshot_io_error_aborts(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.graphdb.storage import RecoveryError

        data_dir = seed_store(tmp_path / "d")
        real = Path.read_bytes

        def flaky(self):
            if self.suffix == ".rpgs":
                raise PermissionError("transient")
            return real(self)

        monkeypatch.setattr(Path, "read_bytes", flaky)
        with pytest.raises(RecoveryError, match="cannot read snapshot"):
            RecoveryManager(data_dir).recover()
        monkeypatch.undo()
        # Nothing was deleted; a healthy retry succeeds.
        assert (data_dir / snapshot_name(1)).exists()
        assert (data_dir / wal_name(1)).exists()
        RecoveryManager(data_dir).recover()

    def test_wal_io_error_aborts_without_unlink(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        from repro.graphdb.storage import RecoveryError

        data_dir = seed_store(tmp_path / "d")
        real = Path.read_bytes

        def flaky(self):
            if self.suffix == ".rpgw":
                raise PermissionError("transient")
            return real(self)

        monkeypatch.setattr(Path, "read_bytes", flaky)
        with pytest.raises(RecoveryError, match="cannot read WAL"):
            RecoveryManager(data_dir).recover(truncate=True)
        monkeypatch.undo()
        assert (data_dir / wal_name(1)).exists()
        graph, report = RecoveryManager(data_dir).recover()
        assert report.replayed_ops > 0
