"""WAL framing, batching, torn-tail, and replay tests."""

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (
    WalError,
    WriteAheadLog,
    graph_state,
    read_wal,
    replay,
)
from repro.graphdb.storage.wal import (
    apply_mutation,
    decode_mutation,
    encode_mutation,
)


MUTATIONS = [
    ("add_vertex", (0, frozenset({"Drug"}), {"name": "aspirin"})),
    ("add_vertex", (1, frozenset({"Drug", "Generic"}), {})),
    ("add_edge", (0, 0, 1, "interacts", {"note": "x"})),
    ("set_property", (1, "name", "ibuprofen")),
    ("set_property", (1, "doses", [10, 20])),
    ("remove_property", (0, "name")),
    ("remove_edge", (0,)),
    ("remove_vertex", (1,)),
    ("create_property_index", ("Drug", "name")),
]


class TestMutationCodec:
    @pytest.mark.parametrize("op,args", MUTATIONS)
    def test_roundtrip(self, op, args):
        assert decode_mutation(encode_mutation(op, args)) == (op, args)

    def test_unknown_op_rejected(self):
        with pytest.raises(WalError):
            encode_mutation("truncate_table", ())

    def test_apply_checks_assigned_ids(self):
        g = PropertyGraph()
        g.add_vertex("A")  # consumes vid 0
        with pytest.raises(WalError, match="vid"):
            apply_mutation(g, "add_vertex", (0, frozenset({"B"}), {}))


def log_all(path, generation=1, sync="batch", **kwargs):
    wal = WriteAheadLog(path, generation=generation, sync=sync, **kwargs)
    for op, args in MUTATIONS:
        wal.append(op, args)
    wal.close()
    return wal


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "w.rpgw"
        log_all(path, generation=3)
        scan = read_wal(path)
        assert scan.generation == 3
        assert scan.records == MUTATIONS
        assert scan.torn_bytes == 0

    def test_replay_reproduces_graph(self, tmp_path):
        path = tmp_path / "w.rpgw"
        log_all(path)
        expected = PropertyGraph("x")
        for op, args in MUTATIONS:
            apply_mutation(expected, op, args)
        recovered = PropertyGraph("x")
        assert replay(recovered, read_wal(path)) == len(MUTATIONS)
        assert graph_state(recovered) == graph_state(expected)

    def test_append_to_existing(self, tmp_path):
        path = tmp_path / "w.rpgw"
        log_all(path, generation=2)
        wal = WriteAheadLog(path, generation=2)
        wal.append("add_vertex", (2, frozenset({"C"}), {}))
        wal.close()
        scan = read_wal(path)
        assert len(scan.records) == len(MUTATIONS) + 1
        assert scan.generation == 2

    def test_sync_modes(self, tmp_path):
        for sync in ("always", "batch", "never"):
            path = tmp_path / f"{sync}.rpgw"
            log_all(path, sync=sync)
            assert read_wal(path).records == MUTATIONS
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "x.rpgw", 1, sync="sometimes")

    def test_batch_buffers_until_threshold(self, tmp_path):
        path = tmp_path / "w.rpgw"
        wal = WriteAheadLog(path, 1, sync="batch", batch_ops=1000)
        wal.append("add_vertex", (0, frozenset({"A"}), {}))
        # Buffered, not yet on disk.
        assert read_wal(path).records == []
        wal.flush()
        assert len(read_wal(path).records) == 1
        wal.close()

    def test_batch_ops_threshold_triggers_flush(self, tmp_path):
        path = tmp_path / "w.rpgw"
        wal = WriteAheadLog(path, 1, sync="batch", batch_ops=2)
        wal.append("add_vertex", (0, frozenset({"A"}), {}))
        wal.append("add_vertex", (1, frozenset({"A"}), {}))
        assert len(read_wal(path).records) == 2  # no close needed
        wal.close()

    def test_size_includes_buffered_tail(self, tmp_path):
        path = tmp_path / "w.rpgw"
        wal = WriteAheadLog(path, 1, sync="batch", batch_ops=1000)
        before = wal.size_bytes()
        wal.append("add_vertex", (0, frozenset({"A"}), {}))
        assert wal.size_bytes() > before
        wal.close()


class TestTornTails:
    def test_truncated_record_detected(self, tmp_path):
        path = tmp_path / "w.rpgw"
        log_all(path)
        data = path.read_bytes()
        full = read_wal(path)
        # Chop mid-way through the final record.
        path.write_bytes(data[:full.valid_end - 3])
        scan = read_wal(path)
        assert scan.records == MUTATIONS[:-1]
        assert scan.torn_bytes > 0

    def test_bitflip_stops_replay_at_record(self, tmp_path):
        path = tmp_path / "w.rpgw"
        log_all(path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = read_wal(path)
        assert len(scan.records) < len(MUTATIONS)
        assert scan.records == MUTATIONS[:len(scan.records)]

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "w.rpgw"
        WriteAheadLog(path, generation=5).close()
        scan = read_wal(path)
        assert scan.records == []
        assert scan.generation == 5

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "w.rpgw"
        path.write_bytes(b"NOTAWAL!" + b"\0" * 16)
        with pytest.raises(WalError):
            read_wal(path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "w.rpgw"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(WalError):
            read_wal(path)
