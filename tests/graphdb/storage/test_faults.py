"""Failpoint torture suite: kill/err/tear at every I/O boundary.

The central harness runs a fixed mutation workload (every opcode,
explicit transactions, a rollback, a cascading delete, a checkpoint, a
torn-tail reopen) against a durable store with exactly one failpoint
armed, lets the injected fault interrupt it wherever it strikes, then
reopens the directory with faults disarmed and checks the recovered
state against an **in-memory oracle**: it must equal the replay of all
*confirmed* steps, or of confirmed steps plus the single in-flight one
(an acknowledged-or-not write may land either way; anything else -
partial cascades, rolled-back data, torn records - is a bug).

Every registered failpoint is exercised in all three modes (``crash``,
``error``, ``short_write``); a probabilistic sweep re-runs the
workload under seeds (``REPRO_TORTURE_SEED``) so CI's chaos job varies
the kill sites across runs without losing reproducibility.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import StorageError
from repro.graphdb import faults
from repro.graphdb.faults import FaultSpec, SimulatedCrash
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (  # noqa: F401 - imports register fps
    GraphStore,
    RecoveryError,
    RecoveryManager,
    WalPoisonedError,
    graph_state,
    recover_graph,
    verify_directory,
)
from repro.graphdb.storage.recovery import (
    QUARANTINE_SUFFIX,
    snapshot_name,
    wal_name,
)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.REGISTRY.reset()
    faults.REGISTRY.seed(0)
    yield
    faults.REGISTRY.reset()


# ----------------------------------------------------------------------
# The scripted workload and its oracle
# ----------------------------------------------------------------------
#: Steps are ``(kind, payload)``.  Graph-level kinds (``op``, ``tx``,
#: ``tx_rollback``) replay identically on the oracle; driver-level
#: kinds (checkpoint, sync, close, tear, reopen) are state-neutral.
SCRIPT = [
    ("op", ("add_vertex", ("Person", {"name": "a"}))),          # v0
    ("op", ("add_vertex", ("Person", {"name": "b"}))),          # v1
    ("op", ("add_vertex", (("Person", "Admin"), {"name": "c"}))),  # v2
    ("op", ("add_edge", (0, 1, "knows"))),                      # e0
    ("op", ("add_edge", (1, 2, "knows"))),                      # e1
    ("op", ("add_edge", (2, 0, "knows"))),                      # e2
    ("op", ("set_property", (0, "age", 30))),
    ("op", ("remove_property", (1, "name"))),
    ("op", ("remove_edge", (0,))),
    ("op", ("create_property_index", ("Person", "name"))),
    ("tx", (("add_vertex", ("City", {"name": "x"})),            # v3
            ("add_edge", (0, 3, "lives_in")))),                 # e3
    ("tx_rollback", (("add_vertex", ("City", {"name": "tmp"})),
                     ("set_property", (0, "age", 99)))),
    ("op", ("remove_vertex", (2,))),   # cascades into e1 and e2
    ("checkpoint", None),
    ("op", ("add_vertex", ("Person", {"name": "d"}))),          # v4
    ("op", ("set_property", (4, "age", 1))),
    ("sync", None),
    ("close", None),
    ("tear", None),
    ("reopen", None),
    ("op", ("add_vertex", ("Person", {"name": "e"}))),          # v5
    ("close", None),
]

#: Exceptions that legitimately interrupt a faulted workload: the
#: simulated kill, the injected OSError, and the storage layer's own
#: reactions to either (poisoned WAL, failed recovery read).
INTERRUPTIONS = (SimulatedCrash, OSError, StorageError)


def apply_graph_step(graph: PropertyGraph, step) -> None:
    kind, payload = step
    if kind == "op":
        op, args = payload
        getattr(graph, op)(*args)
    elif kind == "tx":
        graph.begin_transaction()
        for op, args in payload:
            getattr(graph, op)(*args)
        graph.commit_transaction()
    elif kind == "tx_rollback":
        graph.begin_transaction()
        for op, args in payload:
            getattr(graph, op)(*args)
        graph.rollback_transaction()


def replay_oracle(steps, name: str) -> dict:
    graph = PropertyGraph(name)
    for step in steps:
        apply_graph_step(graph, step)
    return graph_state(graph)


def tear_wal(data_dir: Path) -> None:
    """Append garbage to the newest WAL - a dead writer's torn tail."""
    generation = RecoveryManager(data_dir).wal_generations()[0]
    with open(data_dir / wal_name(generation), "ab") as fh:
        fh.write(b"\xff" * 16)


def run_workload(data_dir: Path, confirmed: list) -> None:
    """Run SCRIPT against ``data_dir``, appending each completed step
    to ``confirmed``; an injected fault propagates out mid-script."""
    store = GraphStore.open(data_dir, sync="always")
    for step in SCRIPT:
        kind, _payload = step
        if kind in ("op", "tx", "tx_rollback"):
            apply_graph_step(store.graph, step)
        elif kind == "checkpoint":
            store.checkpoint()
        elif kind == "sync":
            store.sync()
        elif kind == "close":
            store.close()
        elif kind == "tear":
            tear_wal(data_dir)
        elif kind == "reopen":
            store = GraphStore.open(data_dir, sync="always")
        confirmed.append(step)
    # The abandoned-on-crash store object is deliberately not closed:
    # a killed process would not flush either.


def graph_steps(steps):
    return [s for s in steps if s[0] in ("op", "tx", "tx_rollback")]


def run_and_check(tmp_path: Path, spec: FaultSpec) -> bool:
    """One torture iteration; returns True when the fault interrupted.

    Whatever happened, the reopened (faults disarmed) store must match
    the oracle: all confirmed graph steps applied, plus at most the
    single in-flight step.
    """
    data_dir = tmp_path / "d"
    data_dir.mkdir()
    faults.REGISTRY.arm(spec)
    confirmed: list = []
    interrupted = False
    try:
        run_workload(data_dir, confirmed)
    except INTERRUPTIONS:
        interrupted = True
    finally:
        faults.REGISTRY.reset()
    applied = graph_steps(confirmed)
    candidates = [replay_oracle(applied, data_dir.name)]
    if interrupted and len(confirmed) < len(SCRIPT):
        pending = SCRIPT[len(confirmed)]
        if pending[0] in ("op", "tx"):
            candidates.append(
                replay_oracle(applied + [pending], data_dir.name)
            )
    with GraphStore.open(data_dir, sync="always") as reopened:
        state = graph_state(reopened.graph)
    assert state in candidates, (
        f"fault {spec} after {len(confirmed)} step(s): recovered state "
        "matches neither confirmed nor confirmed+pending oracle"
    )
    return interrupted


def all_failpoints() -> list[str]:
    return faults.registered_failpoints()


# ----------------------------------------------------------------------
# The torture matrix
# ----------------------------------------------------------------------
class TestCatalog:
    def test_at_least_fifteen_failpoints(self):
        assert len(all_failpoints()) >= 15

    def test_catalog_is_stable_and_named(self):
        names = all_failpoints()
        assert len(names) == len(set(names))
        for name in names:
            layer = name.split(".")[0]
            assert layer in (
                "wal", "snapshot", "store", "recovery", "parallel",
                "server",
            )


@pytest.mark.parametrize("point", all_failpoints())
@pytest.mark.parametrize("mode", ["crash", "error", "short_write"])
def test_torture_every_failpoint(tmp_path, point, mode):
    run_and_check(tmp_path, FaultSpec(point, mode=mode))


@pytest.mark.parametrize("at", [2, 3, 5, 9])
def test_torture_later_hits_of_hot_failpoints(tmp_path, at):
    """Crash at deeper hit counts of the hottest write-path points."""
    for point in ("wal.flush.write", "wal.append.pre_fsync",
                  "wal.flush.fsync"):
        sub = tmp_path / f"{point.replace('.', '_')}-{at}"
        sub.mkdir()
        run_and_check(sub, FaultSpec(point, mode="crash", at=at))


def test_probabilistic_sweep_is_seeded():
    """The chance-based RNG is deterministic for a fixed seed."""
    seed = int(os.environ.get("REPRO_TORTURE_SEED", "0"))
    registry = faults.FaultRegistry(seed=seed)
    registry.register("p")
    registry.arm(FaultSpec("p", mode="crash", times=None, chance=0.5))
    first = [
        isinstance(_fired(registry), SimulatedCrash) for _ in range(64)
    ]
    registry.seed(seed)
    registry.arm(FaultSpec("p", mode="crash", times=None, chance=0.5))
    second = [
        isinstance(_fired(registry), SimulatedCrash) for _ in range(64)
    ]
    assert first == second
    assert any(first) and not all(first)


def _fired(registry) -> BaseException | None:
    try:
        registry.fire("p")
    except BaseException as exc:
        return exc
    return None


def test_torture_probabilistic_crash_sites(tmp_path):
    """Chance-mode arming moves the kill site run to run (seeded)."""
    seed = int(os.environ.get("REPRO_TORTURE_SEED", "0"))
    for i in range(3):
        faults.REGISTRY.seed(seed + i)
        sub = tmp_path / f"run{i}"
        sub.mkdir()
        run_and_check(
            sub,
            FaultSpec(
                "wal.flush.write", mode="crash",
                times=None, chance=0.2,
            ),
        )


# ----------------------------------------------------------------------
# Hardening specifics
# ----------------------------------------------------------------------
class TestTransientRetry:
    def test_eintr_is_absorbed_and_counted(self, tmp_path):
        before = faults.REGISTRY.counters()["retries"]
        with faults.REGISTRY.armed(
            "wal.flush.fsync", mode="error",
            errno_code=__import__("errno").EINTR, times=2,
        ):
            store = GraphStore.open(tmp_path / "d", sync="always")
            store.graph.add_vertex("A", {"n": 1})
            store.close()
        assert faults.REGISTRY.counters()["retries"] - before >= 2
        with GraphStore.open(tmp_path / "d") as reopened:
            assert reopened.graph.num_vertices == 1

    def test_hard_errno_poisons_instead(self, tmp_path):
        import errno

        store = GraphStore.open(tmp_path / "d", sync="always")
        with faults.REGISTRY.armed(
            "wal.flush.fsync", mode="error", errno_code=errno.ENOSPC,
        ):
            with pytest.raises(OSError):
                store.graph.add_vertex("A", {"n": 1})
        assert store.poisoned
        with pytest.raises(WalPoisonedError):
            store.graph.add_vertex("A", {"n": 2})
        # Reopen clears the poison.  The failed-fsync record is in an
        # *uncertain* state - the write landed but durability was never
        # acknowledged - so recovery may legitimately surface it or
        # not; what matters is that the store accepts writes again.
        with GraphStore.open(tmp_path / "d") as reopened:
            assert reopened.graph.num_vertices in (0, 1)
            reopened.graph.add_vertex("A", {"n": 3})


class TestQuarantine:
    def seed_two_generations(self, tmp_path) -> Path:
        data_dir = tmp_path / "d"
        base = PropertyGraph("q")
        base.add_vertex("A", {"n": 1})
        store = GraphStore.create(data_dir, base)
        store.graph.add_vertex("A", {"n": 2})
        store.checkpoint()
        store.close()
        # Recreate the pruned generation-1 fallback, then corrupt 2.
        from repro.graphdb.storage import write_snapshot

        write_snapshot(
            recover_graph(data_dir), data_dir / snapshot_name(1), 1
        )
        snap2 = data_dir / snapshot_name(2)
        blob = bytearray(snap2.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        snap2.write_bytes(bytes(blob))
        return data_dir

    def test_corrupt_snapshot_is_quarantined_and_store_opens(
        self, tmp_path
    ):
        data_dir = self.seed_two_generations(tmp_path)
        snap2 = data_dir / snapshot_name(2)
        with GraphStore.open(data_dir) as store:
            assert store.generation == 1
            assert store.graph.num_vertices == 2
            report = store.recovery
        assert not snap2.exists()
        quarantined = snap2.with_name(snap2.name + QUARANTINE_SUFFIX)
        assert quarantined.exists()
        assert report.quarantined == [snap2]
        assert report.corrupt_snapshots == [snap2]
        assert "quarantined" in report.summary()

    def test_quarantined_file_is_skipped_on_next_open(self, tmp_path):
        data_dir = self.seed_two_generations(tmp_path)
        with GraphStore.open(data_dir):
            pass
        with GraphStore.open(data_dir) as again:
            assert again.recovery.corrupt_snapshots == []
            assert again.recovery.quarantined == []

    def test_readonly_recovery_does_not_quarantine(self, tmp_path):
        data_dir = self.seed_two_generations(tmp_path)
        snap2 = data_dir / snapshot_name(2)
        graph = recover_graph(data_dir)  # truncate=False
        assert graph.num_vertices == 2
        assert snap2.exists()

    def test_all_corrupt_raises_and_preserves_files(self, tmp_path):
        data_dir = tmp_path / "d"
        base = PropertyGraph("q")
        base.add_vertex("A", {"n": 1})
        GraphStore.create(data_dir, base).close()
        snap1 = data_dir / snapshot_name(1)
        blob = bytearray(snap1.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        snap1.write_bytes(bytes(blob))
        with pytest.raises(RecoveryError):
            GraphStore.open(data_dir)
        # No fallback existed, so nothing was renamed: a later repair
        # (or a fixed disk) can still find the original file.
        assert snap1.exists()

    def test_verify_detects_the_corruption(self, tmp_path):
        data_dir = self.seed_two_generations(tmp_path)
        report = verify_directory(data_dir)
        assert report["ok"] is False
        by_gen = {e["generation"]: e for e in report["generations"]}
        assert by_gen[2]["snapshot"]["status"] == "corrupt"
        assert by_gen[1]["snapshot"]["status"] == "ok"
        # After the store quarantines, verify is clean again and the
        # renamed file is listed.
        with GraphStore.open(data_dir):
            pass
        report = verify_directory(data_dir)
        assert report["ok"] is True
        assert report["quarantined"] == [
            snapshot_name(2) + QUARANTINE_SUFFIX
        ]


class TestTmpSweep:
    def test_orphaned_tmp_swept_on_open(self, tmp_path):
        data_dir = tmp_path / "d"
        base = PropertyGraph("s")
        base.add_vertex("A", {"n": 1})
        GraphStore.create(data_dir, base).close()
        debris = data_dir / (snapshot_name(7) + ".tmp")
        debris.write_bytes(b"partial snapshot bytes")
        foreign = data_dir / "keep.tmp"
        foreign.write_bytes(b"not ours")
        with GraphStore.open(data_dir) as store:
            assert store.recovery.removed_tmp == [debris]
        assert not debris.exists()
        assert foreign.exists()  # non-store tmp files are not ours

    def test_crashed_checkpoint_leaves_then_sweeps_tmp(self, tmp_path):
        data_dir = tmp_path / "d"
        base = PropertyGraph("s")
        base.add_vertex("A", {"n": 1})
        store = GraphStore.create(data_dir, base)
        with faults.REGISTRY.armed("snapshot.write.section"):
            with pytest.raises(SimulatedCrash):
                store.checkpoint()
        debris = [
            p for p in data_dir.iterdir() if p.name.endswith(".tmp")
        ]
        assert debris, "a simulated crash must leave tmp debris behind"
        with GraphStore.open(data_dir) as reopened:
            assert reopened.recovery.removed_tmp == debris
            assert reopened.graph.num_vertices == 1
        assert not any(
            p.name.endswith(".tmp") for p in data_dir.iterdir()
        )


class TestEnvSpec:
    def test_env_spec_arms_at_import(self, tmp_path):
        """REPRO_FAULTS in the environment arms before any I/O runs."""
        code = (
            "from repro.graphdb import faults\n"
            "from repro.graphdb.faults import SimulatedCrash\n"
            "from repro.graphdb.storage import GraphStore\n"
            "from repro.graphdb.graph import PropertyGraph\n"
            "assert faults.REGISTRY.armed_points() == "
            "['wal.flush.write']\n"
            "try:\n"
            "    s = GraphStore.open(r'%s', sync='always')\n"
            "    s.graph.add_vertex('A', {})\n"
            "except SimulatedCrash:\n"
            "    print('crashed-as-armed')\n"
        ) % (tmp_path / "d")
        env = dict(
            os.environ,
            REPRO_FAULTS="wal.flush.write:crash",
            REPRO_FAULTS_SEED="7",
            PYTHONPATH=str(
                Path(__file__).resolve().parents[3] / "src"
            ),
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "crashed-as-armed" in out.stdout

    def test_spec_grammar(self):
        spec = faults.parse_fault("wal.flush.fsync:error:EINTR@2x3%0.5")
        assert spec.point == "wal.flush.fsync"
        assert spec.mode == "error"
        assert spec.errno_code == __import__("errno").EINTR
        assert spec.at == 2 and spec.times == 3 and spec.chance == 0.5
        spec = faults.parse_fault("snapshot.rename")
        assert spec.mode == "crash" and spec.times == 1
        spec = faults.parse_fault("wal.flush.write:short:5x*")
        assert spec.mode == "short_write"
        assert spec.keep_bytes == 5 and spec.times is None
        with pytest.raises(faults.FaultError):
            faults.parse_fault(":crash")
        with pytest.raises(faults.FaultError):
            faults.parse_fault("p:nope")
        with pytest.raises(faults.FaultError):
            faults.parse_fault("p:error:EWHAT")
