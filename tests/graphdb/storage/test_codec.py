"""Round-trip and robustness tests for the binary encoding primitives."""

import pytest

from repro.graphdb.storage.codec import (
    CodecError,
    read_props,
    read_str,
    read_svarint,
    read_uvarint,
    read_value,
    write_props,
    write_str,
    write_svarint,
    write_uvarint,
    write_value,
)


def uvarint_roundtrip(value):
    buf = bytearray()
    write_uvarint(buf, value)
    decoded, pos = read_uvarint(bytes(buf), 0)
    assert pos == len(buf)
    return decoded


def svarint_roundtrip(value):
    buf = bytearray()
    write_svarint(buf, value)
    decoded, pos = read_svarint(bytes(buf), 0)
    assert pos == len(buf)
    return decoded


class TestVarints:
    @pytest.mark.parametrize("value", [
        0, 1, 127, 128, 300, 16384, 2**31, 2**63 - 1, 2**64, 2**100,
    ])
    def test_uvarint(self, value):
        assert uvarint_roundtrip(value) == value

    def test_uvarint_rejects_negative(self):
        with pytest.raises(CodecError):
            write_uvarint(bytearray(), -1)

    def test_uvarint_single_byte_for_small(self):
        buf = bytearray()
        write_uvarint(buf, 127)
        assert len(buf) == 1

    @pytest.mark.parametrize("value", [
        0, 1, -1, 2, -2, 63, -64, 64, -65, 2**40, -2**40,
        2**63 - 1, -(2**63), 2**80, -(2**80),
    ])
    def test_svarint(self, value):
        assert svarint_roundtrip(value) == value

    def test_truncated_uvarint(self):
        buf = bytearray()
        write_uvarint(buf, 2**40)
        with pytest.raises(CodecError):
            read_uvarint(bytes(buf[:-1]), 0)

    def test_empty_buffer(self):
        with pytest.raises(CodecError):
            read_uvarint(b"", 0)


class TestStrings:
    @pytest.mark.parametrize("value", [
        "", "a", "hello world", "ünïcødé ☃", "日本語", "x" * 10_000,
    ])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_str(buf, value)
        decoded, pos = read_str(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_truncated(self):
        buf = bytearray()
        write_str(buf, "hello")
        with pytest.raises(CodecError):
            read_str(bytes(buf[:-2]), 0)

    def test_invalid_utf8(self):
        buf = bytearray()
        write_uvarint(buf, 2)
        buf += b"\xff\xfe"
        with pytest.raises(CodecError):
            read_str(bytes(buf), 0)


class TestValues:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 2**45, 3.14159, -0.0, float("inf"),
        "text", "", [], [1, 2, 3], ["a", "b"], [1, "mixed", None, 2.5],
        [[1, 2], ["nested", [True]]],
    ])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_value(buf, value)
        decoded, pos = read_value(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)
        # Bool/int confusion would break property semantics.
        assert type(decoded) is type(value) or isinstance(value, list)

    def test_tuple_encodes_as_list(self):
        buf = bytearray()
        write_value(buf, (1, 2))
        decoded, _ = read_value(bytes(buf), 0)
        assert decoded == [1, 2]

    def test_unsupported_type(self):
        with pytest.raises(CodecError):
            write_value(bytearray(), object())

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            read_value(b"\xee", 0)

    def test_truncated_float(self):
        buf = bytearray()
        write_value(buf, 1.5)
        with pytest.raises(CodecError):
            read_value(bytes(buf[:4]), 0)


class TestProps:
    def test_roundtrip_preserves_order(self):
        props = {"b": 1, "a": "two", "c": [1.5, None], "flag": True}
        buf = bytearray()
        write_props(buf, props)
        decoded, pos = read_props(bytes(buf), 0)
        assert decoded == props
        assert list(decoded) == list(props)
        assert pos == len(buf)

    def test_empty(self):
        buf = bytearray()
        write_props(buf, {})
        decoded, _ = read_props(bytes(buf), 0)
        assert decoded == {}
