"""GraphStore lifecycle: open/create, logging, checkpoint, pruning."""

import pytest

from repro.exceptions import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.session import GraphSession
from repro.graphdb.storage import (
    GraphStore,
    graph_state,
    recover_graph,
)
from repro.graphdb.storage.recovery import snapshot_name, wal_name


def small_graph(name="g") -> PropertyGraph:
    g = PropertyGraph(name)
    a = g.add_vertex("A", {"x": 1})
    b = g.add_vertex("B", {"y": "two"})
    g.add_edge(a, b, "ab")
    return g


class TestOpenCreate:
    def test_open_creates_fresh_store(self, tmp_path):
        with GraphStore.open(tmp_path / "d") as store:
            assert store.graph.num_vertices == 0
            assert store.generation == 0
            store.graph.add_vertex("A")
        assert recover_graph(tmp_path / "d").num_vertices == 1

    def test_open_missing_without_create(self, tmp_path):
        with pytest.raises(StorageError):
            GraphStore.open(tmp_path / "nope", create=False)

    def test_create_from_graph(self, tmp_path):
        g = small_graph()
        store = GraphStore.create(tmp_path / "d", g)
        store.close()
        assert graph_state(recover_graph(tmp_path / "d")) == graph_state(g)

    def test_create_refuses_nonempty(self, tmp_path):
        target = tmp_path / "d"
        GraphStore.create(target, small_graph()).close()
        with pytest.raises(StorageError, match="not empty"):
            GraphStore.create(target, small_graph())
        GraphStore.create(target, small_graph(), overwrite=True).close()

    def test_graph_name_survives(self, tmp_path):
        GraphStore.create(tmp_path / "d", small_graph("named")).close()
        assert recover_graph(tmp_path / "d").name == "named"


class TestLogging:
    def test_mutations_survive_reopen(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph())
        g = store.graph
        vid = g.add_vertex("C", {"z": [1, "a"]})
        g.add_edge(vid, 0, "ca")
        g.set_property(0, "x", 2)
        g.remove_property(1, "y")
        store.close()
        assert graph_state(recover_graph(target)) == graph_state(g)

    def test_unflushed_batch_is_lost_without_close(self, tmp_path):
        """Simulated crash: buffered records beyond batch never hit disk."""
        target = tmp_path / "d"
        store = GraphStore.create(
            target, small_graph(), sync="batch"
        )
        state_before = graph_state(store.graph)
        store.graph.add_vertex("C")  # buffered (batch_ops=64)
        # No close/flush: the process "crashes" here.
        recovered = recover_graph(target)
        assert graph_state(recovered) == state_before

    def test_sync_always_survives_crash(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph(), sync="always")
        store.graph.add_vertex("C")
        # No close: sync=always already made it durable.
        assert recover_graph(target).num_vertices == 3

    def test_explicit_sync_flushes(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph(), sync="batch")
        store.graph.add_vertex("C")
        store.sync()
        assert recover_graph(target).num_vertices == 3

    def test_closed_store_stops_logging(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph())
        store.close()
        store.graph.add_vertex("C")  # no longer logged
        assert recover_graph(target).num_vertices == 2
        with pytest.raises(StorageError):
            store.checkpoint()


class TestCheckpoint:
    def test_checkpoint_folds_and_prunes(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph())
        store.graph.add_vertex("C")
        path = store.checkpoint()
        assert path.name == snapshot_name(2)
        names = sorted(p.name for p in target.iterdir())
        assert names == [snapshot_name(2), wal_name(2)]
        store.graph.add_vertex("D")
        store.close()
        recovered = recover_graph(target)
        assert graph_state(recovered) == graph_state(store.graph)

    def test_repeated_checkpoints(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph())
        for i in range(4):
            store.graph.add_vertex("C", {"i": i})
            store.checkpoint()
        assert store.generation == 5
        store.close()
        assert graph_state(recover_graph(target)) == \
            graph_state(store.graph)

    def test_wal_shrinks_after_checkpoint(self, tmp_path):
        target = tmp_path / "d"
        store = GraphStore.create(target, small_graph())
        for i in range(50):
            store.graph.add_vertex("C", {"i": i})
        store.sync()
        before = store.wal_size_bytes()
        store.checkpoint()
        assert store.wal_size_bytes() < before
        store.close()


class TestSessionIntegration:
    def test_session_open_checkpoint_close(self, tmp_path):
        target = tmp_path / "d"
        GraphStore.create(target, small_graph()).close()
        with GraphSession.open(target) as session:
            vid = session.graph.add_vertex("C")
            assert session.read_labels(vid) == frozenset({"C"})
            session.checkpoint()
        recovered = recover_graph(target)
        assert recovered.num_vertices == 3

    def test_session_without_store_raises_on_checkpoint(self):
        session = GraphSession(small_graph())
        with pytest.raises(Exception):
            session.checkpoint()
        session.close()  # no-op without a store


class TestFallbackSafety:
    """Open/prune must never destroy a newer generation's files."""

    def corrupt_gen2(self, target):
        store = GraphStore.create(target, small_graph())
        store.graph.add_vertex("C")
        store.checkpoint()
        store.close()
        snap2 = target / snapshot_name(2)
        blob = bytearray(snap2.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        # Recreate a generation-1 fallback, then corrupt generation 2.
        from repro.graphdb.storage import write_snapshot

        write_snapshot(recover_graph(target), target / snapshot_name(1), 1)
        snap2.write_bytes(bytes(blob))
        return snap2

    def test_open_keeps_newer_generation_files(self, tmp_path):
        target = tmp_path / "d"
        snap2 = self.corrupt_gen2(target)
        with GraphStore.open(target) as store:
            assert store.generation == 1
        # The corrupt-but-newer snapshot is quarantined, not deleted:
        # the bytes stay on disk for inspection under a name recovery
        # will not re-validate on every open.
        assert not snap2.exists()
        assert snap2.with_name(snap2.name + ".quarantined").exists()

    def test_checkpoint_replaces_stale_target_wal(self, tmp_path):
        target = tmp_path / "d"
        self.corrupt_gen2(target)
        # Plant a stale wal-2 with abandoned records.
        from repro.graphdb.storage import WriteAheadLog, read_wal

        stale = WriteAheadLog(target / wal_name(2), generation=2)
        stale.append("add_vertex", (99, frozenset({"Stale"}), {}))
        stale.close()
        with GraphStore.open(target) as store:
            store.graph.add_vertex("D")
            store.checkpoint()
            assert store.generation == 2
            expected = graph_state(store.graph)
        scan = read_wal(target / wal_name(2))
        assert scan.records == []  # stale records are gone
        assert graph_state(recover_graph(target)) == expected

    def test_overwrite_refuses_foreign_files(self, tmp_path):
        target = tmp_path / "d"
        GraphStore.create(target, small_graph()).close()
        (target / "precious.txt").write_text("do not delete")
        with pytest.raises(StorageError, match="non-store"):
            GraphStore.create(target, small_graph(), overwrite=True)
        assert (target / "precious.txt").read_text() == "do not delete"
