"""Statistics persistence: the snapshot STATS section and recovery.

Snapshots written from a graph with materialized statistics must carry
them (exact counters, histograms truncated to most common values) and
reattach them on load; stores recovered through snapshot + WAL replay
must end up with statistics matching a fresh batch build, because
replay goes through the ordinary mutation API.
"""

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.statistics import MCV_CAP, GraphStatistics
from repro.graphdb.storage import (
    GraphStore,
    read_snapshot,
    write_snapshot,
)


def build_graph() -> PropertyGraph:
    g = PropertyGraph("stats-rt")
    drugs = [
        g.add_vertex("Drug", {"name": f"d{i}", "tier": i % 3})
        for i in range(6)
    ]
    inds = [
        g.add_vertex(["Indication", "Tagged"], {"desc": f"x{i % 2}"})
        for i in range(4)
    ]
    for i, ind in enumerate(inds):
        g.add_edge(drugs[i], ind, "treat")
    g.create_property_index("Drug", "name")
    return g


class TestSnapshotRoundtrip:
    def test_counters_survive(self, tmp_path):
        g = build_graph()
        stats = g.statistics()
        path = tmp_path / "snap"
        write_snapshot(g, path, 1)
        loaded = read_snapshot(path)
        assert loaded.has_statistics
        restored = loaded._stats
        assert restored.epoch == stats.epoch
        assert restored.label_counts == stats.label_counts
        assert restored.edge_label_counts == stats.edge_label_counts
        assert restored._src == stats._src
        assert restored._dst == stats._dst
        assert restored._label_pairs == stats._label_pairs
        assert restored._triples == stats._triples
        assert restored.props.keys() == stats.props.keys()
        assert restored.eq_estimate("Drug", "tier", 0) == 2.0

    def test_without_stats_section(self, tmp_path):
        g = build_graph()  # statistics never materialized
        path = tmp_path / "snap"
        write_snapshot(g, path, 1)
        loaded = read_snapshot(path)
        assert not loaded.has_statistics
        # ... and a lazy rebuild still works on the loaded graph.
        assert loaded.statistics().label_count("Drug") == 6

    def test_mcv_truncation(self, tmp_path):
        g = PropertyGraph()
        for i in range(3 * MCV_CAP):
            # One common value, 2*MCV_CAP singletons: more distinct
            # values than the persisted histogram keeps.
            value = "common" if i % 3 == 0 else f"rare{i}"
            g.add_vertex("P", {"v": value})
        stats = g.statistics()
        full = stats.props[("P", "v")]
        path = tmp_path / "snap"
        write_snapshot(g, path, 1)
        restored = read_snapshot(path)._stats.props[("P", "v")]
        assert len(restored.hist) == MCV_CAP
        assert restored.hist["common"] == full.hist["common"]
        assert restored.ndv == full.ndv
        assert restored.count == full.count
        # Untracked tail values estimate uniformly, not zero.
        tail_estimate = restored.eq_estimate("rare-nonexistent")
        assert tail_estimate == pytest.approx(1.0)

    def test_loaded_stats_stay_live(self, tmp_path):
        g = build_graph()
        g.statistics()
        path = tmp_path / "snap"
        write_snapshot(g, path, 1)
        loaded = read_snapshot(path)
        loaded.remove_vertex(0)
        fresh = GraphStatistics.build(loaded)
        assert loaded._stats.label_counts == fresh.label_counts
        assert loaded._stats.edge_label_counts == fresh.edge_label_counts


class TestStoreRecovery:
    def test_wal_replay_updates_attached_stats(self, tmp_path):
        g = build_graph()
        g.statistics()
        store = GraphStore.create(tmp_path / "data", g)
        vid = g.add_vertex("Drug", {"name": "post-snap"})
        g.add_edge(vid, 6, "treat")  # vertex 6 is the first Indication
        g.remove_vertex(0)
        store.close()

        with GraphStore.open(tmp_path / "data", create=False) as opened:
            recovered = opened.graph
            assert recovered.has_statistics
            fresh = GraphStatistics.build(recovered)
            live = recovered._stats
            assert live.label_counts == fresh.label_counts
            assert live.edge_label_counts == fresh.edge_label_counts
            assert live._src == fresh._src
            assert live._dst == fresh._dst
            assert live._triples == fresh._triples

    def test_checkpoint_persists_current_stats(self, tmp_path):
        g = build_graph()
        g.statistics()
        store = GraphStore.create(tmp_path / "data", g)
        g.add_vertex("NewLabel")
        store.checkpoint()
        store.close()
        with GraphStore.open(tmp_path / "data", create=False) as opened:
            assert opened.graph.has_statistics
            assert opened.graph._stats.label_count("NewLabel") == 1
