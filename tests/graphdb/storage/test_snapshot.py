"""Snapshot round-trip, ordering, and corruption-detection tests."""

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (
    SnapshotError,
    graph_state,
    read_snapshot,
    write_snapshot,
)
from repro.graphdb.storage.snapshot import (
    read_snapshot_with_generation,
)


def sample_graph() -> PropertyGraph:
    g = PropertyGraph("sample")
    a = g.add_vertex("Drug", {"name": "aspirin", "doses": [10, 20]})
    b = g.add_vertex(("Drug", "Generic"), {"name": "ibuprofen"})
    c = g.add_vertex("Condition", {"cname": "pain", "severity": 3})
    d = g.add_vertex("Condition", {"cname": "février ☃", "score": 1.25})
    g.add_edge(a, c, "treat", {"strength": 0.9})
    g.add_edge(b, c, "treat")
    g.add_edge(b, d, "treat")
    g.add_edge(a, b, "interacts", {"note": "nsaid"})
    g.create_property_index("Drug", "name")
    return g


class TestRoundTrip:
    def test_identical_state(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert graph_state(loaded) == graph_state(g)

    def test_generation_recorded(self, tmp_path):
        path = tmp_path / "g.rpgs"
        write_snapshot(sample_graph(), path, generation=7)
        _, generation = read_snapshot_with_generation(path)
        assert generation == 7

    def test_property_index_usable_after_load(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert loaded.has_property_index("Drug", "name")
        assert loaded.lookup_property("Drug", "name", "aspirin") == [0]

    def test_iteration_order_preserved(self, tmp_path):
        g = sample_graph()
        g.remove_vertex(1)  # leave id holes and reordered stores
        extra = g.add_vertex("Drug", {"name": "later"})
        g.add_edge(extra, 2, "treat")
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert [v.vid for v in loaded.iter_vertices()] == [
            v.vid for v in g.iter_vertices()
        ]
        assert [e.eid for e in loaded.iter_edges()] == [
            e.eid for e in g.iter_edges()
        ]
        assert loaded.vertices_with_label("Drug") == \
            g.vertices_with_label("Drug")

    def test_id_counters_survive_holes(self, tmp_path):
        g = sample_graph()
        g.remove_vertex(3)
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert loaded.add_vertex("New") == g._next_vid
        assert loaded.add_edge(0, 2, "x") == g._next_eid

    def test_empty_graph(self, tmp_path):
        g = PropertyGraph("empty")
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert graph_state(loaded) == graph_state(g)
        assert loaded.num_vertices == 0

    def test_endpoint_pairs_lazily_rebuilt(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert loaded._pairs is None  # deferred
        assert loaded.has_edge_between(0, 2, "treat")
        assert not loaded.has_edge_between(2, 0, "treat")
        assert loaded.has_edge_between(2, 0, "treat", direction="in")
        assert loaded._pairs is not None

    def test_mutable_after_load(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        for target in (loaded, g):
            vid = target.add_vertex("Drug", {"name": "new"})
            eid = target.add_edge(vid, 0, "interacts")
            target.remove_edge(eid)
            target.remove_vertex(vid)
        assert graph_state(loaded) == graph_state(g)

    def test_typed_columns(self, tmp_path):
        g = PropertyGraph("typed")
        g.add_vertex("T", {
            "i": 42, "f": 2.5, "s": "str", "b": True, "n": None,
            "big": 2**80, "lst": ["x", "y"], "mixed": [1, "a"],
        })
        g.add_vertex("T", {"i": -7, "f": 0.0, "s": "", "b": False})
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        assert graph_state(loaded) == graph_state(g)
        props = loaded.vertex(0).properties
        assert type(props["i"]) is int
        assert type(props["b"]) is bool
        assert props["big"] == 2**80
        assert props["lst"] == ["x", "y"]


class TestCorruption:
    def test_every_byte_flip_detected_or_harmless(self, tmp_path):
        """Flipping any single byte never yields a silently wrong graph."""
        g = sample_graph()
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        original = path.read_bytes()
        expected = graph_state(g)
        step = max(1, len(original) // 200)
        for offset in range(0, len(original), step):
            corrupted = bytearray(original)
            corrupted[offset] ^= 0xFF
            path.write_bytes(bytes(corrupted))
            try:
                loaded = read_snapshot(path)
            except SnapshotError:
                continue  # detected: good
            assert graph_state(loaded) == expected, (
                f"byte {offset}: corruption not detected"
            )

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "g.rpgs"
        write_snapshot(sample_graph(), path)
        data = path.read_bytes()
        for cut in (0, 4, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            with pytest.raises(SnapshotError):
                read_snapshot(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "g.rpgs"
        write_snapshot(sample_graph(), path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTASNAP"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "g.rpgs"
        write_snapshot(sample_graph(), path)
        data = bytearray(path.read_bytes())
        data[8] = 0xFF  # low byte of the format version
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_path / "nope.rpgs")

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "g.rpgs"
        write_snapshot(sample_graph(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["g.rpgs"]
