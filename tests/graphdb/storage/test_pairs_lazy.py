"""Endpoint-pair index lazy materialization under post-load mutation.

A snapshot load defers the endpoint-pair index (``_pairs = None``);
the first probe batch-builds it from the edge columns.  The invariant
pinned here: mutations that arrive *while the index is deferred* must
not cause a partial build - the eventual batch build has to reflect
every mutation, and the probe answers must match a graph that was
never deferred at all.
"""

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.snapshot import read_snapshot, write_snapshot


@pytest.fixture()
def loaded(tmp_path):
    g = PropertyGraph("pairs")
    a = g.add_vertex("N", {"i": 0})
    b = g.add_vertex("N", {"i": 1})
    c = g.add_vertex("N", {"i": 2})
    g.add_edge(a, b, "e")
    g.add_edge(b, c, "e")
    g.add_edge(a, c, "f")
    path = tmp_path / "g.rpgs"
    write_snapshot(g, path)
    loaded = read_snapshot(path)
    assert loaded._pairs is None  # deferred by the loader
    return loaded


def test_add_edge_while_deferred_is_visible(loaded):
    eid = loaded.add_edge(1, 0, "g")
    assert loaded._pairs is None  # mutation must not trigger a build
    assert loaded.first_edge_between(1, 0, "g") == eid
    assert loaded._pairs is not None
    # ... and the pre-existing edges are all present too (no partial
    # index built from only the post-load mutations).
    assert loaded.has_edge_between(0, 1, "e")
    assert loaded.has_edge_between(1, 2, "e")
    assert loaded.has_edge_between(0, 2, "f")


def test_remove_edge_while_deferred_is_visible(loaded):
    eid = next(iter(loaded._edges))
    edge = loaded.edge(eid)
    src, dst, label = edge.src, edge.dst, edge.label
    loaded.remove_edge(eid)
    assert loaded._pairs is None
    assert not loaded.has_edge_between(src, dst, label)
    assert loaded.has_edge_between(1, 2, "e")  # untouched edge intact


def test_remove_vertex_while_deferred(loaded):
    loaded.remove_vertex(1)
    assert loaded._pairs is None
    assert not loaded.has_edge_between(0, 1, "e")
    assert not loaded.has_edge_between(1, 2, "e")
    assert loaded.has_edge_between(0, 2, "f")


def test_deferred_build_matches_incremental(loaded, tmp_path):
    # Interleave mutations, then compare the batch-built index against
    # a graph that maintained its pair index incrementally all along.
    loaded.add_edge(2, 0, "e")
    loaded.remove_edge(1)
    probe = loaded._build_pairs()

    fresh = PropertyGraph("pairs")
    for _ in range(3):
        fresh.add_vertex("N", {})
    fresh.add_edge(0, 1, "e")
    fresh.add_edge(1, 2, "e")
    fresh.add_edge(0, 2, "f")
    fresh.add_edge(2, 0, "e")
    fresh.remove_edge(1)
    assert probe == fresh._pairs


def test_direction_any_after_deferred_mutation(loaded):
    loaded.add_edge(2, 0, "h")
    assert loaded.has_edge_between(0, 2, "h", direction="in")
    assert loaded.has_edge_between(0, 2, "h", direction="any")
    assert not loaded.has_edge_between(0, 2, "h", direction="out")
