"""WAL transaction framing: BEGIN/COMMIT frames and crash recovery.

Extends the per-byte truncation property to transactions: a WAL
containing committed frames, a rolled-back frame, and a frame cut off
by a crash is sliced at *every* byte offset, and recovery must land on
exactly the durable prefix - plain records plus fully-committed
frames.  In particular, any cut between a BEGIN and its COMMIT
recovers the pre-transaction state.

The expected state for each cut is computed by an independent
simulation of the framing rules (raw record walk + frame buffer), not
by the code under test.
"""

import shutil
import struct

import pytest

from repro.exceptions import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (
    GraphStore,
    graph_state,
    read_snapshot,
    read_wal,
    recover_graph,
)
from repro.graphdb.storage.recovery import snapshot_name, wal_name
from repro.graphdb.storage.wal import (
    _HEADER,
    _RECORD,
    WriteAheadLog,
    apply_mutation,
    decode_mutation,
)


def seed_tx_store(data_dir):
    """A store whose WAL mixes plain records and transaction frames.

    Layout (after the snapshot): plain add, committed frame (2 ops),
    plain add, rolled-back frame (1 op), then a frame left open by a
    simulated crash.
    """
    base = PropertyGraph("txwal")
    a = base.add_vertex("A", {"x": 0})
    store = GraphStore.create(data_dir, base, sync="always")
    g = store.graph
    g.add_vertex("A", {"x": 1})                   # plain
    g.begin_transaction()                          # committed frame
    v = g.add_vertex("B", {"y": 2})
    g.add_edge(a, v, "link")
    g.commit_transaction()
    g.add_vertex("A", {"x": 3})                   # plain
    g.begin_transaction()                          # rolled-back frame
    g.add_vertex("B", {"y": 4})
    g.rollback_transaction()
    durable = graph_state(g)                       # what recovery owes
    g.begin_transaction()                          # crashed frame
    g.add_vertex("B", {"y": 5})
    g.set_property(a, "x", 99)
    store._wal.flush(fsync=True)
    # Simulated crash: no rollback, no close - the frame never ends.
    return store, durable


def raw_records(wal_path):
    """[(offset_end, (op, args))] for every complete record."""
    data = wal_path.read_bytes()
    out = []
    pos = _HEADER.size
    while pos + _RECORD.size <= len(data):
        length, _crc = _RECORD.unpack_from(data, pos)
        start = pos + _RECORD.size
        end = start + length
        if end > len(data):
            break
        out.append((end, decode_mutation(data[start:end])))
        pos = end
    return out


def durable_prefixes(ops):
    """Durable mutation list after each record count (the oracle).

    Independent re-statement of the framing rules: a frame's ops only
    become durable at its COMMIT; ROLLBACK and end-of-log discard.
    """
    states = [[]]
    applied = []
    frame = None
    for op, args in ops:
        if op == "tx_begin":
            frame = []
        elif op == "tx_commit":
            applied.extend(frame)
            frame = None
        elif op == "tx_rollback":
            frame = None
        elif frame is not None:
            frame.append((op, args))
        else:
            applied.append((op, args))
        states.append(list(applied))
    return states


class TestCrashRecoveryProperty:
    def test_every_byte_cut_recovers_durable_prefix(self, tmp_path):
        origin = tmp_path / "origin"
        store, expected_final = seed_tx_store(origin)
        wal_path = origin / wal_name(1)
        records = raw_records(wal_path)
        boundaries = [_HEADER.size] + [end for end, _ in records]
        mutation_states = durable_prefixes([r for _, r in records])
        full = wal_path.read_bytes()
        assert boundaries[-1] == len(full), "must end on a boundary"

        work = tmp_path / "work"
        for cut in range(_HEADER.size, len(full) + 1):
            complete = max(
                i for i, off in enumerate(boundaries) if off <= cut
            )
            expected = read_snapshot(origin / snapshot_name(1))
            for op, args in mutation_states[complete]:
                apply_mutation(expected, op, args)
            if work.exists():
                shutil.rmtree(work)
            shutil.copytree(origin, work)
            (work / wal_name(1)).write_bytes(full[:cut])
            recovered = recover_graph(work)
            assert graph_state(recovered) == graph_state(expected), (
                f"cut at byte {cut} ({complete} complete records)"
            )

    def test_crash_between_begin_and_commit(self, tmp_path):
        """The acceptance criterion, stated directly: a crash with an
        open frame recovers the exact pre-transaction state."""
        origin = tmp_path / "origin"
        store, expected_final = seed_tx_store(origin)
        recovered = recover_graph(origin)
        assert graph_state(recovered) == expected_final

    def test_reopen_truncates_open_frame_and_resumes(self, tmp_path):
        origin = tmp_path / "origin"
        store, expected_final = seed_tx_store(origin)
        with GraphStore.open(origin) as reopened:
            assert reopened.recovery.truncated_bytes > 0
            assert graph_state(reopened.graph) == expected_final
            reopened.graph.add_vertex("C", {"z": 1})
            after = graph_state(reopened.graph)
        assert graph_state(recover_graph(origin)) == after


class TestFramingScan:
    def write_wal(self, path, ops):
        wal = WriteAheadLog(path, generation=1, sync="always")
        for op, args in ops:
            wal.append(op, args)
        wal.close()
        return wal

    def test_committed_frame_resolves_inline(self, tmp_path):
        path = tmp_path / "w.rpgw"
        mutation = ("add_vertex", (0, frozenset({"A"}), {}))
        self.write_wal(
            path,
            [("tx_begin", ()), mutation, ("tx_commit", ())],
        )
        scan = read_wal(path)
        assert scan.records == [mutation]
        assert scan.torn_bytes == 0

    def test_rolled_back_frame_dropped(self, tmp_path):
        path = tmp_path / "w.rpgw"
        mutation = ("add_vertex", (0, frozenset({"A"}), {}))
        self.write_wal(
            path,
            [("tx_begin", ()), mutation, ("tx_rollback", ())],
        )
        scan = read_wal(path)
        assert scan.records == []
        assert scan.torn_bytes == 0

    def test_open_frame_is_torn_tail(self, tmp_path):
        path = tmp_path / "w.rpgw"
        before = ("add_vertex", (0, frozenset({"A"}), {}))
        inside = ("add_vertex", (1, frozenset({"B"}), {}))
        self.write_wal(path, [before, ("tx_begin", ()), inside])
        scan = read_wal(path)
        assert scan.records == [before]
        assert scan.torn_bytes > 0

    def test_commit_without_begin_stops_scan(self, tmp_path):
        path = tmp_path / "w.rpgw"
        before = ("add_vertex", (0, frozenset({"A"}), {}))
        after = ("add_vertex", (1, frozenset({"B"}), {}))
        self.write_wal(path, [before, ("tx_commit", ()), after])
        scan = read_wal(path)
        assert scan.records == [before]
        assert scan.torn_bytes > 0


class TestStoreGuards:
    def test_checkpoint_rejected_mid_transaction(self, tmp_path):
        base = PropertyGraph("g")
        base.add_vertex("A", {})
        store = GraphStore.create(tmp_path / "d", base)
        store.graph.begin_transaction()
        store.graph.add_vertex("A", {})
        with pytest.raises(StorageError, match="transaction"):
            store.checkpoint()
        store.graph.rollback_transaction()
        store.checkpoint()  # fine once closed
        store.close()

    def test_commit_then_checkpoint_then_recover(self, tmp_path):
        base = PropertyGraph("g")
        base.add_vertex("A", {})
        store = GraphStore.create(tmp_path / "d", base, sync="always")
        g = store.graph
        g.begin_transaction()
        g.add_vertex("B", {"y": 1})
        g.commit_transaction()
        store.checkpoint()
        expected = graph_state(g)
        store.close()
        assert graph_state(recover_graph(tmp_path / "d")) == expected
