"""Wire protocol unit tests: framing, codecs, and error mapping."""

from __future__ import annotations

import zlib

import pytest

from repro.exceptions import (
    GraphError,
    QuerySyntaxError,
    QueryTimeoutError,
    ResourceLimitError,
    TransactionError,
)
from repro.graphdb.query.executor import EdgeBinding, VertexBinding
from repro.graphdb.server import protocol as wire


def roundtrip(payload: bytes):
    frame = wire.pack_frame(payload)
    header, body = frame[:wire.FRAME_HEADER_BYTES], frame[
        wire.FRAME_HEADER_BYTES:
    ]
    assert wire.frame_length(header) == len(body)
    return wire.decode_message(wire.check_frame(header, body))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_roundtrip_and_crc():
    payload = wire.encode_run("MATCH (n) RETURN n", {"x": 1}, {})
    frame = wire.pack_frame(payload)
    header, body = frame[:8], frame[8:]
    assert wire.check_frame(header, body) == payload


def test_corrupt_payload_fails_crc():
    payload = wire.encode_success({"ok": True})
    frame = bytearray(wire.pack_frame(payload))
    frame[-1] ^= 0xFF
    with pytest.raises(wire.ProtocolError, match="checksum"):
        wire.check_frame(bytes(frame[:8]), bytes(frame[8:]))


def test_length_mismatch_rejected():
    payload = wire.encode_success({})
    header = wire.pack_frame(payload)[:8]
    with pytest.raises(wire.ProtocolError, match="bytes"):
        wire.check_frame(header, payload + b"\x00")


def test_oversized_frame_rejected_both_directions():
    with pytest.raises(wire.ProtocolError, match="exceeds"):
        wire.pack_frame(b"\x00" * (wire.MAX_FRAME_BYTES + 1))
    import struct

    huge = struct.pack("<II", wire.MAX_FRAME_BYTES + 1, 0)
    with pytest.raises(wire.ProtocolError, match="exceeds"):
        wire.frame_length(huge)


# ----------------------------------------------------------------------
# Message roundtrips
# ----------------------------------------------------------------------
def test_hello_roundtrip():
    msg_type, fields = roundtrip(wire.encode_hello({"app": "t"}))
    assert msg_type == wire.MSG_HELLO
    assert fields == {
        "version": wire.PROTOCOL_VERSION, "client": {"app": "t"},
    }


def test_run_roundtrip_with_params_and_options():
    msg_type, fields = roundtrip(wire.encode_run(
        "MATCH (d:Drug {id: $id}) RETURN d.name",
        {"id": 7, "names": ["a", "b"], "f": 1.5, "flag": True,
         "nothing": None},
        {"timeout": 2.5, "max_rows": 100},
    ))
    assert msg_type == wire.MSG_RUN
    assert fields["params"]["id"] == 7
    assert fields["params"]["names"] == ["a", "b"]
    assert fields["params"]["nothing"] is None
    assert fields["options"] == {"timeout": 2.5, "max_rows": 100}


def test_pull_and_simple_messages():
    assert roundtrip(wire.encode_pull(64)) == (wire.MSG_PULL, {"n": 64})
    for msg_type in (
        wire.MSG_DISCARD, wire.MSG_GOODBYE, wire.MSG_BEGIN,
        wire.MSG_COMMIT, wire.MSG_ROLLBACK,
    ):
        assert roundtrip(wire.encode_simple(msg_type)) == (msg_type, {})


def test_pull_batch_must_be_positive():
    with pytest.raises(wire.ProtocolError):
        wire.encode_pull(0)


def test_record_roundtrip_with_entity_refs():
    values = (
        VertexBinding(3), EdgeBinding(9), "x", 42, 2.5, None, True,
        [VertexBinding(1), [EdgeBinding(2), "deep"]],
    )
    msg_type, fields = roundtrip(wire.encode_record(values))
    assert msg_type == wire.MSG_RECORD
    assert fields["values"] == (
        VertexBinding(3), EdgeBinding(9), "x", 42, 2.5, None, True,
        [VertexBinding(1), [EdgeBinding(2), "deep"]],
    )
    # Decoded refs are the executor's real binding types, so remote
    # rows compare equal to in-process rows.
    assert isinstance(fields["values"][0], VertexBinding)


def test_mutate_roundtrip_with_props_map():
    msg_type, fields = roundtrip(wire.encode_mutate(
        "add_vertex", [["Drug", "Generic"], {"name": "x", "tier": 2}]
    ))
    assert msg_type == wire.MSG_MUTATE
    assert fields["op"] == "add_vertex"
    assert fields["args"] == [["Drug", "Generic"],
                              {"name": "x", "tier": 2}]


def test_mutate_rejects_unknown_op_and_bad_arity():
    with pytest.raises(wire.ProtocolError):
        wire.encode_mutate("drop_table", [])
    bad = bytearray((wire.MSG_MUTATE,))
    from repro.graphdb.storage.codec import write_str

    write_str(bad, "remove_edge")
    wire.write_wire_value(bad, [1, 2, 3])  # remove_edge wants 1 arg
    with pytest.raises(wire.ProtocolError, match="expects 1"):
        wire.decode_message(bytes(bad))


def test_error_roundtrip():
    msg_type, fields = roundtrip(
        wire.encode_error("QueryTimeoutError", "took too long")
    )
    assert msg_type == wire.MSG_ERROR
    assert fields == {
        "code": "QueryTimeoutError", "message": "took too long",
    }


def test_unknown_message_type_and_truncated_body():
    with pytest.raises(wire.ProtocolError, match="unknown"):
        wire.decode_message(b"\xee")
    with pytest.raises(wire.ProtocolError, match="malformed"):
        wire.decode_message(bytes((wire.MSG_RUN,)) + b"\x05ab")
    with pytest.raises(wire.ProtocolError, match="empty"):
        wire.decode_message(b"")


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
def test_error_code_walks_the_hierarchy():
    assert wire.error_code(QueryTimeoutError("x")) == "QueryTimeoutError"
    assert wire.error_code(ResourceLimitError("x")) == "ResourceLimitError"
    assert wire.error_code(QuerySyntaxError("x")) == "QuerySyntaxError"
    assert wire.error_code(ValueError("x")) == "GraphError"

    class CustomTxError(TransactionError):
        pass

    assert wire.error_code(CustomTxError("x")) == "TransactionError"


def test_exception_for_rehydrates_driver_classes():
    exc = wire.exception_for("TransactionError", "nope")
    assert isinstance(exc, TransactionError)
    assert str(exc) == "nope"
    assert isinstance(
        wire.exception_for("NoSuchError", "m"), GraphError
    )
    assert isinstance(
        wire.exception_for("ProtocolError", "m"), wire.ProtocolError
    )


def test_crc_is_of_payload_only():
    payload = wire.encode_success({"a": 1})
    frame = wire.pack_frame(payload)
    import struct

    length, crc = struct.unpack("<II", frame[:8])
    assert length == len(payload)
    assert crc == zlib.crc32(payload)
