"""Server test harness: a real GraphServer on a background event loop.

There is no pytest-asyncio in the toolchain, so the harness runs
``asyncio.run`` in a daemon thread and the tests drive the server from
the outside with the blocking remote driver - which is also exactly
how real clients see it.  Every server binds port 0 (ephemeral), so
tests parallelize and never collide.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.graphdb import faults, observe
from repro.graphdb.api.database import Database, connect
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.server import GraphServer, ServerConfig
from repro.graphdb.storage import GraphStore


class ServerThread:
    """One GraphServer running on its own event loop thread."""

    def __init__(self, database, config: ServerConfig | None = None):
        config = config or ServerConfig()
        config.port = config.port or 0
        self.server = GraphServer(database, config)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        #: Whatever serve_forever raised (a SimulatedCrash for the
        #: torture tests), or None after a clean stop.
        self.error: BaseException | None = None

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 - harness boundary
            self.error = exc
        finally:
            self._started.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(10)
        if self.server.address is None:
            raise RuntimeError(f"server failed to start: {self.error}")
        return self

    @property
    def url(self) -> str:
        host, port = self.server.address
        return f"repro://{host}:{port}"

    @property
    def http_url(self) -> str:
        host, port = self.server.http_address
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 10.0) -> BaseException | None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server did not stop"
        return self.error


@pytest.fixture()
def server_factory():
    """``factory(database, config=None) -> ServerThread`` (auto-stop)."""
    servers: list[ServerThread] = []

    def factory(database, config: ServerConfig | None = None):
        harness = ServerThread(database, config).start()
        servers.append(harness)
        return harness

    yield factory
    for harness in servers:
        harness.stop()


@pytest.fixture()
def small_graph():
    graph = PropertyGraph("wire-test")
    drugs = [
        graph.add_vertex(["Drug"], {"name": name, "tier": i % 3})
        for i, name in enumerate(
            ["aspirin", "ibuprofen", "paracetamol", "naproxen",
             "codeine", "tramadol"]
        )
    ]
    for i in range(len(drugs) - 1):
        graph.add_edge(drugs[i], drugs[i + 1], "INTERACTS", {"w": i})
    return graph


@pytest.fixture()
def durable_db(small_graph, tmp_path):
    """A durable database over ``small_graph`` (WAL-backed)."""
    data_dir = tmp_path / "data"
    GraphStore.create(data_dir, small_graph).close()
    database = connect(data_dir)
    yield database
    if not database.closed:
        database.close()


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.REGISTRY.reset()
    yield
    faults.REGISTRY.reset()
