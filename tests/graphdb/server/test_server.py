"""GraphServer behavior: sessions, transactions, limits, sidecar."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.exceptions import (
    GraphError,
    QuerySyntaxError,
    ResourceLimitError,
    TransactionError,
)
from repro.graphdb import observe
from repro.graphdb.api.database import connect
from repro.graphdb.query.executor import VertexBinding
from repro.graphdb.server import ServerConfig


def test_hello_reports_server_identity(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    remote = connect(harness.url)
    assert remote.server_info["server"] == "repro"
    assert remote.server_info["protocol"] == 1
    assert remote.server_info["graph"] == "wire-test"
    assert remote.server_info["readonly"] is False
    remote.close()


def test_remote_rows_match_in_process(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    queries = [
        ("MATCH (d:Drug) RETURN d.name AS name, d.tier AS tier", {}),
        ("MATCH (d:Drug {name: $n}) RETURN d", {"n": "aspirin"}),
        ("MATCH (a:Drug)-[:INTERACTS]->(b:Drug) "
         "RETURN a.name, b.name", {}),
        ("MATCH (d:Drug) RETURN count(*) AS n", {}),
    ]
    with connect(small_graph).session() as local, \
            connect(harness.url) as remote_db, \
            remote_db.session() as remote:
        for text, params in queries:
            expected = sorted(
                map(repr, local.run(text, params).values())
            )
            got = sorted(map(repr, remote.run(text, params).values()))
            assert got == expected, text


def test_entity_refs_survive_the_wire(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session() as session:
        record = session.run(
            "MATCH (d:Drug {name: $n}) RETURN d", n="aspirin"
        ).single()
        assert isinstance(record["d"], VertexBinding)


def test_lazy_pull_streaming_and_summary(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db:
        session = db.session(fetch_size=2)
        result = session.run("MATCH (d:Drug) RETURN d.name AS name")
        iterator = iter(result)
        first = next(iterator)
        assert first["name"]
        # Summary only settles once the stream is drained.
        assert result._summary is None
        rest = list(iterator)
        assert len(rest) == 5
        summary = result.consume()
        assert summary.rows == 6
        assert summary.columns == ["name"]
        assert summary.epoch == small_graph.mutation_epoch
        assert summary.plan_digest
        session.close()


def test_new_run_detaches_previous_result(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db:
        with db.session(fetch_size=2) as session:
            first = session.run("MATCH (d:Drug) RETURN d.name")
            second = session.run(
                "MATCH (d:Drug) RETURN count(*) AS n"
            )
            # The first cursor was detached, not lost: all its rows
            # are still readable, in order, from the client buffer.
            assert len(first.records()) == 6
            assert second.single()["n"] == 6


def test_consume_discards_server_side(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session(fetch_size=2) as s:
        result = s.run("MATCH (d:Drug) RETURN d.name")
        summary = result.consume()
        assert summary.rows == 6  # server reports the full row count


def test_explain_remote(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session() as session:
        plan = session.explain("MATCH (d:Drug) RETURN d.name")
        assert "Scan" in plan
        analyzed = session.explain(
            "MATCH (d:Drug) RETURN d.name", analyze=True
        )
        assert "rows" in analyzed


def test_syntax_error_maps_to_driver_exception(
    server_factory, small_graph
):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session() as session:
        with pytest.raises(QuerySyntaxError):
            session.run("MATCH (((").consume()
        # The connection survives a query error.
        assert session.run(
            "MATCH (d:Drug) RETURN count(*) AS n"
        ).single()["n"] == 6


def test_server_max_rows_guardrail(server_factory, small_graph):
    harness = server_factory(
        connect(small_graph), ServerConfig(port=0, max_rows=3)
    )
    with connect(harness.url) as db, db.session() as session:
        with pytest.raises(ResourceLimitError):
            session.run("MATCH (d:Drug) RETURN d.name").consume()
        # Client asks above the server ceiling are clamped down.
        with pytest.raises(ResourceLimitError):
            session.run(
                "MATCH (d:Drug) RETURN d.name", max_rows=100
            ).consume()
        assert session.run(
            "MATCH (d:Drug) RETURN count(*) AS n"
        ).single()["n"] == 6


def test_client_max_rows_guardrail(server_factory, small_graph):
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session() as session:
        with pytest.raises(ResourceLimitError):
            session.run(
                "MATCH (d:Drug) RETURN d.name", max_rows=2
            ).consume()


def _session_with_retry(db, deadline_s: float = 5.0):
    """Open a session, retrying while recently-closed connections are
    still being reaped server-side (the accept counter is loop-async)."""
    deadline = time.time() + deadline_s
    while True:
        try:
            return db.session()
        except GraphError:
            if time.time() >= deadline:
                raise
            time.sleep(0.02)


def test_connection_capacity_backpressure(server_factory, small_graph):
    harness = server_factory(
        connect(small_graph), ServerConfig(port=0, max_connections=2)
    )
    db = connect(harness.url)  # probe connection closes right away
    s1 = _session_with_retry(db)
    s2 = _session_with_retry(db)
    with pytest.raises(GraphError, match="capacity"):
        db.session().run("MATCH (d) RETURN d")
    # Freeing a slot lets the next client in.
    s2.close()
    s3 = _session_with_retry(db)
    assert s3.run(
        "MATCH (d:Drug) RETURN count(*) AS n"
    ).single()["n"] == 6
    s3.close()
    s1.close()
    db.close()


def test_idle_timeout_reaps_connections(server_factory, small_graph):
    harness = server_factory(
        connect(small_graph), ServerConfig(port=0, idle_timeout=0.15)
    )
    db = connect(harness.url)
    session = db.session()
    assert session.run(
        "MATCH (d:Drug) RETURN count(*) AS n"
    ).single()["n"] == 6
    time.sleep(0.5)
    with pytest.raises(GraphError):
        session.run("MATCH (d:Drug) RETURN d.name").consume()
    db.close()


# ----------------------------------------------------------------------
# Transactions over the wire
# ----------------------------------------------------------------------
def test_remote_transaction_commit_is_durable(
    server_factory, durable_db, tmp_path
):
    harness = server_factory(durable_db)
    with connect(harness.url) as db, db.session() as session:
        with session.begin_tx() as tx:
            vid = tx.add_vertex("Drug", {"name": "remoteine"})
            tx.set_property(vid, "tier", 9)
            tx.commit()
        assert session.run(
            "MATCH (d:Drug {name: $n}) RETURN d.tier AS t",
            n="remoteine",
        ).single()["t"] == 9
    assert harness.stop() is None
    # The server closed the store cleanly; recovery sees the commit.
    reopened = connect(tmp_path / "data", create=False)
    with reopened.session() as session:
        assert session.run(
            "MATCH (d:Drug {name: $n}) RETURN count(*) AS n",
            n="remoteine",
        ).single()["n"] == 1
    reopened.close()


def test_remote_rollback_discards(server_factory, durable_db):
    harness = server_factory(durable_db)
    with connect(harness.url) as db, db.session() as session:
        with session.begin_tx() as tx:
            tx.add_vertex("Drug", {"name": "ghost"})
            tx.rollback()
        assert session.run(
            "MATCH (d:Drug {name: $n}) RETURN count(*) AS n",
            n="ghost",
        ).single()["n"] == 0


def test_abandoned_tx_rolls_back_on_disconnect(
    server_factory, durable_db
):
    harness = server_factory(durable_db)
    db = connect(harness.url)
    session = db.session()
    tx = session.begin_tx()
    tx.add_vertex("Drug", {"name": "orphan"})
    # Hang up without committing: the server must roll back and free
    # the writer slot for the next client.
    session._conn.close()
    session._closed = True
    with connect(harness.url) as db2, db2.session() as s2:
        with s2.begin_tx() as tx2:  # writer slot is free again
            tx2.commit()
        assert s2.run(
            "MATCH (d:Drug {name: $n}) RETURN count(*) AS n",
            n="orphan",
        ).single()["n"] == 0
    db.close()


def test_mutate_outside_tx_rejected(server_factory, durable_db):
    harness = server_factory(durable_db)
    with connect(harness.url) as db, db.session() as session:
        from repro.graphdb.server import protocol as wire

        with pytest.raises(TransactionError, match="BEGIN"):
            session._conn.request(
                wire.encode_mutate("remove_edge", [0])
            )


def test_tx_sees_own_writes_others_wait(server_factory, durable_db):
    harness = server_factory(durable_db)
    with connect(harness.url) as db:
        writer = db.session()
        reader = db.session()
        tx = writer.begin_tx()
        tx.add_vertex("Drug", {"name": "pending"})
        # Same-connection read sees the uncommitted vertex.
        assert tx.run(
            "MATCH (d:Drug {name: $n}) RETURN count(*) AS n",
            n="pending",
        ).single()["n"] == 1

        observed = {}

        def read_other():
            observed["n"] = reader.run(
                "MATCH (d:Drug {name: $n}) RETURN count(*) AS n",
                n="pending",
            ).single()["n"]

        thread = threading.Thread(target=read_other)
        thread.start()
        thread.join(0.3)
        # The foreign reader is parked until the tx resolves - no
        # dirty read is possible.
        assert thread.is_alive()
        tx.commit()
        thread.join(5)
        assert not thread.is_alive()
        assert observed["n"] == 1
        writer.close()
        reader.close()


# ----------------------------------------------------------------------
# Read-only enforcement
# ----------------------------------------------------------------------
def test_readonly_server_rejects_begin(server_factory, small_graph):
    harness = server_factory(
        connect(small_graph), ServerConfig(port=0, readonly=True)
    )
    remote = connect(harness.url)
    assert remote.readonly is True
    with remote.session() as session:
        # Client-side refusal (the handshake reported readonly).
        with pytest.raises(TransactionError, match="read-only"):
            session.begin_tx()
        # Protocol-level refusal for clients that skip the check.
        from repro.graphdb.server import protocol as wire

        with pytest.raises(TransactionError, match="read-only"):
            session._conn.request(wire.encode_simple(wire.MSG_BEGIN))
    remote.close()


def test_readonly_client_handle_rejects_writes(
    server_factory, durable_db
):
    harness = server_factory(durable_db)
    remote = connect(harness.url, readonly=True)
    with remote.session() as session:
        with pytest.raises(TransactionError, match="read-only"):
            session.begin_tx()
        assert session.run(
            "MATCH (d:Drug) RETURN count(*) AS n"
        ).single()["n"] == 6
    remote.close()


def test_local_readonly_connect_rejects_writes(durable_db, tmp_path):
    durable_db.close()
    db = connect(tmp_path / "data", readonly=True)
    assert db.readonly is True
    with db.session() as session:
        with pytest.raises(TransactionError, match="read-only"):
            session.begin_tx()


# ----------------------------------------------------------------------
# HTTP sidecar
# ----------------------------------------------------------------------
def test_http_health_and_metrics(server_factory, small_graph):
    harness = server_factory(
        connect(small_graph), ServerConfig(port=0, http_port=0)
    )
    with connect(harness.url) as db, db.session() as session:
        session.run("MATCH (d:Drug) RETURN d.name").consume()
        health = json.loads(urllib.request.urlopen(
            f"{harness.http_url}/health", timeout=5
        ).read())
        assert health["status"] == "ok"
        assert health["vertices"] == 6
        assert health["connections"] >= 1
        body = urllib.request.urlopen(
            f"{harness.http_url}/metrics", timeout=5
        ).read().decode()
        assert "repro_server_requests_total" in body
        assert "repro_server_connections" in body
        assert "repro_server_request_seconds" in body
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"{harness.http_url}/nope", timeout=5
            )


def test_server_metrics_move(server_factory, small_graph):
    before = observe.REGISTRY.snapshot()
    harness = server_factory(connect(small_graph))
    with connect(harness.url) as db, db.session() as session:
        session.run("MATCH (d:Drug) RETURN d.name").consume()
    after = observe.REGISTRY.snapshot()

    def counter(snap, name):
        value = snap["counters"].get(name, 0)
        if isinstance(value, dict):
            return sum(value.values())
        return value

    assert counter(after, "repro_server_connections_total") > counter(
        before, "repro_server_connections_total"
    )
    assert counter(after, "repro_server_bytes_read_total") > counter(
        before, "repro_server_bytes_read_total"
    )
    assert counter(after, "repro_server_bytes_written_total") > counter(
        before, "repro_server_bytes_written_total"
    )
