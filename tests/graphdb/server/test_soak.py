"""Concurrency soak, crash torture, and remote/in-process parity.

The acceptance-critical properties of the server:

* **Snapshot consistency under concurrent writes** - 32 client
  threads stream results (small PULL batches, so a result spans many
  commits) while a writer bursts transactions; every result must be
  internally consistent: complete transactions only, and a contiguous
  prefix of the commit history.
* **Kill-the-server-mid-commit** - an injected ``wal.flush.fsync``
  crash takes the whole server down without flushing (the PR 6 fault
  model); recovery must preserve every *acknowledged* commit and never
  surface a torn one.
* **Remote == in-process** - the full MED and FIN benchmark suites
  produce multiset-identical rows over the wire and in-process.
* **Group commit** - concurrent writers amortize fsyncs: strictly
  fewer fsyncs than commits, observable in the batch-size histogram.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.data.loader import load_direct
from repro.exceptions import GraphError, StorageError
from repro.graphdb import faults, observe
from repro.graphdb.api.database import connect
from repro.graphdb.server import ServerConfig
from repro.graphdb.storage import GraphStore

MARKS_PER_COMMIT = 5
COMMITS = 20
READERS = 32


def test_soak_readers_see_only_committed_prefixes(
    server_factory, tmp_path
):
    """32 streaming readers during a write burst: every result is a
    snapshot - whole transactions only, no torn or future state."""
    from repro.graphdb.graph import PropertyGraph

    graph = PropertyGraph("soak")
    graph.add_vertex(["Seed"], {"n": 0})
    data_dir = tmp_path / "soak"
    GraphStore.create(data_dir, graph).close()
    harness = server_factory(
        connect(data_dir), ServerConfig(port=0, group_window=0.001)
    )

    failures: list[str] = []
    start = threading.Barrier(READERS + 2)
    writer_done = threading.Event()

    def writer():
        start.wait()
        with connect(harness.url) as db, db.session() as session:
            for gen in range(1, COMMITS + 1):
                with session.begin_tx() as tx:
                    for i in range(MARKS_PER_COMMIT):
                        tx.add_vertex(
                            "Mark", {"gen": gen, "i": i}
                        )
                    tx.commit()
        writer_done.set()

    def reader(idx: int):
        start.wait()
        try:
            with connect(harness.url) as db:
                # fetch_size=3: a full result takes many PULL round
                # trips, so commits land *while* it streams.
                with db.session(fetch_size=3) as session:
                    while not writer_done.is_set():
                        result = session.run(
                            "MATCH (m:Mark) RETURN m.gen AS g"
                        )
                        gens = [record["g"] for record in result]
                        summary = result.consume()
                        counts = Counter(gens)
                        if any(
                            n != MARKS_PER_COMMIT
                            for n in counts.values()
                        ):
                            failures.append(
                                f"reader {idx} saw a torn commit: "
                                f"{dict(counts)} "
                                f"(epoch {summary.epoch})"
                            )
                            return
                        if counts and sorted(counts) != list(
                            range(1, max(counts) + 1)
                        ):
                            failures.append(
                                f"reader {idx} saw a gapped history: "
                                f"{sorted(counts)}"
                            )
                            return
        except GraphError as exc:
            failures.append(f"reader {idx} errored: {exc}")

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(i,))
        for i in range(READERS)
    ]
    for thread in threads:
        thread.start()
    start.wait()
    for thread in threads:
        thread.join(120)
        assert not thread.is_alive(), "soak thread hung"
    assert not failures, failures[:5]

    # And the final state is exactly the full burst.
    with connect(harness.url) as db, db.session() as session:
        assert session.run(
            "MATCH (m:Mark) RETURN count(*) AS n"
        ).single()["n"] == COMMITS * MARKS_PER_COMMIT


def test_group_commit_batches_concurrent_writers(
    server_factory, tmp_path
):
    """Concurrent writers share fsyncs: the batch-size histogram must
    record fewer fsyncs than commits (at least one batch > 1)."""
    from repro.graphdb.graph import PropertyGraph

    data_dir = tmp_path / "group"
    GraphStore.create(data_dir, PropertyGraph("group")).close()
    harness = server_factory(
        connect(data_dir), ServerConfig(port=0, group_window=0.02)
    )

    def hist():
        snap = observe.REGISTRY.snapshot()["histograms"][
            "repro_wal_group_commit_batch_size"
        ]
        return snap["count"], snap["sum"]

    fsyncs_before, commits_before = hist()
    writers = 8
    commits_each = 4
    barrier = threading.Barrier(writers)
    errors: list[BaseException] = []

    def write(idx: int):
        try:
            with connect(harness.url) as db, db.session() as session:
                barrier.wait()
                for i in range(commits_each):
                    with session.begin_tx() as tx:
                        tx.add_vertex("W", {"w": idx, "i": i})
                        tx.commit()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=write, args=(i,))
        for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not errors, errors
    fsyncs, commits = hist()
    fsyncs -= fsyncs_before
    commits -= commits_before
    assert commits == writers * commits_each
    # Strictly amortized: fewer fsyncs than commits.
    assert fsyncs < commits, (fsyncs, commits)
    # And durable: everything is there after a clean stop + recovery.
    assert harness.stop() is None
    with connect(data_dir, create=False) as db, db.session() as s:
        assert s.run("MATCH (w:W) RETURN count(*) AS n").single()[
            "n"
        ] == commits


def test_kill_server_mid_commit_recovers(server_factory, tmp_path):
    """A SimulatedCrash at the commit fsync takes the server down like
    kill -9; recovery keeps every acknowledged commit."""
    from repro.graphdb.graph import PropertyGraph

    data_dir = tmp_path / "torture"
    GraphStore.create(data_dir, PropertyGraph("torture")).close()
    harness = server_factory(connect(data_dir), ServerConfig(port=0))

    acked = 0
    # The first two commit fsyncs succeed, the third dies mid-fsync.
    faults.REGISTRY.arm("wal.flush.fsync", mode="crash", at=3)
    with connect(harness.url) as db, db.session() as session:
        crashed = False
        for gen in range(1, 6):
            try:
                tx = session.begin_tx()
                tx.add_vertex("T", {"gen": gen})
                tx.commit()
                acked += 1
            except (GraphError, StorageError):
                # StorageError from the dying fsync, or the connection
                # dropping as the server goes down - both are the
                # crash surfacing.
                crashed = True
                break
        assert crashed, "fault never fired"
    assert acked == 2
    error = harness.stop()
    assert isinstance(error, faults.SimulatedCrash)
    # The store was abandoned, not flushed: like a killed process.
    assert harness.server.database.store.closed
    faults.REGISTRY.reset()

    # Recovery: every acknowledged commit survives; the torn one is
    # either fully absent or fully replayed - never partial.
    reopened = connect(data_dir, create=False)
    assert reopened.store.recovery is not None
    with reopened.session() as session:
        gens = sorted(
            record["g"]
            for record in session.run(
                "MATCH (t:T) RETURN t.gen AS g"
            )
        )
    reopened.close()
    assert gens[: acked] == [1, 2]
    assert len(gens) in (acked, acked + 1)
    assert gens == list(range(1, len(gens) + 1))


def test_crash_on_accept_failpoint(server_factory, small_graph):
    """``server.accept:crash`` takes the server down on the next
    connection; ``server.accept:error`` just rejects it."""
    harness = server_factory(connect(small_graph))
    with faults.REGISTRY.armed("server.accept", mode="error"):
        with pytest.raises(GraphError):
            connect(harness.url)
    # Rejection is not fatal: the server still serves.
    with connect(harness.url) as db, db.session() as session:
        assert session.run(
            "MATCH (d:Drug) RETURN count(*) AS n"
        ).single()["n"] == 6
    faults.REGISTRY.arm("server.accept", mode="crash")
    with pytest.raises(GraphError):
        with connect(harness.url) as db:
            db.session()
    assert isinstance(harness.stop(), faults.SimulatedCrash)


def test_read_write_failpoints_drop_the_connection(
    server_factory, small_graph
):
    harness = server_factory(connect(small_graph))
    # Arm *after* the session handshake so the very next server-side
    # frame read (the RUN) eats the fault; the client must surface it
    # as a connection loss, not a hang or a silent empty result.
    db = connect(harness.url)
    session = db.session()
    with faults.REGISTRY.armed("server.read", mode="error"):
        with pytest.raises(GraphError):
            session.run("MATCH (d:Drug) RETURN d.name").consume()
    db.close()
    # Same for the write path: the first write after arming is the
    # SUCCESS response to the RUN.
    db = connect(harness.url)
    session = db.session()
    with faults.REGISTRY.armed("server.write", mode="error"):
        with pytest.raises(GraphError):
            session.run(
                "MATCH (d:Drug) RETURN d.name"
            ).consume()
    db.close()
    # Other connections are unaffected.
    with connect(harness.url) as db, db.session() as session:
        assert session.run(
            "MATCH (d:Drug) RETURN count(*) AS n"
        ).single()["n"] == 6


# ----------------------------------------------------------------------
# Remote / in-process parity on the benchmark suites
# ----------------------------------------------------------------------
def _normalize(rows):
    out = []
    for row in rows:
        out.append(tuple(
            tuple(sorted(map(repr, v))) if isinstance(v, list) else v
            for v in row
        ))
    return sorted(out, key=repr)


@pytest.mark.parametrize("name", ["med", "fin"])
def test_remote_suite_multiset_identical(
    name, med_small, fin_small, server_factory
):
    dataset = med_small if name == "med" else fin_small
    graph = load_direct(dataset.logical(), name=f"{name}-DIR")
    harness = server_factory(connect(graph))
    local_db = connect(graph)
    remote_db = connect(harness.url)
    with local_db.session() as local, remote_db.session() as remote:
        for qid, query in sorted(dataset.queries.items()):
            expected = _normalize(local.run(query).values())
            got = _normalize(remote.run(query).values())
            assert got == expected, f"{name} {qid} diverged"
    remote_db.close()
    local_db.close()
