"""Columnar core: symbol table, typed columns, tables, frozen CSR view."""

import pytest

from repro.exceptions import GraphError
from repro.graphdb.columnar import (
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJ,
    PropertyColumn,
    SymbolTable,
)
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.view import graph_pagerank
from repro.optimizer.pagerank import pagerank, pagerank_kernel


class TestSymbolTable:
    def test_intern_is_dense_and_stable(self):
        table = SymbolTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert table.name(1) == "b"
        assert table.sid("b") == 1
        assert table.sid("nope") is None
        assert "a" in table and "nope" not in table
        assert len(table) == 2
        assert table.names() == ["a", "b"]


class TestPropertyColumn:
    def test_typed_kinds(self):
        assert PropertyColumn.for_value(3).kind == KIND_INT
        assert PropertyColumn.for_value(3.5).kind == KIND_FLOAT
        assert PropertyColumn.for_value("x").kind == KIND_OBJ
        # bools must not be packed into int slots (type would be lost)
        assert PropertyColumn.for_value(True).kind == KIND_OBJ
        assert PropertyColumn.for_value([1]).kind == KIND_OBJ
        assert PropertyColumn.for_value(1 << 80).kind == KIND_OBJ

    def test_absent_vs_stored_none(self):
        col = PropertyColumn(KIND_OBJ)
        col.set(2, None)
        assert col.present(2)
        assert col.value_at(2, "fallback") is None
        assert not col.present(1)
        assert col.value_at(1, "fallback") == "fallback"
        assert col.count == 1

    def test_promotion_keeps_values(self):
        col = PropertyColumn(KIND_INT)
        col.set(0, 10)
        col.set(2, 30)
        col.set(1, "mixed")  # promotes in place
        assert col.kind == KIND_OBJ
        assert col.value_at(0) == 10
        assert col.value_at(1) == "mixed"
        assert col.value_at(2) == 30

    def test_unset_frees_slot(self):
        col = PropertyColumn.for_value("a")
        col.set(0, "a")
        col.unset(0)
        assert not col.present(0)
        assert col.count == 0
        col.unset(5)  # out of range: no-op

    def test_from_rows_dense_and_sparse(self):
        dense = PropertyColumn.from_rows([0, 1, 2], [7, 8, 9], KIND_INT)
        assert [dense.value_at(i) for i in range(3)] == [7, 8, 9]
        sparse = PropertyColumn.from_rows([1, 4], ["a", "b"], KIND_OBJ)
        assert sparse.value_at(0) is None
        assert sparse.value_at(1) == "a"
        assert sparse.value_at(4) == "b"


@pytest.fixture()
def graph():
    g = PropertyGraph("t")
    a = g.add_vertex("A", {"name": "a0", "k": 1})
    b = g.add_vertex(["A", "B"], {"name": "b0", "score": 1.5})
    c = g.add_vertex("C", {"tags": ["x", "y"]})
    g.add_edge(a, b, "knows")
    g.add_edge(a, c, "likes", {"weight": 2})
    g.add_edge(b, c, "knows")
    return g


class TestColumnarLayout:
    def test_tables_partition_by_labelset(self, graph):
        tables = {
            frozenset(t.labels): t.live for t in graph.iter_tables()
        }
        assert tables == {
            frozenset({"A"}): 1,
            frozenset({"A", "B"}): 1,
            frozenset({"C"}): 1,
        }

    def test_typed_columns_assigned(self, graph):
        kinds = {}
        for table in graph.iter_tables():
            for sid, column in table.columns.items():
                kinds[graph.symbols.name(sid)] = column.kind
        assert kinds["k"] == KIND_INT
        assert kinds["score"] == KIND_FLOAT
        assert kinds["name"] == KIND_OBJ
        assert kinds["tags"] == KIND_OBJ

    def test_facade_mapping_protocol(self, graph):
        props = graph.vertex(0).properties
        assert props["name"] == "a0"
        assert props.get("missing") is None
        assert "k" in props and "missing" not in props
        assert sorted(props) == ["k", "name"]
        assert len(props) == 2
        assert dict(props) == {"name": "a0", "k": 1}
        assert props == {"name": "a0", "k": 1}
        with pytest.raises(KeyError):
            props["missing"]

    def test_facade_writes_hit_columns(self, graph):
        graph.vertex(0).properties["extra"] = 42
        assert graph.get_property(0, "extra") == 42
        del graph.vertex(0).properties["extra"]
        assert graph.get_property(0, "extra") is None
        with pytest.raises(KeyError):
            del graph.vertex(0).properties["extra"]

    def test_inplace_list_mutation_sticks(self, graph):
        # The loader extends replicated list properties in place; the
        # object column must hold the same list object.
        tags = graph.vertex(2).properties["tags"]
        tags.extend(["z"])
        assert graph.vertex(2).properties["tags"] == ["x", "y", "z"]

    def test_vertex_ids_and_views(self, graph):
        assert graph.vertex_ids() == [0, 1, 2]
        assert 1 in graph._vertices and 99 not in graph._vertices
        assert 2 in graph._edges and 99 not in graph._edges
        graph.remove_vertex(1)
        assert graph.vertex_ids() == [0, 2]
        assert 1 not in graph._vertices
        assert len(graph._vertices) == 2

    def test_edge_facade(self, graph):
        edge = graph.out_edges(0, "likes")[0]
        assert (edge.src, edge.dst, edge.label) == (0, 2, "likes")
        assert edge.properties == {"weight": 2}
        assert graph.edge(edge.eid) == edge

    def test_stored_none_roundtrip(self, graph):
        graph.set_property(0, "maybe", None)
        assert "maybe" in graph.vertex(0).properties
        graph.remove_property(0, "maybe")
        assert "maybe" not in graph.vertex(0).properties


class TestFreezeLifecycle:
    def test_freeze_returns_cached_until_mutation(self, graph):
        view = graph.freeze()
        assert view.valid
        assert graph.freeze() is view
        assert graph.frozen_view is view
        graph.add_vertex("A", {})
        assert not view.valid
        assert graph.frozen_view is None
        rebuilt = graph.freeze()
        assert rebuilt is not view and rebuilt.valid

    def test_every_mutation_invalidates(self, graph):
        mutations = [
            lambda g: g.add_vertex("Z", {}),
            lambda g: g.add_edge(0, 2, "new"),
            lambda g: g.set_property(0, "k", 9),
            lambda g: g.remove_property(0, "k"),
            lambda g: g.remove_edge(0),
            lambda g: g.remove_vertex(2),
            lambda g: g.create_property_index("A", "name"),
        ]
        for mutate in mutations:
            view = graph.freeze()
            mutate(graph)
            assert not view.valid

    @pytest.mark.parametrize("direction", ["out", "in", "any"])
    @pytest.mark.parametrize("labels", [(), ("knows",), ("knows", "likes"),
                                        ("nope",)])
    def test_csr_expand_matches_dict_adjacency(
        self, graph, direction, labels
    ):
        from repro.graphdb.session import GraphSession

        expected = {}
        for vid in graph.vertex_ids():
            session = GraphSession(graph)
            expected[vid] = sorted(
                session.expand_pairs(vid, labels, direction)
            )
        view = graph.freeze()
        assert view.valid
        for vid in graph.vertex_ids():
            session = GraphSession(graph)
            got = sorted(session.expand_pairs(vid, labels, direction))
            assert got == expected[vid], (vid, labels, direction)

    def test_csr_segments_match_offsets(self, graph):
        view = graph.freeze()
        for sid, (offsets, neighbors, eids) in view.iter_csr("out"):
            segments = view._out_segments[sid]
            for vid in graph.vertex_ids():
                start, end = offsets[vid], offsets[vid + 1]
                expected = tuple(
                    zip(eids[start:end], neighbors[start:end])
                )
                assert segments.get(vid, ()) == expected

    def test_stale_view_not_used_after_mutation(self, graph):
        from repro.graphdb.session import GraphSession

        graph.freeze()
        graph.add_edge(0, 1, "knows")
        session = GraphSession(graph)
        pairs = session.expand_pairs(0, ("knows",), "out")
        assert len(pairs) == 2  # includes the post-freeze edge


class TestScanRows:
    def test_matches_accept_path(self, graph):
        from repro.graphdb.session import GraphSession

        session = GraphSession(graph)
        got = list(session.scan_rows("A", None, (("name", "a0"),)))
        assert got == [0]
        # residual label check collapses to the table subset test
        got = list(session.scan_rows("A", frozenset({"B"}), ()))
        assert got == [1]
        # absent property only matches an explicit None target
        assert list(session.scan_rows("C", None, (("name", "x"),))) == []
        assert list(session.scan_rows("C", None, (("name", None),))) == [2]

    def test_unknown_label_yields_nothing(self, graph):
        from repro.graphdb.session import GraphSession

        session = GraphSession(graph)
        assert list(session.scan_rows("Nope", None, ())) == []

    def test_multi_prop_scan(self, graph):
        from repro.graphdb.session import GraphSession

        session = GraphSession(graph)
        got = list(
            session.scan_rows("A", None, (("name", "a0"), ("k", 1)))
        )
        assert got == [0]
        got = list(
            session.scan_rows("A", None, (("name", "a0"), ("k", 2)))
        )
        assert got == []


class TestPageRankKernel:
    def test_kernel_matches_dict_wrapper(self):
        adjacency = {
            0: [1, 2], 1: [2], 2: [0], 3: [2], 4: [],
        }
        scores, iters = pagerank(adjacency)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        flat_src, flat_dst = [], []
        for node, neighbors in adjacency.items():
            for n in neighbors:
                flat_src.append(node)
                flat_dst.append(n)
        raw, raw_iters = pagerank_kernel(5, flat_src, flat_dst)
        assert raw_iters == iters
        for node, score in scores.items():
            assert raw[node] == pytest.approx(score)

    def test_graph_pagerank_over_frozen_csr(self):
        g = PropertyGraph()
        vids = [g.add_vertex("N", {}) for _ in range(4)]
        for a, b in zip(vids, vids[1:] + vids[:1]):  # ring
            g.add_edge(a, b, "next")
        scores = graph_pagerank(g)
        assert set(scores) == set(vids)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        # symmetric ring: every vertex scores the same
        values = list(scores.values())
        assert max(values) == pytest.approx(min(values))
        assert g.frozen_view is not None and g.frozen_view.valid

    def test_graph_pagerank_empty(self):
        assert graph_pagerank(PropertyGraph()) == {}

    def test_hub_outranks_leaves(self):
        g = PropertyGraph()
        hub = g.add_vertex("N", {})
        for _ in range(5):
            leaf = g.add_vertex("N", {})
            g.add_edge(leaf, hub, "to")
        scores = graph_pagerank(g)
        assert scores[hub] == max(scores.values())


class TestFacadeErrors:
    def test_unknown_ids_raise(self, graph):
        with pytest.raises(GraphError):
            graph.vertex(99)
        with pytest.raises(GraphError):
            graph.edge(99)
        with pytest.raises(GraphError):
            graph.labels_of(99)
        graph.remove_vertex(0)
        with pytest.raises(GraphError):
            graph.vertex(0)


class TestReviewRegressions:
    """Pinned fixes from the columnar-core review pass."""

    def test_snapshot_preserves_id_space_after_tail_removal(self, tmp_path):
        from repro.graphdb.storage.snapshot import (
            read_snapshot,
            write_snapshot,
        )

        g = PropertyGraph()
        vids = [g.add_vertex("N", {"i": i}) for i in range(10)]
        eids = [g.add_edge(vids[i], vids[i + 1], "e") for i in range(9)]
        g.remove_edge(eids[-1])
        g.remove_vertex(vids[-1])  # tail ids become holes
        path = tmp_path / "g.rpgs"
        write_snapshot(g, path)
        loaded = read_snapshot(path)
        # New ids continue after the holes; removed ids stay dead.
        new_vid = loaded.add_vertex("N", {"i": 99})
        assert new_vid == 10
        assert loaded.get_property(new_vid, "i") == 99
        with pytest.raises(GraphError):
            loaded.vertex(9)
        new_eid = loaded.add_edge(vids[0], new_vid, "e")
        assert new_eid == 9
        assert loaded.edge(new_eid).dst == new_vid
        with pytest.raises(GraphError):
            loaded.edge(8)

    def test_null_scan_sees_rows_beyond_column_padding(self):
        from repro.graphdb.backends import NEO4J_LIKE
        from repro.graphdb.query.executor import Executor
        from repro.graphdb.session import GraphSession

        g = PropertyGraph()
        first = g.add_vertex("L", {})
        g.set_property(first, "x", 1)  # column mask ends at row 0
        for _ in range(9):
            g.add_vertex("L", {})
        executor = Executor(GraphSession(g, NEO4J_LIKE))
        got = executor.run(
            "MATCH (v:L {x: null}) RETURN count(*)"
        ).single_value()
        assert got == 9

    def test_negative_vertex_ids_rejected(self, graph):
        for vid in (-1, -2, -99):
            with pytest.raises(GraphError):
                graph.vertex(vid)
            with pytest.raises(GraphError):
                graph.labels_of(vid)
            with pytest.raises(GraphError):
                graph.get_property(vid, "name")

    def test_edge_property_reads_do_not_allocate(self, graph):
        before = len(graph._e_props)
        for edge in graph.iter_edges():
            edge.properties.get("weight")
            dict(edge.properties)
        assert len(graph._e_props) == before
        # Writes still stick (and register the sparse dict).
        edge = graph.out_edges(0, "knows")[0]
        edge.properties["w"] = 7
        assert graph.edge(edge.eid).properties["w"] == 7
        assert len(graph._e_props) == before + 1

    def test_stale_edge_facade_raises_not_aliases(self, graph):
        edge = graph.out_edges(0, "knows")[0]
        graph.remove_edge(edge.eid)
        with pytest.raises(GraphError):
            edge.label
        with pytest.raises(GraphError):
            edge.properties["anything"] = 1
