"""GraphStatistics: batch build, incremental maintenance, estimation.

The load-bearing property is *parity*: after any mutation sequence,
incrementally maintained statistics must equal a fresh batch build
over the final graph - otherwise cost-based plans drift as the graph
churns.  The estimation API is pinned down against hand-computable
fixtures.
"""

import random

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.statistics import GraphStatistics, PlanCache, PropertyStats


def snapshot_of(stats: GraphStatistics) -> dict:
    """Comparable dump of every counter (histograms included)."""
    return {
        "num_vertices": stats.num_vertices,
        "num_edges": stats.num_edges,
        "labels": dict(stats.label_counts),
        "edge_labels": dict(stats.edge_label_counts),
        "src": dict(stats._src),
        "dst": dict(stats._dst),
        "src_total": dict(stats._src_total),
        "dst_total": dict(stats._dst_total),
        "pairs": dict(stats._label_pairs),
        "triples": dict(stats._triples),
        "props": {
            key: (stat.count, stat.unhashable, dict(stat.hist))
            for key, stat in stats.props.items()
            if stat.count > 0
        },
    }


@pytest.fixture()
def graph():
    g = PropertyGraph()
    drugs = [
        g.add_vertex("Drug", {"name": f"d{i}", "brand": f"b{i % 2}"})
        for i in range(4)
    ]
    inds = [
        g.add_vertex("Indication", {"desc": f"x{i % 3}"}) for i in range(8)
    ]
    for i, ind in enumerate(inds):
        g.add_edge(drugs[i % 4], ind, "treat")
    g.add_vertex(["Drug", "Compound"], {"name": "dual"})
    return g


class TestBatchBuild:
    def test_cardinalities(self, graph):
        stats = graph.statistics()
        assert stats.num_vertices == 13
        assert stats.num_edges == 8
        assert stats.label_count("Drug") == 5
        assert stats.label_count("Indication") == 8
        assert stats.label_count("Nope") == 0
        assert stats.edge_label_counts == {"treat": 8}

    def test_degree_pairs(self, graph):
        stats = graph.statistics()
        assert stats._src[("treat", "Drug")] == 8
        assert stats._dst[("treat", "Indication")] == 8
        assert stats.fanout({"Drug"}, ("treat",), "out") == pytest.approx(
            8 / 5
        )
        assert stats.fanout(
            {"Indication"}, ("treat",), "in"
        ) == pytest.approx(1.0)
        # Untyped expansion falls back to the per-label totals.
        assert stats.fanout({"Drug"}, (), "out") == pytest.approx(8 / 5)

    def test_label_pairs(self, graph):
        stats = graph.statistics()
        assert stats._label_pairs == {("Compound", "Drug"): 1}
        assert stats.label_overlap("Compound", "Drug") == 1.0
        assert stats.label_overlap("Drug", "Compound") == pytest.approx(
            1 / 5
        )

    def test_histograms(self, graph):
        stats = graph.statistics()
        assert stats.eq_estimate("Drug", "brand", "b0") == 2.0
        assert stats.eq_estimate("Drug", "name", "d1") == 1.0
        assert stats.eq_estimate("Drug", "name", "zzz") == 0.0
        assert stats.eq_estimate("Drug", "nope", 1) == 0.0
        assert stats.props[("Indication", "desc")].ndv == 3

    def test_conditional_endpoint_fraction(self, graph):
        stats = graph.statistics()
        assert stats.cond_endpoint_fraction(
            ("treat",), "Drug", "Indication", "out"
        ) == 1.0
        assert stats.cond_endpoint_fraction(
            ("treat",), "Indication", "Drug", "in"
        ) == 1.0
        # No treat edges leave an Indication: the conditioning side is
        # empty, and the unconditional dst-fraction fallback (treat
        # edges ending at a Drug) is also zero.
        assert stats.cond_endpoint_fraction(
            ("treat",), "Indication", "Drug", "out"
        ) == 0.0

    def test_statistics_is_idempotent(self, graph):
        assert graph.statistics() is graph.statistics()
        assert graph.has_statistics


class TestIncrementalParity:
    def test_scripted_mutations(self, graph):
        stats = graph.statistics()
        drug = graph.add_vertex("Drug", {"name": "late"})
        ind = graph.add_vertex("Indication", {"desc": "x0"})
        eid = graph.add_edge(drug, ind, "treat")
        graph.set_property(drug, "name", "renamed")
        graph.set_property(drug, "brand", "b9")
        graph.remove_property(ind, "desc")
        graph.remove_edge(eid)
        graph.remove_vertex(drug)
        assert snapshot_of(stats) == snapshot_of(
            GraphStatistics.build(graph)
        )

    def test_remove_vertex_cascades_edges(self, graph):
        stats = graph.statistics()
        # Vertex 0 is a Drug with treat edges; cascading removal must
        # decrement edge stats with endpoint labels still available.
        graph.remove_vertex(0)
        assert snapshot_of(stats) == snapshot_of(
            GraphStatistics.build(graph)
        )

    def test_randomized_churn(self):
        rng = random.Random(7)
        g = PropertyGraph()
        g.statistics()  # maintain from the start
        vids = []
        eids = []
        for step in range(400):
            op = rng.random()
            if op < 0.45 or len(vids) < 2:
                labels = rng.sample(
                    ["A", "B", "C", "D"], k=rng.randint(1, 2)
                )
                props = {
                    "p": rng.randint(0, 5),
                    "q": rng.choice(["x", "y", None]),
                }
                props = {k: v for k, v in props.items() if v is not None}
                vids.append(g.add_vertex(labels, props))
            elif op < 0.75:
                src, dst = rng.choice(vids), rng.choice(vids)
                eids.append(
                    g.add_edge(src, dst, rng.choice(["e", "f"]))
                )
            elif op < 0.85 and vids:
                g.set_property(
                    rng.choice(vids), "p", rng.randint(0, 5)
                )
            elif op < 0.93 and eids:
                eid = eids.pop(rng.randrange(len(eids)))
                if eid in g._edges:
                    g.remove_edge(eid)
            elif vids:
                vid = vids.pop(rng.randrange(len(vids)))
                if vid in g._vertices:
                    g.remove_vertex(vid)
                eids = [e for e in eids if e in g._edges]
        assert snapshot_of(g._stats) == snapshot_of(
            GraphStatistics.build(g)
        )


class TestEpoch:
    def test_epoch_advances_after_enough_mutations(self):
        g = PropertyGraph()
        stats = g.statistics()
        assert stats.epoch == 0
        for _ in range(64):
            g.add_vertex("A")
        assert stats.epoch == 1

    def test_index_creation_bumps_epoch_immediately(self):
        g = PropertyGraph()
        g.add_vertex("A", {"p": 1})
        stats = g.statistics()
        before = stats.epoch
        g.create_property_index("A", "p")
        assert stats.epoch == before + 1
        # Re-creating an existing index is a no-op.
        g.create_property_index("A", "p")
        assert stats.epoch == before + 1


class TestPropertyStats:
    def test_unhashable_values_counted_in_aggregate(self):
        stat = PropertyStats()
        stat.add([1, 2])
        stat.add("x")
        assert stat.count == 2
        assert stat.unhashable == 1
        assert stat.eq_estimate([1, 2]) == 1.0
        stat.remove([1, 2])
        assert stat.unhashable == 0

    def test_truncated_tail_estimates_uniformly(self):
        stat = PropertyStats()
        stat.count = 20
        stat.hist = {"common": 10}
        stat.extra_ndv = 5
        stat.extra_count = 10
        assert stat.eq_estimate("common") == 10.0
        assert stat.eq_estimate("rare") == 2.0
        assert stat.ndv == 6
        stat.remove("rare")  # untracked: shrinks the tail
        assert stat.extra_count == 9


class TestPlanCache:
    def test_epoch_keys_and_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("q1", 0, "plan1")
        cache.put("q2", 0, "plan2")
        assert cache.get("q1", 0) == "plan1"
        assert cache.get("q1", 1) is None  # stale epoch misses
        cache.put("q3", 0, "plan3")  # evicts q2 (q1 was touched)
        assert cache.get("q2", 0) is None
        assert cache.get("q1", 0) == "plan1"
        assert cache.get("q3", 0) == "plan3"
        assert cache.hits == 3
        assert cache.misses == 2
