"""Tests for vertex/edge removal and index maintenance."""

import pytest

from repro.exceptions import GraphError
from repro.graphdb.graph import PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph()
    a = g.add_vertex("A", {"name": "a"})
    b = g.add_vertex("A", {"name": "b"})
    c = g.add_vertex("B", {"name": "c"})
    g.add_edge(a, b, "knows")
    g.add_edge(b, c, "knows")
    g.add_edge(a, c, "likes")
    return g


class TestRemoveEdge:
    def test_removes_from_adjacency(self, graph):
        eid = graph.out_edges(0, "knows")[0].eid
        graph.remove_edge(eid)
        assert graph.out_edges(0, "knows") == []
        assert graph.in_edges(1, "knows") == []
        assert graph.num_edges == 2

    def test_unknown_edge(self, graph):
        with pytest.raises(GraphError):
            graph.remove_edge(999)


class TestRemoveVertex:
    def test_cascades_edges(self, graph):
        graph.remove_vertex(1)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1  # only a-likes->c survives
        assert graph.out_edges(0, "knows") == []

    def test_label_index_updated(self, graph):
        graph.remove_vertex(0)
        assert graph.vertices_with_label("A") == [1]
        assert graph.label_count("A") == 1

    def test_property_index_updated(self, graph):
        graph.create_property_index("A", "name")
        graph.remove_vertex(0)
        assert graph.lookup_property("A", "name", "a") == []
        assert graph.lookup_property("A", "name", "b") == [1]

    def test_vertex_gone(self, graph):
        graph.remove_vertex(2)
        with pytest.raises(GraphError):
            graph.vertex(2)


class TestSetPropertyIndexMaintenance:
    def test_index_follows_value_change(self, graph):
        graph.create_property_index("A", "name")
        graph.set_property(0, "name", "renamed")
        assert graph.lookup_property("A", "name", "a") == []
        assert graph.lookup_property("A", "name", "renamed") == [0]

    def test_remove_property(self, graph):
        graph.create_property_index("A", "name")
        graph.remove_property(0, "name")
        assert graph.lookup_property("A", "name", "a") == []
        assert "name" not in graph.vertex(0).properties

    def test_remove_missing_property_noop(self, graph):
        graph.remove_property(0, "ghost")  # does not raise


class TestEmptyBucketCleanup:
    def test_deleted_label_disappears(self, graph):
        assert "B" in graph.labels()
        graph.remove_vertex(2)  # the only B vertex
        assert "B" not in graph.labels()
        assert graph.vertices_with_label("B") == []

    def test_label_survives_while_populated(self, graph):
        graph.remove_vertex(0)
        assert "A" in graph.labels()

    def test_removed_edge_label_disappears_from_adjacency(self, graph):
        eid = graph.out_edges(0, "likes")[0].eid
        graph.remove_edge(eid)
        assert graph.out_edges(0, "likes") == []
        assert not graph.has_edge_between(0, 2, "likes")

    def test_property_index_bucket_dropped(self, graph):
        graph.create_property_index("A", "name")
        graph.set_property(0, "name", "renamed")
        assert graph.lookup_property("A", "name", "a") == []
        assert graph.lookup_property("A", "name", "renamed") == [0]


class TestHasEdgeBetween:
    def test_directions(self, graph):
        assert graph.has_edge_between(0, 1, "knows", "out")
        assert not graph.has_edge_between(1, 0, "knows", "out")
        assert graph.has_edge_between(1, 0, "knows", "in")
        assert graph.has_edge_between(1, 0, "knows", "any")

    def test_label_filter(self, graph):
        assert graph.has_edge_between(0, 2, "likes")
        assert not graph.has_edge_between(0, 2, "knows")
        assert graph.has_edge_between(0, 2, None)

    def test_follows_removal(self, graph):
        eid = graph.out_edges(0, "knows")[0].eid
        graph.remove_edge(eid)
        assert not graph.has_edge_between(0, 1, "knows")

    def test_first_edge_between_returns_eid(self, graph):
        eid = graph.first_edge_between(0, 1, "knows")
        assert graph.edge(eid).label == "knows"
        assert graph.first_edge_between(2, 0, "knows") is None

    def test_multigraph_keeps_remaining_parallel_edge(self, graph):
        extra = graph.add_edge(0, 1, "knows")
        first = graph.first_edge_between(0, 1, "knows")
        graph.remove_edge(first)
        assert graph.first_edge_between(0, 1, "knows") == extra


class TestPlannerCartesian:
    def test_disconnected_patterns_cartesian(self, graph):
        from repro.graphdb.backends import NEO4J_LIKE
        from repro.graphdb.query.executor import Executor
        from repro.graphdb.session import GraphSession

        result = Executor(GraphSession(graph, NEO4J_LIKE)).run(
            "MATCH (x:A), (y:B) RETURN count(*)"
        )
        assert result.single_value() == 2  # 2 A-vertices x 1 B-vertex
