"""Graph-level transaction semantics: undo-log rollback.

The invariant under test: after ``rollback_transaction()`` the graph
is *exactly* the pre-transaction graph - vertices, edges, properties,
property indexes, id counters (so WAL recovery and the live graph
agree on future id assignment), and incrementally-maintained
statistics all match.
"""

import pytest

from repro.exceptions import TransactionError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.statistics import GraphStatistics
from repro.graphdb.storage import graph_state


def seed_graph() -> PropertyGraph:
    g = PropertyGraph("tx")
    drugs = [
        g.add_vertex("Drug", {"name": f"d{i}", "id": i})
        for i in range(6)
    ]
    conds = [
        g.add_vertex("Condition", {"cname": f"c{i}"}) for i in range(4)
    ]
    for i, d in enumerate(drugs):
        g.add_edge(d, conds[i % 4], "treats", {"w": i})
    g.create_property_index("Drug", "id")
    return g


def churn(g: PropertyGraph) -> None:
    """One of every mutation kind, deletes and cascades included."""
    v = g.add_vertex(("Drug", "Generic"), {"name": "new", "id": 99})
    g.add_edge(v, 6, "treats")
    g.set_property(0, "name", "renamed")
    g.set_property(0, "fresh", True)
    g.remove_property(1, "name")
    g.remove_edge(0)
    g.remove_vertex(7)  # cascades into remove_edge
    g.create_property_index("Condition", "cname")


def assert_stats_consistent(g: PropertyGraph) -> None:
    """Incremental statistics equal a from-scratch batch build."""
    live = g.statistics()
    fresh = GraphStatistics.build(g)
    assert live.num_vertices == fresh.num_vertices
    assert live.num_edges == fresh.num_edges
    assert live.label_counts == fresh.label_counts
    assert live.edge_label_counts == fresh.edge_label_counts
    for key, stat in fresh.props.items():
        assert live.props[key].count == stat.count, key
        assert live.props[key].hist == stat.hist, key


class TestRollback:
    def test_rollback_restores_exact_state(self):
        g = seed_graph()
        before = graph_state(g)
        g.begin_transaction()
        churn(g)
        g.rollback_transaction()
        assert graph_state(g) == before

    def test_rollback_restores_statistics(self):
        g = seed_graph()
        g.statistics()  # materialize before the tx so hooks run live
        g.begin_transaction()
        churn(g)
        g.rollback_transaction()
        assert_stats_consistent(g)

    def test_rollback_restores_property_indexes(self):
        g = seed_graph()
        g.begin_transaction()
        churn(g)
        g.rollback_transaction()
        assert g.lookup_property("Drug", "id", 0) == [0]
        assert g.lookup_property("Drug", "id", 99) == []
        assert not g.has_property_index("Condition", "cname")

    def test_rollback_reuses_ids(self):
        """Ids allocated in a rolled-back tx are reallocated - the
        live graph must agree with a WAL recovery that never saw the
        frame."""
        g = seed_graph()
        next_vid = g._next_vid
        next_eid = g._next_eid
        g.begin_transaction()
        g.add_vertex("Drug", {"id": 50})
        g.add_edge(0, 1, "treats")
        g.rollback_transaction()
        assert g.add_vertex("Drug", {"id": 51}) == next_vid
        assert g.add_edge(0, 1, "zz") == next_eid

    def test_rollback_of_interleaved_add_then_remove(self):
        g = seed_graph()
        before = graph_state(g)
        g.begin_transaction()
        v = g.add_vertex("Drug", {"id": 77})
        e = g.add_edge(v, 6, "treats")
        g.remove_edge(e)
        g.remove_vertex(v)
        g.rollback_transaction()
        assert graph_state(g) == before

    def test_rollback_restores_edge_properties(self):
        g = seed_graph()
        g.begin_transaction()
        g.remove_edge(2)
        g.rollback_transaction()
        assert g.edge(2).properties["w"] == 2

    def test_queries_after_rollback(self):
        """The plan cache and statistics epochs stay coherent: queries
        planned before, during, and after a rolled-back tx all see
        their own graph state."""
        from repro.graphdb.query.executor import Executor
        from repro.graphdb.session import GraphSession

        g = seed_graph()
        executor = Executor(GraphSession(g))
        q = "MATCH (d:Drug) RETURN count(*)"
        assert executor.run(q).single_value() == 6
        g.begin_transaction()
        g.add_vertex("Drug", {"id": 100})
        assert executor.run(q).single_value() == 7
        g.rollback_transaction()
        assert executor.run(q).single_value() == 6

    def test_commit_keeps_changes(self):
        g = seed_graph()
        g.begin_transaction()
        v = g.add_vertex("Drug", {"id": 88})
        g.commit_transaction()
        assert g.get_property(v, "id") == 88
        assert not g.in_transaction


class TestStateMachine:
    def test_no_nesting(self):
        g = seed_graph()
        g.begin_transaction()
        with pytest.raises(TransactionError):
            g.begin_transaction()
        g.rollback_transaction()

    def test_commit_without_begin(self):
        with pytest.raises(TransactionError):
            seed_graph().commit_transaction()

    def test_rollback_without_begin(self):
        with pytest.raises(TransactionError):
            seed_graph().rollback_transaction()

    def test_in_transaction_flag(self):
        g = seed_graph()
        assert not g.in_transaction
        g.begin_transaction()
        assert g.in_transaction
        g.commit_transaction()
        assert not g.in_transaction
