"""Tests for variable-length path patterns (path/reachability queries).

The paper's workloads include "path, reachability, and graph analytical
queries" (Section 5.1); these exercise the ``-[:T*m..n]->`` support.
"""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.parser import parse_query
from repro.graphdb.query.ast import query_text
from repro.graphdb.session import GraphSession


@pytest.fixture()
def chain():
    g = PropertyGraph()
    ids = [g.add_vertex("N", {"i": i}) for i in range(6)]
    for i in range(5):
        g.add_edge(ids[i], ids[i + 1], "next")
    return g


@pytest.fixture()
def diamond():
    #    1
    #  /   \
    # 0     3 - 4
    #  \   /
    #    2
    g = PropertyGraph()
    ids = [g.add_vertex("N", {"i": i}) for i in range(5)]
    g.add_edge(ids[0], ids[1], "e")
    g.add_edge(ids[0], ids[2], "e")
    g.add_edge(ids[1], ids[3], "e")
    g.add_edge(ids[2], ids[3], "e")
    g.add_edge(ids[3], ids[4], "e")
    return g


def run(graph, text):
    return Executor(GraphSession(graph, NEO4J_LIKE)).run(text)


class TestParsing:
    def test_range(self):
        q = parse_query("MATCH (a)-[:next*1..3]->(b) RETURN b")
        rel = q.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 3)
        assert rel.is_variable_length

    def test_exact(self):
        q = parse_query("MATCH (a)-[:next*2]->(b) RETURN b")
        rel = q.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (2, 2)

    def test_open_ended_capped(self):
        q = parse_query("MATCH (a)-[:next*]->(b) RETURN b")
        rel = q.patterns[0].rels[0]
        assert rel.min_hops == 1
        assert rel.max_hops == 8  # documented default cap

    def test_lower_only(self):
        q = parse_query("MATCH (a)-[:next*2..5]->(b) RETURN b")
        rel = q.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (2, 5)

    def test_invalid_range(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (a)-[:next*3..1]->(b) RETURN b")

    def test_plain_hop_unaffected(self):
        q = parse_query("MATCH (a)-[:next]->(b) RETURN b")
        assert not q.patterns[0].rels[0].is_variable_length

    def test_round_trip_text(self):
        q = parse_query("MATCH (a:N)-[:next*2..4]->(b:N) RETURN b")
        assert parse_query(query_text(q)) == q

    def test_float_literals_still_work(self):
        from repro.graphdb.query.parser import parse_expression
        from repro.graphdb.query.ast import Literal

        assert parse_expression("3.25") == Literal(3.25)


class TestExecution:
    def test_range_collects_all_depths(self, chain):
        result = run(
            chain,
            "MATCH (a:N {i: 0})-[:next*1..3]->(b:N) RETURN collect(b.i)",
        )
        assert sorted(result.single_value()) == [1, 2, 3]

    def test_exact_depth(self, chain):
        result = run(
            chain, "MATCH (a:N {i: 0})-[:next*3]->(b:N) RETURN b.i"
        )
        assert result.rows == [(3,)]

    def test_zero_hop_includes_start(self, chain):
        result = run(
            chain,
            "MATCH (a:N {i: 2})-[:next*0..1]->(b:N) RETURN collect(b.i)",
        )
        assert sorted(result.single_value()) == [2, 3]

    def test_reverse_direction(self, chain):
        result = run(
            chain,
            "MATCH (a:N {i: 5})<-[:next*1..2]-(b:N) RETURN collect(b.i)",
        )
        assert sorted(result.single_value()) == [3, 4]

    def test_reachability(self, chain):
        result = run(
            chain,
            "MATCH (a:N {i: 0})-[:next*]->(b:N {i: 5}) RETURN count(*)",
        )
        assert result.single_value() == 1
        result = run(
            chain,
            "MATCH (a:N {i: 3})-[:next*]->(b:N {i: 1}) RETURN count(*)",
        )
        assert result.single_value() == 0

    def test_paths_counted_per_path(self, diamond):
        # Two distinct 2-hop paths 0 -> 3 (through 1 and through 2).
        result = run(
            diamond,
            "MATCH (a:N {i: 0})-[:e*2]->(b:N {i: 3}) RETURN count(*)",
        )
        assert result.single_value() == 2

    def test_no_relationship_reuse(self):
        # A 2-cycle: paths may revisit vertices but not edges.
        g = PropertyGraph()
        a = g.add_vertex("N", {"i": 0})
        b = g.add_vertex("N", {"i": 1})
        g.add_edge(a, b, "e")
        g.add_edge(b, a, "e")
        result = run(
            g, "MATCH (x:N {i: 0})-[:e*1..4]->(y:N) RETURN collect(y.i)"
        )
        # 0->1 (1 hop), 0->1->0 (2 hops); the 3rd hop would reuse.
        assert sorted(result.single_value()) == [0, 1]

    def test_traversals_counted(self, chain):
        result = run(
            chain, "MATCH (a:N {i: 0})-[:next*1..5]->(b:N) RETURN count(b)"
        )
        assert result.metrics.edge_traversals >= 5

    def test_join_check_variable_length(self, diamond):
        # Cycle-closing variable-length hop between bound endpoints.
        result = run(
            diamond,
            "MATCH (a:N {i: 0})-[:e]->(m:N {i: 1}), "
            "(a)-[:e*2..3]->(b:N {i: 4})-[:e*0]->(b) "
            "RETURN count(*)",
        )
        assert result.single_value() >= 0  # executes without error

    def test_followed_by_plain_hop(self, chain):
        result = run(
            chain,
            "MATCH (a:N {i: 0})-[:next*1..2]->(m:N)-[:next]->(b:N) "
            "RETURN collect(b.i)",
        )
        assert sorted(result.single_value()) == [2, 3]
