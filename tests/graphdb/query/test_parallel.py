"""Morsel-parallel execution: equivalence, lifecycle, faults.

The parallel path's contract is the same strict one the vectorized
path carries - identical rows in identical order AND identical work
counters against the serial oracle - plus process-level obligations
the serial paths never had: a persistent worker pool that survives
crashed workers, shared-memory segments that never leak past
``shutdown_pool()``, and guardrails that cancel outstanding morsels.

The differential corpus (tests/graphdb/test_differential.py) covers
the query-surface breadth; this module pins the parallel-specific
machinery: morsel partitioning, pool lifecycle, failpoint-driven
worker crashes, the PageRank and statistics scatter-gather drivers,
and the ``parallelism=`` / ``REPRO_PARALLEL`` configuration surface.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ParallelExecutionError, QueryTimeoutError
from repro.graphdb import faults
from repro.graphdb.api import connect
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.morsel import Morsel, MorselSource
from repro.graphdb.query import parallel, vectorized
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.vectorized import ExecutionReport
from repro.graphdb.session import GraphSession
from repro.graphdb.statistics import GraphStatistics
from repro.graphdb.view import graph_pagerank
from tests.graphdb.diffquery import WORK_COUNTERS, norm_rows

AGG_QUERY = "MATCH (p:Patient) WHERE p.age > 20 RETURN sum(p.age) AS s"
ROW_QUERY = "MATCH (p:Patient) WHERE p.age > 40 RETURN p.age, p.weight"


def run(graph, text, params=None, parallelism=1, threshold=0,
        vectorize=True, guard=None):
    """One execution on a fresh session; returns (cols, rows, work,
    report)."""
    session = GraphSession(graph, NEO4J_LIKE)
    executor = Executor(
        session, vectorize=vectorize, parallelism=parallelism,
        parallel_threshold=threshold,
    )
    report = ExecutionReport()
    _, _, cols, rows = executor.stream(
        text, dict(params or {}), report=report, guard=guard
    )
    out = [tuple(r) for r in rows]
    metrics = session.reset_metrics().as_dict()
    return cols, out, {k: metrics[k] for k in WORK_COUNTERS}, report


# ----------------------------------------------------------------------
# Morsel partitioning
# ----------------------------------------------------------------------
class TestMorselSource:
    def test_segment_major_fixed_size_slices(self):
        source = MorselSource([10, 0, 5], morsel_rows=4)
        assert list(source) == [
            Morsel(0, 0, 4), Morsel(0, 4, 8), Morsel(0, 8, 10),
            Morsel(2, 0, 4), Morsel(2, 4, 5),
        ]
        assert len(source) == 5
        assert Morsel(0, 4, 8).rows == 4

    def test_rejects_nonpositive_morsel_rows(self):
        with pytest.raises(ValueError):
            MorselSource([1], morsel_rows=0)

    def test_from_tables_covers_raw_table_extents(self, diff_graph):
        source = MorselSource.from_tables(diff_graph, morsel_rows=64)
        covered = sum(m.rows for m in source)
        assert covered == sum(
            len(t.vids) for t in diff_graph._tables
        )


# ----------------------------------------------------------------------
# Query equivalence and mode reporting
# ----------------------------------------------------------------------
class TestParallelQueries:
    def test_parallel_mode_engages_and_matches_serial(self, diff_graph):
        t_cols, t_rows, t_work, _ = run(
            diff_graph, ROW_QUERY, vectorize=False
        )
        p_cols, p_rows, p_work, report = run(
            diff_graph, ROW_QUERY, parallelism=2
        )
        assert report.mode == "parallel"
        assert report.parallel_reason is None
        assert p_cols == t_cols
        assert norm_rows(p_rows) == norm_rows(t_rows)
        assert p_work == t_work

    def test_aggregate_matches_serial_exactly(self, diff_graph):
        _, t_rows, t_work, _ = run(diff_graph, AGG_QUERY, vectorize=False)
        _, p_rows, p_work, report = run(
            diff_graph, AGG_QUERY, parallelism=2
        )
        assert report.mode == "parallel"
        assert p_rows == t_rows
        assert p_work == t_work

    def test_multi_morsel_equivalence(self, diff_graph, monkeypatch):
        """Shrink the batch size so one query spans many morsels; rows
        and counters must still match both serial paths exactly."""
        monkeypatch.setattr(vectorized, "BATCH_ROWS", 16)
        for text in (ROW_QUERY, AGG_QUERY,
                     "MATCH (v:Visit) RETURN min(v.cost) AS m"):
            t_cols, t_rows, t_work, _ = run(
                diff_graph, text, vectorize=False
            )
            p_cols, p_rows, p_work, report = run(
                diff_graph, text, parallelism=2
            )
            assert report.mode == "parallel", report.parallel_reason
            assert report.batches > 1, text
            assert p_cols == t_cols
            assert norm_rows(p_rows) == norm_rows(t_rows)
            assert p_work == t_work, text

    def test_fallback_reasons_are_recorded(self, diff_graph):
        # Estimated rows below the threshold: stays serial vectorized.
        _, _, _, report = run(
            diff_graph, ROW_QUERY, parallelism=2, threshold=10 ** 9
        )
        assert report.mode == "vectorized"
        assert report.parallel_reason == "small-scan"
        # Expansions are not single-scan plans yet.
        _, _, _, report = run(
            diff_graph,
            "MATCH (p:Patient)-[:takes]->(d:Drug) RETURN count(*) AS n",
            parallelism=2,
        )
        assert report.mode == "vectorized"
        assert report.parallel_reason == "multi-step"
        # Tuple-only shapes decline with the vectorized reason.
        _, _, _, report = run(
            diff_graph,
            "MATCH (p:Patient) RETURN p.name, count(*) AS n",
            parallelism=2,
        )
        assert report.mode == "tuple"
        assert report.parallel_reason is not None

    def test_order_by_limit_vectorizes(self, diff_graph):
        """Satellite: ORDER BY + LIMIT drains fully into the shared
        top-k heap, so it no longer forces the tuple path."""
        text = (
            "MATCH (p:Patient) WHERE p.age > 10 "
            "RETURN p.age ORDER BY p.age DESC LIMIT 5"
        )
        t_cols, t_rows, t_work, _ = run(diff_graph, text, vectorize=False)
        v_cols, v_rows, v_work, v_report = run(diff_graph, text)
        p_cols, p_rows, p_work, p_report = run(
            diff_graph, text, parallelism=2
        )
        assert v_report.mode == "vectorized", v_report.reason
        assert p_report.mode == "parallel", p_report.parallel_reason
        assert v_rows == t_rows == p_rows
        assert v_work == t_work == p_work
        # LIMIT without ORDER BY still short-circuits: tuple only.
        _, _, _, report = run(
            diff_graph, "MATCH (p:Patient) RETURN p.age LIMIT 3"
        )
        assert report.mode == "tuple"


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_resolve_parallelism(self, monkeypatch):
        monkeypatch.delenv(parallel.PARALLEL_ENV, raising=False)
        assert parallel.resolve_parallelism() == 1
        assert parallel.resolve_parallelism(4) == 4
        assert parallel.resolve_parallelism(0) == 1
        monkeypatch.setenv(parallel.PARALLEL_ENV, "3")
        assert parallel.resolve_parallelism() == 3
        with pytest.raises(ParallelExecutionError):
            parallel.resolve_parallelism("eight")

    def test_resolve_threshold(self, monkeypatch):
        monkeypatch.delenv(parallel.THRESHOLD_ENV, raising=False)
        assert parallel.resolve_threshold() == parallel.DEFAULT_THRESHOLD
        assert parallel.resolve_threshold(0) == 0
        monkeypatch.setenv(parallel.THRESHOLD_ENV, "17")
        assert parallel.resolve_threshold() == 17
        with pytest.raises(ParallelExecutionError):
            parallel.resolve_threshold("lots")

    def test_env_threads_into_executor(self, diff_graph, monkeypatch):
        monkeypatch.setenv(parallel.PARALLEL_ENV, "2")
        monkeypatch.setenv(parallel.THRESHOLD_ENV, "0")
        session = GraphSession(diff_graph, NEO4J_LIKE)
        executor = Executor(session)
        report = ExecutionReport()
        _, _, _, rows = executor.stream(ROW_QUERY, {}, report=report)
        list(rows)
        assert report.mode == "parallel"

    def test_session_run_per_query_override(self, diff_graph):
        # parallelism=1 pins the session baseline so the test holds
        # even when REPRO_PARALLEL is set in the environment (the CI
        # matrix runs the whole suite under REPRO_PARALLEL=2).
        with connect(diff_graph, parallelism=1) as db:
            with db.session(parallel_threshold=0) as session:
                summary = session.run(ROW_QUERY).consume()
                assert summary.mode == "vectorized"
                summary = session.run(ROW_QUERY, parallelism=2).consume()
                assert summary.mode == "parallel"
                # The override is per query, not sticky.
                summary = session.run(ROW_QUERY).consume()
                assert summary.mode == "vectorized"

    def test_connect_parallelism_is_session_default(self, diff_graph):
        with connect(diff_graph, parallelism=2) as db:
            with db.session(parallel_threshold=0) as session:
                summary = session.run(ROW_QUERY).consume()
                assert summary.mode == "parallel"


# ----------------------------------------------------------------------
# Fault injection and guardrails
# ----------------------------------------------------------------------
class TestFaults:
    def test_worker_crash_fails_query_and_pool_recovers(self, diff_graph):
        with faults.REGISTRY.armed("parallel.worker", mode="crash"):
            with pytest.raises(ParallelExecutionError):
                run(diff_graph, ROW_QUERY, parallelism=2)
        # The pool respawns dead workers on the next job.
        _, _, _, report = run(diff_graph, ROW_QUERY, parallelism=2)
        assert report.mode == "parallel"

    def test_worker_error_fails_query_and_pool_survives(self, diff_graph):
        with faults.REGISTRY.armed("parallel.worker", mode="error"):
            with pytest.raises(ParallelExecutionError):
                run(diff_graph, AGG_QUERY, parallelism=2)
        _, p_rows, _, report = run(diff_graph, AGG_QUERY, parallelism=2)
        _, t_rows, _, _ = run(diff_graph, AGG_QUERY, vectorize=False)
        assert report.mode == "parallel"
        assert p_rows == t_rows

    def test_dispatch_failpoint_fires_on_coordinator(self, diff_graph):
        with faults.REGISTRY.armed("parallel.dispatch", mode="error"):
            with pytest.raises(OSError):
                run(diff_graph, ROW_QUERY, parallelism=2)

    def test_timeout_cancels_job_and_next_query_is_clean(self, diff_graph):
        from repro.graphdb.query.executor import ExecutionGuard

        guard = ExecutionGuard(timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            run(diff_graph, ROW_QUERY, parallelism=2, guard=guard)
        # Any stale in-flight results are discarded by task id; the
        # very next query on the same pool must be exact.
        _, p_rows, p_work, report = run(
            diff_graph, ROW_QUERY, parallelism=2
        )
        _, t_rows, t_work, _ = run(diff_graph, ROW_QUERY, vectorize=False)
        assert report.mode == "parallel"
        assert norm_rows(p_rows) == norm_rows(t_rows)
        assert p_work == t_work


# ----------------------------------------------------------------------
# Pool lifecycle and shared-memory hygiene
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_shutdown_unlinks_every_segment(self, diff_graph):
        _, _, _, report = run(diff_graph, ROW_QUERY, parallelism=2)
        assert report.mode == "parallel"
        assert parallel.live_segment_names()  # columns are exported
        parallel.shutdown_pool()
        assert parallel.live_segment_names() == frozenset()

    def test_pool_restarts_after_shutdown(self, diff_graph):
        parallel.shutdown_pool()
        _, _, _, report = run(diff_graph, ROW_QUERY, parallelism=2)
        assert report.mode == "parallel"

    def test_job_scoped_segments_are_dropped_per_query(self, diff_graph):
        run(diff_graph, ROW_QUERY, parallelism=2)
        before = parallel.live_segment_names()
        run(diff_graph, ROW_QUERY, parallelism=2)
        # Column exports are reused (same graph epoch); the per-job
        # candidate arrays from the first query are gone.
        assert parallel.live_segment_names() == before

    def test_closed_pool_refuses_work(self):
        pool = parallel.WorkerPool(2)
        pool.shutdown()
        with pytest.raises(ParallelExecutionError):
            pool.ensure_started()


# ----------------------------------------------------------------------
# PageRank and statistics drivers
# ----------------------------------------------------------------------
class TestParallelPageRank:
    def test_matches_serial_to_tolerance(self, diff_graph):
        serial = graph_pagerank(diff_graph)
        par = parallel_scores = parallel.parallel_pagerank(
            diff_graph, workers=2
        )
        assert set(par) == set(serial)
        worst = max(
            abs(parallel_scores[v] - serial[v]) for v in serial
        )
        assert worst < 1e-9, worst

    def test_single_worker_falls_back_to_serial(self, diff_graph):
        assert parallel.parallel_pagerank(
            diff_graph, workers=1
        ) == graph_pagerank(diff_graph)

    def test_empty_graph(self):
        from repro.graphdb.graph import PropertyGraph

        assert parallel.parallel_pagerank(
            PropertyGraph("empty"), workers=2
        ) == {}


def _norm_hist(hist):
    """NaN keys collapse to one sentinel: ``array('d')`` hands back a
    fresh float per read, so every NaN is its own Counter key and even
    two *serial* builds differ on NaN identity."""
    out = {}
    for key, count in hist.items():
        if isinstance(key, float) and math.isnan(key):
            key = "<NaN>"
        out[key] = out.get(key, 0) + count
    return out


class TestParallelStats:
    def assert_stats_equal(self, par, ser):
        assert par.num_vertices == ser.num_vertices
        assert par.label_counts == ser.label_counts
        assert par._label_pairs == ser._label_pairs
        assert par.edge_label_counts == ser.edge_label_counts
        assert par._src == ser._src
        assert par._dst == ser._dst
        assert par._triples == ser._triples
        assert par._src_total == ser._src_total
        assert par._dst_total == ser._dst_total
        assert set(par.props) == set(ser.props)
        for key, ps in ser.props.items():
            pp = par.props[key]
            assert pp.count == ps.count, key
            assert pp.unhashable == ps.unhashable, key
            assert _norm_hist(pp.hist) == _norm_hist(ps.hist), key

    def test_build_matches_serial(self, diff_graph):
        self.assert_stats_equal(
            parallel.parallel_build_stats(diff_graph, workers=2),
            GraphStatistics.build(diff_graph),
        )

    def test_build_classmethod_delegates(self, diff_graph):
        self.assert_stats_equal(
            GraphStatistics.build(diff_graph, parallelism=2),
            GraphStatistics.build(diff_graph),
        )

    def test_single_worker_falls_back(self, diff_graph):
        ser = GraphStatistics.build(diff_graph)
        par = parallel.parallel_build_stats(diff_graph, workers=1)
        self.assert_stats_equal(par, ser)
