"""Tests for aggregate/scalar function implementations."""

import pytest

from repro.exceptions import QueryError
from repro.graphdb.query.functions import (
    apply_aggregate,
    apply_scalar,
    compare,
)


class TestAggregates:
    def test_count_skips_nulls(self):
        assert apply_aggregate("count", [1, None, 2]) == 2

    def test_collect_skips_nulls(self):
        assert apply_aggregate("collect", ["a", None, "b"]) == ["a", "b"]

    def test_sum_empty_is_zero(self):
        assert apply_aggregate("sum", []) == 0

    def test_avg_empty_is_null(self):
        assert apply_aggregate("avg", []) is None

    def test_min_max(self):
        assert apply_aggregate("min", [3, 1, 2]) == 1
        assert apply_aggregate("max", [3, 1, 2]) == 3

    def test_distinct(self):
        assert apply_aggregate("count", [1, 1, 2], distinct=True) == 2

    def test_distinct_handles_lists(self):
        values = [[1, 2], [1, 2], [3]]
        assert apply_aggregate("count", values, distinct=True) == 2

    def test_flatten_count_is_sum_of_sizes(self):
        values = [[1, 2], [3], None, [4, 5, 6]]
        assert apply_aggregate("count", values, flatten=True) == 6

    def test_flatten_collect(self):
        values = [["a", "b"], ["c"]]
        assert apply_aggregate("collect", values, flatten=True) == [
            "a", "b", "c",
        ]

    def test_flatten_mixes_scalars(self):
        values = [[1, 2], 3, None]
        assert apply_aggregate("sum", values, flatten=True) == 6

    def test_flatten_then_distinct(self):
        values = [[1, 1], [1, 2]]
        assert apply_aggregate(
            "collect", values, distinct=True, flatten=True
        ) == [1, 2]

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            apply_aggregate("median", [1])


class TestScalars:
    def test_size(self):
        assert apply_scalar("size", [[1, 2, 3]]) == 3
        assert apply_scalar("size", ["abc"]) == 3
        assert apply_scalar("size", [None]) is None

    def test_size_of_scalar_rejected(self):
        with pytest.raises(QueryError):
            apply_scalar("size", [42])

    def test_size_requires_arg(self):
        with pytest.raises(QueryError):
            apply_scalar("size", [])

    def test_head(self):
        assert apply_scalar("head", [[7, 8]]) == 7
        assert apply_scalar("head", [[]]) is None
        assert apply_scalar("head", ["x"]) == "x"

    def test_coalesce(self):
        assert apply_scalar("coalesce", [None, None, 3]) == 3
        assert apply_scalar("coalesce", [None]) is None

    def test_unknown_scalar(self):
        with pytest.raises(QueryError):
            apply_scalar("upper", ["x"])


class TestCompare:
    @pytest.mark.parametrize("op,lhs,rhs,expected", [
        ("=", 1, 1, True),
        ("<>", 1, 2, True),
        ("<", 1, 2, True),
        ("<=", 2, 2, True),
        (">", 3, 2, True),
        (">=", 2, 3, False),
        ("contains", "hello", "ell", True),
        ("contains", "hello", "zz", False),
        ("in", 2, [1, 2], True),
        ("in", 5, [1, 2], False),
    ])
    def test_operators(self, op, lhs, rhs, expected):
        assert compare(op, lhs, rhs) is expected

    def test_null_is_false(self):
        assert compare("=", None, 1) is False
        assert compare("<", None, 1) is False
        assert compare("in", None, [1]) is False

    def test_type_mismatch_is_false(self):
        assert compare("<", "a", 1) is False

    def test_contains_non_string_is_false(self):
        assert compare("contains", 5, "x") is False

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            compare("in", 1, 2)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            compare("~=", 1, 1)
