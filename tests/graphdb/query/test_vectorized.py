"""The vectorized batch path: mask kernels, fallback decisions, and
the execution report surface.

The differential suite (``tests/graphdb/test_differential.py``) checks
vectorized-vs-tuple agreement; this file pins the batch path against
an *independent* oracle - plain Python comprehensions over
:func:`repro.graphdb.query.functions.compare` - so a bug shared by
both pipelines cannot hide.  It also pins the fallback decision table
(which query/column shapes must refuse the batch path, and the reason
string each reports) and the aggregation kernels' exactness rules.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import observe
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query import vectorized
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.functions import compare
from repro.graphdb.query.parser import parse_query
from repro.graphdb.query.planner import build_plan
from repro.graphdb.session import GraphSession

OPS = ("=", "<>", "<", "<=", ">", ">=")


def column_graph(values, prop="x", freeze=False):
    """One label ``L``, one column; ``None`` means *absent*."""
    g = PropertyGraph("k")
    for v in values:
        g.add_vertex("L", {} if v is None else {prop: v})
    if freeze:
        g.freeze()
    return g


def run_vectorized(graph, text, params=None):
    """Rows + report from the default (vectorize=True) executor."""
    session = GraphSession(graph, NEO4J_LIKE)
    executor = Executor(session)
    report = vectorized.ExecutionReport()
    _, _, columns, rows = executor.stream(
        text, dict(params or {}), report=report
    )
    return [tuple(r) for r in rows], report


def norm(value):
    if isinstance(value, float) and math.isnan(value):
        return "<NaN>"
    return value


class TestMaskKernelsVsOracle:
    """Kernel output == a list comprehension over ``compare()``."""

    def check(self, values, op, const, expect_mode=None):
        graph = column_graph(values)
        rows, report = run_vectorized(
            graph, f"MATCH (n:L) WHERE n.x {op} $c RETURN n.x", {"c": const}
        )
        expected = [
            (v,) for v in values if v is not None and compare(op, v, const)
        ]
        assert [tuple(norm(v) for v in r) for r in rows] == [
            tuple(norm(v) for v in r) for r in expected
        ], (values, op, const, report.reason)
        if expect_mode is not None:
            assert report.mode == expect_mode, report.reason
        return report

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-(2**62), 2**62)),
            max_size=30,
        ),
        op=st.sampled_from(OPS),
        const=st.integers(-(2**70), 2**70),
    )
    def test_int64_kernels(self, values, op, const):
        self.check(values, op, const)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.floats(allow_nan=True, allow_infinity=True, width=64),
            ),
            max_size=30,
        ),
        op=st.sampled_from(OPS),
        const=st.one_of(
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            st.integers(-(2**60), 2**60),
        ),
    )
    def test_float64_kernels_with_nan(self, values, op, const):
        self.check(values, op, const)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.integers(-100, 100),
                st.text(alphabet="abz", max_size=3),
            ),
            max_size=20,
        ),
        const=st.one_of(st.integers(-100, 100), st.text("abz", max_size=3)),
    )
    def test_promoted_object_columns_fall_back_correctly(self, values, const):
        """A column that turns object mid-table must refuse the kernel
        *and* still produce oracle-identical rows via the fallback."""
        present = [v for v in values if v is not None]
        has_int = any(isinstance(v, int) for v in present)
        has_str = any(isinstance(v, str) for v in present)
        report = self.check(values, "=", const)
        if has_int and has_str:
            assert report.mode == "tuple"
            assert report.reason in ("object-column", "mixed-kind")

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-50, 50)), max_size=25
        ),
        negate=st.booleans(),
    )
    def test_null_checks(self, values, negate):
        graph = column_graph(values)
        check = "IS NOT NULL" if negate else "IS NULL"
        rows, report = run_vectorized(
            graph, f"MATCH (n:L) WHERE n.x {check} RETURN count(*) AS c"
        )
        expected = sum(
            1 for v in values if (v is not None) == negate
        )
        assert rows == [(expected,)], report.reason

    def test_all_null_column(self):
        """Kernel over a never-stored key: everything reads as null."""
        graph = column_graph([None] * 12)
        for op in OPS:
            rows, report = run_vectorized(
                graph, f"MATCH (n:L) WHERE n.x {op} 5 RETURN n.x"
            )
            assert rows == []
            assert report.mode == "vectorized", report.reason
        rows, _ = run_vectorized(
            graph, "MATCH (n:L) WHERE n.x IS NULL RETURN count(*) AS c"
        )
        assert rows == [(12,)]

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-20, 20)),
            min_size=1,
            max_size=25,
        ),
        a=st.integers(-20, 20),
        b=st.integers(-20, 20),
        joiner=st.sampled_from(["AND", "OR"]),
        negate=st.booleans(),
    )
    def test_boolean_folding(self, values, a, b, joiner, negate):
        """AND/OR/NOT trees fold progressively; the oracle evaluates
        the same tree row-at-a-time."""
        graph = column_graph(values)
        pred = f"n.x > {a} {joiner} n.x <= {b}"
        if negate:
            pred = f"NOT ({pred})"
        rows, report = run_vectorized(
            graph, f"MATCH (n:L) WHERE {pred} RETURN n.x"
        )

        def oracle(v):
            # Two-valued logic: a null comparison is *false* (not
            # unknown), so NOT can resurrect null rows.
            hit = (
                (compare(">", v, a) or compare("<=", v, b))
                if joiner == "OR"
                else (compare(">", v, a) and compare("<=", v, b))
            )
            return not hit if negate else hit

        assert rows == [(v,) for v in values if oracle(v)], report.reason
        assert report.mode == "vectorized", report.reason


class TestFallbackDecisions:
    """The documented fallback matrix, by reason string."""

    @pytest.fixture()
    def graph(self):
        g = PropertyGraph("fb")
        for i in range(10):
            g.add_vertex("P", {"x": i, "flag": i % 2 == 0})
        return g

    def expect(self, graph, text, reason, params=None):
        rows, report = run_vectorized(graph, text, params)
        assert report.mode == "tuple", text
        assert report.reason == reason, (text, report.reason)
        return rows

    def test_limit_is_tuple_only(self, graph):
        self.expect(graph, "MATCH (n:P) RETURN n.x LIMIT 3", "limit")

    def test_grouped_aggregation_is_tuple_only(self, graph):
        self.expect(
            graph,
            "MATCH (n:P) RETURN n.x, count(*) AS c",
            "aggregate-shape",
        )

    def test_collect_is_tuple_only(self, graph):
        self.expect(
            graph, "MATCH (n:P) RETURN collect(n.x) AS c", "aggregate-shape"
        )

    def test_bool_column_is_object(self, graph):
        self.expect(
            graph,
            "MATCH (n:P) WHERE n.flag = true RETURN n.x",
            "object-column",
        )

    def test_bool_constant_refuses_numeric_kernel(self, graph):
        # 1 == True in Python, so the tuple semantics are subtle
        # enough that the kernel refuses rather than approximates.
        rows = self.expect(
            graph, "MATCH (n:P) WHERE n.x = true RETURN n.x", "bool-value"
        )
        assert rows == [(1,)]

    def test_expand_needs_frozen_view(self):
        g = PropertyGraph()
        a = g.add_vertex("P", {"x": 1})
        b = g.add_vertex("Q", {"y": 2})
        g.add_edge(a, b, "r")
        assert g.frozen_view is None
        self.expect(g, "MATCH (a:P)-[:r]->(b:Q) RETURN b.y", "no-frozen-view")
        # Frozen, the same query vectorizes.
        g.freeze()
        _, report = run_vectorized(g, "MATCH (a:P)-[:r]->(b:Q) RETURN b.y")
        assert report.mode == "vectorized", report.reason

    def test_disabled_executor_reports_disabled(self, graph):
        session = GraphSession(graph, NEO4J_LIKE)
        executor = Executor(session, vectorize=False)
        report = vectorized.ExecutionReport()
        _, _, _, rows = executor.stream(
            "MATCH (n:P) RETURN n.x", {}, report=report
        )
        list(rows)
        assert report.mode == "tuple"
        assert report.reason == "disabled"


class TestStaticModeFidelity:
    """Plain EXPLAIN's mode prediction matches what actually runs,
    for every parameter-free query shape we emit."""

    CASES = [
        "MATCH (n:P) RETURN n.x",
        "MATCH (n:P) WHERE n.x > 3 RETURN n.x",
        "MATCH (n:P) RETURN sum(n.x) AS s",
        "MATCH (n:P) RETURN n.x LIMIT 2",
        "MATCH (n:P) RETURN n.x, count(*) AS c",
        "MATCH (n:P) WHERE n.name = 'a' RETURN n.x",
        "MATCH (n:P) WHERE n.flag = true RETURN n.x",
        "MATCH (a:P)-[:r]->(b:P) RETURN count(*) AS c",
    ]

    def test_prediction_matches_runtime(self):
        g = PropertyGraph("sm")
        vids = [
            g.add_vertex(
                "P", {"x": i, "name": f"n{i}", "flag": bool(i % 2)}
            )
            for i in range(8)
        ]
        for i in range(7):
            g.add_edge(vids[i], vids[i + 1], "r")
        g.freeze()
        for text in self.CASES:
            query = parse_query(text)
            plan = build_plan(query, g)
            predicted = vectorized.static_mode(query, plan, g)
            _, report = run_vectorized(g, text)
            assert predicted == report.mode, (
                text, predicted, report.mode, report.reason
            )


class TestAggregationExactness:
    def test_int_sum_beyond_float_precision(self):
        """Sums that float64 would round must come out exact."""
        values = [2**60, 2**60 - 1, 3, -7]
        rows, report = run_vectorized(
            column_graph(values), "MATCH (n:L) RETURN sum(n.x) AS s"
        )
        assert rows == [(sum(values),)]
        assert isinstance(rows[0][0], int)
        assert report.mode == "vectorized", report.reason

    def test_float_sum_matches_sequential_fold(self):
        values = [0.1] * 10 + [1e16, -1e16]
        rows, report = run_vectorized(
            column_graph(values), "MATCH (n:L) RETURN sum(n.x) AS s"
        )
        acc = 0
        for v in values:
            acc += v
        assert rows == [(acc,)]
        assert report.mode == "vectorized", report.reason

    def test_nan_poisons_min_max_like_python(self):
        values = [3.0, float("nan"), 1.0]
        for func in ("min", "max"):
            rows, report = run_vectorized(
                column_graph(values),
                f"MATCH (n:L) RETURN {func}(n.x) AS m",
            )
            oracle = min(values) if func == "min" else max(values)
            assert (
                [tuple(norm(v) for v in r) for r in rows]
                == [(norm(oracle),)]
            )
            assert report.mode == "vectorized", report.reason

    def test_zero_match_aggregate_row(self):
        graph = column_graph([1, 2, 3])
        rows, report = run_vectorized(
            graph,
            "MATCH (n:L) WHERE n.x > 99 "
            "RETURN count(*) AS c, sum(n.x) AS s, min(n.x) AS lo, "
            "avg(n.x) AS a",
        )
        assert rows == [(0, 0, None, None)]
        assert report.mode == "vectorized", report.reason


class TestObservability:
    def test_query_path_counter_increments(self):
        graph = column_graph([1, 2, 3])
        counter = observe.REGISTRY.labeled_counter(
            "repro_query_path_total", "path"
        )
        before_v = counter.value("vectorized")
        before_t = counter.value("tuple")
        run_vectorized(graph, "MATCH (n:L) RETURN n.x")
        run_vectorized(graph, "MATCH (n:L) RETURN n.x LIMIT 1")
        assert counter.value("vectorized") == before_v + 1
        assert counter.value("tuple") == before_t + 1

    def test_report_counts_batches(self):
        graph = column_graph(range(vectorized.BATCH_ROWS + 10))
        rows, report = run_vectorized(graph, "MATCH (n:L) RETURN n.x")
        assert len(rows) == vectorized.BATCH_ROWS + 10
        assert report.batches == 2
