"""Tests for the query tokenizer."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.graphdb.query.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("MATCH match Match")[:-1]
        # value carries the canonical lower-cased keyword; text keeps
        # the original spelling (keywords can double as plain names).
        assert [t.value for t in tokens] == ["match"] * 3
        assert [t.text for t in tokens] == ["MATCH", "match", "Match"]

    def test_identifiers(self):
        assert kinds("Drug drug_1 _x") == [
            ("IDENT", "Drug"), ("IDENT", "drug_1"), ("IDENT", "_x"),
        ]

    def test_backtick_names(self):
        tokens = tokenize("`Indication.desc`")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "Indication.desc"

    def test_unterminated_backtick(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("`oops")

    def test_string_literals(self):
        tokens = tokenize("'hello' \"world\"")
        assert [t.value for t in tokens[:-1]] == ["hello", "world"]

    def test_string_escapes(self):
        tokens = tokenize(r"'it\'s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42
        assert tokens[1].value == pytest.approx(3.14)

    def test_two_char_operators(self):
        assert kinds("<> <= >= -> <-") == [
            ("OP", "<>"), ("OP", "<="), ("OP", ">="),
            ("OP", "->"), ("OP", "<-"),
        ]

    def test_single_char_operators(self):
        assert [k for k, _ in kinds("()[]{}:,.=")] == ["OP"] * 10

    def test_line_comment(self):
        assert kinds("a // comment\n b") == [
            ("IDENT", "a"), ("IDENT", "b"),
        ]

    def test_unknown_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a @ b")

    def test_eof_token(self):
        tokens = tokenize("a")
        assert tokens[-1].kind == "EOF"

    def test_position_recorded(self):
        tokens = tokenize("  abc")
        assert tokens[0].position == 2
