"""Tests for query planning and execution."""

import pytest

from repro.exceptions import QueryError
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor, VertexBinding
from repro.graphdb.query.planner import ScanStep, build_plan
from repro.graphdb.query.parser import parse_query
from repro.graphdb.session import GraphSession


@pytest.fixture()
def graph():
    g = PropertyGraph()
    drugs = [
        g.add_vertex("Drug", {"name": f"d{i}", "brand": f"b{i % 2}"})
        for i in range(4)
    ]
    inds = [
        g.add_vertex("Indication", {"desc": f"x{i % 3}", "sev": i})
        for i in range(8)
    ]
    for i, ind in enumerate(inds):
        g.add_edge(drugs[i % 4], ind, "treat")
    g.add_edge(drugs[0], drugs[1], "similarTo")
    return g


@pytest.fixture()
def ex(graph):
    return Executor(GraphSession(graph, NEO4J_LIKE))


class TestPlanner:
    def test_starts_at_smallest_label(self, graph):
        q = parse_query(
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d"
        )
        plan = build_plan(q, graph)
        assert isinstance(plan.steps[0], ScanStep)
        assert plan.steps[0].var == "d"  # 4 drugs < 8 indications

    def test_prefers_property_index(self, graph):
        graph.create_property_index("Indication", "desc")
        q = parse_query(
            "MATCH (d:Drug)-[:treat]->(i:Indication {desc: 'x0'}) "
            "RETURN d"
        )
        plan = build_plan(q, graph)
        assert plan.steps[0].var == "i"

    def test_shared_variable_merges_constraints(self, graph):
        q = parse_query(
            "MATCH (a:Drug)-[:treat]->(i), (a {name: 'd0'}) RETURN a"
        )
        plan = build_plan(q, graph)
        assert plan.node_specs["a"].props == {"name": "d0"}
        assert plan.node_specs["a"].labels == {"Drug"}

    def test_conflicting_filters_rejected(self, graph):
        q = parse_query(
            "MATCH (a {name: 'x'}), (a {name: 'y'}) RETURN a"
        )
        with pytest.raises(QueryError):
            build_plan(q, graph)

    def test_cycle_produces_join_check(self, graph):
        from repro.graphdb.query.planner import JoinCheckStep

        q = parse_query(
            "MATCH (a:Drug)-[:treat]->(i:Indication)<-[:treat]-(a) "
            "RETURN a"
        )
        plan = build_plan(q, graph)
        assert any(isinstance(s, JoinCheckStep) for s in plan.steps)


class TestBasicMatching:
    def test_label_scan(self, ex):
        result = ex.run("MATCH (d:Drug) RETURN d.name ORDER BY d.name")
        assert result.column("d.name") == ["d0", "d1", "d2", "d3"]

    def test_hop(self, ex):
        result = ex.run(
            "MATCH (d:Drug {name: 'd0'})-[:treat]->(i:Indication) "
            "RETURN i.sev ORDER BY i.sev"
        )
        assert result.column("i.sev") == [0, 4]

    def test_reverse_hop(self, ex):
        result = ex.run(
            "MATCH (i:Indication {sev: 3})<-[:treat]-(d:Drug) "
            "RETURN d.name"
        )
        assert result.rows == [("d3",)]

    def test_two_hops(self, ex):
        result = ex.run(
            "MATCH (a:Drug)-[:similarTo]->(b:Drug)-[:treat]->"
            "(i:Indication) RETURN a.name, count(i)"
        )
        assert result.rows == [("d0", 2)]

    def test_undirected_hop(self, ex):
        result = ex.run(
            "MATCH (a:Drug {name: 'd1'})-[:similarTo]-(b:Drug) "
            "RETURN b.name"
        )
        assert result.rows == [("d0",)]

    def test_no_match(self, ex):
        result = ex.run("MATCH (d:Drug {name: 'zzz'}) RETURN d")
        assert result.rows == []

    def test_vertex_binding_returned(self, ex):
        result = ex.run("MATCH (d:Drug {name: 'd0'}) RETURN d")
        assert result.rows == [(VertexBinding(0),)]

    def test_edge_property(self, graph):
        g = graph
        src = g.add_vertex("Drug", {"name": "dx"})
        dst = g.add_vertex("Indication", {"desc": "y"})
        g.add_edge(src, dst, "treat", {"since": 2020})
        ex = Executor(GraphSession(g, NEO4J_LIKE))
        result = ex.run(
            "MATCH (d:Drug {name: 'dx'})-[t:treat]->(i) RETURN t.since"
        )
        assert result.rows == [(2020,)]


class TestWhere:
    def test_comparison(self, ex):
        result = ex.run(
            "MATCH (i:Indication) WHERE i.sev > 5 RETURN count(*)"
        )
        assert result.single_value() == 2

    def test_and_or(self, ex):
        result = ex.run(
            "MATCH (i:Indication) WHERE i.sev < 2 OR i.sev >= 6 "
            "RETURN count(*)"
        )
        assert result.single_value() == 4

    def test_contains(self, ex):
        result = ex.run(
            "MATCH (d:Drug) WHERE d.name CONTAINS '0' RETURN count(*)"
        )
        assert result.single_value() == 1

    def test_in(self, ex):
        result = ex.run(
            "MATCH (d:Drug) WHERE d.name IN ['d0', 'd2'] RETURN count(*)"
        )
        assert result.single_value() == 2

    def test_null_comparison_is_false(self, ex):
        result = ex.run(
            "MATCH (d:Drug) WHERE d.missing = 1 RETURN count(*)"
        )
        assert result.single_value() == 0

    def test_is_null_checks(self, ex):
        result = ex.run(
            "MATCH (d:Drug) WHERE d.missing IS NULL RETURN count(*)"
        )
        assert result.single_value() == 4
        result = ex.run(
            "MATCH (d:Drug) WHERE d.name IS NOT NULL RETURN count(*)"
        )
        assert result.single_value() == 4


class TestAggregation:
    def test_global_count(self, ex):
        result = ex.run("MATCH (i:Indication) RETURN count(i)")
        assert result.single_value() == 8

    def test_grouped_count(self, ex):
        result = ex.run(
            "MATCH (d:Drug)-[:treat]->(i) "
            "RETURN d.brand, count(i) AS n ORDER BY d.brand"
        )
        assert result.rows == [("b0", 4), ("b1", 4)]

    def test_collect(self, ex):
        result = ex.run(
            "MATCH (d:Drug {name: 'd1'})-[:treat]->(i) "
            "RETURN collect(i.sev)"
        )
        assert sorted(result.single_value()) == [1, 5]

    def test_collect_distinct(self, ex):
        result = ex.run(
            "MATCH (i:Indication) RETURN collect(DISTINCT i.desc)"
        )
        assert sorted(result.single_value()) == ["x0", "x1", "x2"]

    def test_sum_avg_min_max(self, ex):
        result = ex.run(
            "MATCH (i:Indication) "
            "RETURN sum(i.sev), avg(i.sev), min(i.sev), max(i.sev)"
        )
        assert result.rows == [(28, 3.5, 0, 7)]

    def test_size_of_collect(self, ex):
        result = ex.run(
            "MATCH (d:Drug)-[:treat]->(i) RETURN size(collect(i.sev))"
        )
        assert result.single_value() == 8

    def test_count_star_zero_matches(self, ex):
        result = ex.run(
            "MATCH (d:Drug {name: 'none'}) RETURN count(*)"
        )
        assert result.single_value() == 0

    def test_aggregates_skip_nulls(self, ex):
        result = ex.run("MATCH (d:Drug) RETURN count(d.missing)")
        assert result.single_value() == 0


class TestProjectionModifiers:
    def test_distinct_rows(self, ex):
        result = ex.run("MATCH (d:Drug) RETURN DISTINCT d.brand")
        assert sorted(result.rows) == [("b0",), ("b1",)]

    def test_order_by_desc(self, ex):
        result = ex.run(
            "MATCH (i:Indication) RETURN i.sev ORDER BY i.sev DESC LIMIT 3"
        )
        assert result.column("i.sev") == [7, 6, 5]

    def test_order_by_alias(self, ex):
        result = ex.run(
            "MATCH (i:Indication) RETURN i.sev AS s ORDER BY s LIMIT 2"
        )
        assert result.column("s") == [0, 1]

    def test_order_by_unreturned_rejected(self, ex):
        with pytest.raises(QueryError):
            ex.run("MATCH (i:Indication) RETURN i.sev ORDER BY i.desc")

    def test_limit(self, ex):
        result = ex.run("MATCH (i:Indication) RETURN i LIMIT 3")
        assert len(result.rows) == 3

    def test_scalar_size_of_list_property(self, graph):
        vid = graph.add_vertex("Drug", {"name": "dl", "vals": [1, 2, 3]})
        ex = Executor(GraphSession(graph, NEO4J_LIKE))
        result = ex.run(
            "MATCH (d:Drug {name: 'dl'}) RETURN size(d.vals)"
        )
        assert result.single_value() == 3

    def test_head_and_coalesce(self, graph):
        graph.add_vertex("Drug", {"name": "dh", "vals": [9, 8]})
        ex = Executor(GraphSession(graph, NEO4J_LIKE))
        result = ex.run(
            "MATCH (d:Drug {name: 'dh'}) "
            "RETURN head(d.vals), coalesce(d.missing, d.name)"
        )
        assert result.rows == [(9, "dh")]


class TestMetricsAndErrors:
    def test_metrics_populated(self, ex):
        result = ex.run("MATCH (d:Drug)-[:treat]->(i) RETURN count(*)")
        assert result.metrics.edge_traversals > 0
        assert result.metrics.queries == 1
        assert result.latency_ms > 0

    def test_unbound_variable(self, ex):
        with pytest.raises(QueryError):
            ex.run("MATCH (d:Drug) RETURN q.name")

    def test_single_value_requires_one(self, ex):
        result = ex.run("MATCH (d:Drug) RETURN d.name")
        with pytest.raises(QueryError):
            result.single_value()

    def test_unknown_column(self, ex):
        result = ex.run("MATCH (d:Drug) RETURN d.name")
        with pytest.raises(QueryError):
            result.column("nope")

    def test_aggregate_in_where_rejected(self, ex):
        with pytest.raises(QueryError):
            ex.run("MATCH (d:Drug) WHERE count(d) > 1 RETURN d")
