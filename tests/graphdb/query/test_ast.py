"""Tests for AST utilities (walk, substitution, rendering)."""

from repro.graphdb.query.ast import (
    Comparison,
    FuncCall,
    Literal,
    PropertyRef,
    Variable,
    contains_aggregate,
    expr_text,
    query_text,
    substitute_variable,
    variables_used,
    walk,
)
from repro.graphdb.query.parser import parse_expression, parse_query


class TestWalk:
    def test_walks_all_nodes(self):
        expr = parse_expression("size(collect(a.x)) > b.y AND c.z = 1")
        kinds = [type(n).__name__ for n in walk(expr)]
        assert "FuncCall" in kinds
        assert "PropertyRef" in kinds
        assert "Comparison" in kinds

    def test_contains_aggregate(self):
        assert contains_aggregate(parse_expression("count(a)"))
        assert contains_aggregate(parse_expression("size(collect(a.x))"))
        assert not contains_aggregate(parse_expression("size(a.x)"))
        assert not contains_aggregate(parse_expression("a.x = 1"))

    def test_variables_used(self):
        expr = parse_expression("a.x = 1 AND size(collect(b.y)) > 0")
        assert variables_used(expr) == {"a", "b"}


class TestSubstitution:
    def test_renames_everywhere(self):
        expr = parse_expression("a.x = 1 AND count(a) > size(a.y)")
        renamed = substitute_variable(expr, "a", "z")
        assert variables_used(renamed) == {"z"}

    def test_leaves_other_vars(self):
        expr = parse_expression("a.x = b.y")
        renamed = substitute_variable(expr, "a", "z")
        assert renamed == Comparison(
            PropertyRef("z", "x"), "=", PropertyRef("b", "y")
        )

    def test_bare_variable(self):
        assert substitute_variable(Variable("a"), "a", "b") == Variable("b")

    def test_literal_untouched(self):
        assert substitute_variable(Literal(5), "a", "b") == Literal(5)


class TestRendering:
    def test_expr_text_round_trippable(self):
        samples = [
            "a.x = 1",
            "count(DISTINCT a.x)",
            "size(collect(a.`B.p`))",
            "a.x IS NOT NULL",
        ]
        for text in samples:
            expr = parse_expression(text)
            rendered = expr_text(expr)
            assert parse_expression(rendered) == expr

    def test_query_text_round_trip(self):
        text = (
            "MATCH (d:Drug {name: 'x'})-[t:treat]->(i:Indication) "
            "WHERE i.sev > 2 RETURN d.name AS n, count(i) "
            "ORDER BY n DESC LIMIT 3"
        )
        q = parse_query(text)
        rendered = query_text(q)
        assert parse_query(rendered) == q

    def test_query_text_directions(self):
        q = parse_query("MATCH (a)<-[:x]-(b)-[:y]-(c) RETURN a")
        rendered = query_text(q)
        assert "<-[:x]-" in rendered
        assert "-[:y]-" in rendered

    def test_funccall_without_var(self):
        q = parse_query("MATCH (a) RETURN count(*)")
        assert "count(*)" in query_text(q)
