"""Streaming-pipeline semantics: short-circuit, top-k, pushdown.

These tests pin down the behaviours the generator rewrite introduced:
``LIMIT`` must stop pulling work out of the match pipeline (observable
through the session's work counters), ``ORDER BY + LIMIT`` must agree
with a full sort, pushed-down WHERE conjuncts must agree with
post-filtering, and the O(1) join-check probe must agree with the old
adjacency scan.
"""

import pytest

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.parser import parse_query
from repro.graphdb.session import GraphSession
from repro.workload.runner import run_single


@pytest.fixture(scope="module")
def med_graph():
    pipeline = build_pipeline(build_med(), scale=0.25)
    return pipeline.dir_graph


@pytest.fixture(scope="module")
def fin_graph():
    pipeline = build_pipeline(build_fin(), scale=0.25)
    return pipeline.dir_graph


def run(graph, text):
    return Executor(GraphSession(graph, NEO4J_LIKE)).run(text)


def _multiset(rows):
    return sorted(
        tuple(
            tuple(sorted(map(repr, v))) if isinstance(v, list) else v
            for v in row
        )
        for row in rows
    )


class TestLimitShortCircuit:
    QUERY = "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc"

    def test_strictly_less_work(self, med_graph):
        full = run(med_graph, self.QUERY).metrics
        limited = run(med_graph, self.QUERY + " LIMIT 2").metrics
        assert limited.edge_traversals < full.edge_traversals
        assert limited.vertex_reads < full.vertex_reads

    def test_limited_rows_are_a_prefix_of_full(self, med_graph):
        full = run(med_graph, self.QUERY).rows
        limited = run(med_graph, self.QUERY + " LIMIT 5").rows
        assert limited == full[:5]

    def test_limit_zero(self, med_graph):
        result = run(med_graph, self.QUERY + " LIMIT 0")
        assert result.rows == []

    def test_limit_larger_than_result(self, med_graph):
        full = run(med_graph, self.QUERY).rows
        limited = run(med_graph, self.QUERY + " LIMIT 100000").rows
        assert limited == full

    def test_aggregation_still_consumes_everything(self, med_graph):
        # LIMIT applies to grouped rows, so the match work is identical.
        agg = (
            "MATCH (p:Patient)-[:takes]->(d:Drug) "
            "RETURN p.patientId, count(d.name) AS n"
        )
        full = run(med_graph, agg).metrics
        limited = run(med_graph, agg + " LIMIT 1").metrics
        assert limited.edge_traversals == full.edge_traversals


class TestTopK:
    @pytest.mark.parametrize("order", [
        "i.desc", "i.desc DESC", "d.name, i.desc DESC",
    ])
    @pytest.mark.parametrize("k", [1, 3, 50])
    def test_matches_full_sort_prefix(self, med_graph, order, k):
        base = (
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            f"RETURN d.name, i.desc ORDER BY {order}"
        )
        full = run(med_graph, base).rows
        topk = run(med_graph, f"{base} LIMIT {k}").rows
        assert topk == full[:k]

    def test_with_aggregation(self, med_graph):
        base = (
            "MATCH (p:Patient)-[:takes]->(d:Drug) "
            "RETURN p.patientId, count(d.name) AS n ORDER BY n DESC"
        )
        full = run(med_graph, base).rows
        topk = run(med_graph, base + " LIMIT 4").rows
        assert topk == full[:4]


#: WHERE-augmented variants of workload queries: (dataset, MATCH/RETURN
#: without WHERE, WHERE clause, python post-filter over the unfiltered
#: columns).
PUSHDOWN_CASES = [
    (
        "med",
        "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc",
        "d.name CONTAINS '1'",
        lambda row: isinstance(row[0], str) and "1" in row[0],
    ),
    (
        "med",
        "MATCH (p:Patient)-[:takes]->(d:Drug) "
        "RETURN p.patientId, d.name",
        "p.patientId IS NOT NULL AND d.name IS NOT NULL",
        lambda row: row[0] is not None and row[1] is not None,
    ),
    (
        "fin",
        "MATCH (c:Corporation)-[:issues]->(s:Security) "
        "RETURN c.hasLegalName, s.cusip",
        "c.hasLegalName < 'M'",
        lambda row: row[0] is not None and row[0] < "M",
    ),
    (
        "fin",
        "MATCH (o:Officer)-[:isA]->(p:Person) RETURN o.title, p.hasName",
        "o.title IS NOT NULL OR p.hasName IS NOT NULL",
        lambda row: row[0] is not None or row[1] is not None,
    ),
]


class TestWherePushdown:
    @pytest.mark.parametrize(
        "dataset,base,where,post", PUSHDOWN_CASES,
        ids=[c[1][:40] for c in PUSHDOWN_CASES],
    )
    def test_parity_with_post_filter(
        self, med_graph, fin_graph, dataset, base, where, post
    ):
        graph = med_graph if dataset == "med" else fin_graph
        unfiltered = run(graph, base).rows
        expected = [row for row in unfiltered if post(row)]
        match, returns = base.split(" RETURN ")
        filtered = run(
            graph, f"{match} WHERE {where} RETURN {returns}"
        ).rows
        assert _multiset(filtered) == _multiset(expected)

    def test_equality_conjunct_folds_into_scan(self, med_graph):
        # The folded conjunct must show up as a scan-level constraint,
        # not a post-filter, and still return the right rows.
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        name = run(med_graph, "MATCH (d:Drug) RETURN d.name LIMIT 1")
        target = name.rows[0][0]
        text = f"MATCH (d:Drug) WHERE d.name = '{target}' RETURN d.name"
        plan_text = executor.explain(text)
        assert "filter[" not in plan_text  # folded, not residual
        assert executor.run(text).rows == [(target,)]

    def test_list_literal_equality_not_folded_into_index(self):
        # An unhashable literal must never reach a property-index
        # lookup (index buckets are keyed by value); the conjunct stays
        # a runtime filter and simply matches nothing against scalars.
        g = PropertyGraph()
        g.add_vertex("P", {"x": 1})
        g.add_vertex("P", {"x": 2})
        g.create_property_index("P", "x")
        result = run(g, "MATCH (n:P) WHERE n.x = [1, 2] RETURN count(*)")
        assert result.single_value() == 0
        # Hashable literals still fold and hit the index.
        folded = run(g, "MATCH (n:P) WHERE n.x = 2 RETURN count(*)")
        assert folded.single_value() == 1
        assert folded.metrics.index_lookups == 1

    def test_conflicting_equalities_yield_empty(self, med_graph):
        rows = run(
            med_graph,
            "MATCH (d:Drug) WHERE d.name = 'a' AND d.name = 'b' "
            "RETURN d.name",
        ).rows
        assert rows == []

    def test_pushdown_reduces_property_reads(self, med_graph):
        # The pushed conjunct dies at the scan, so downstream expansion
        # work drops compared to filtering after the full match.
        base = (
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "WHERE d.name CONTAINS 'zzz-no-such' RETURN i.desc"
        )
        metrics = run(med_graph, base).metrics
        unfiltered = run(
            med_graph,
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc",
        ).metrics
        assert metrics.edge_traversals < unfiltered.edge_traversals


class TestJoinCheckParity:
    @pytest.fixture()
    def triangle(self):
        g = PropertyGraph()
        a = g.add_vertex("N", {"i": 0})
        b = g.add_vertex("N", {"i": 1})
        c = g.add_vertex("N", {"i": 2})
        g.add_edge(a, b, "e")
        g.add_edge(b, c, "e")
        g.add_edge(c, a, "e")
        g.add_edge(a, c, "f")
        return g

    def test_cycle_closes_via_pair_probe(self, triangle):
        result = run(
            triangle,
            "MATCH (a:N)-[:e]->(b:N)-[:e]->(c:N)-[:e]->(a) "
            "RETURN a.i, b.i, c.i",
        )
        assert _multiset(result.rows) == _multiset(
            [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
        )

    def test_join_check_binds_rel_var(self, triangle):
        result = run(
            triangle,
            "MATCH (a:N {i: 0})-[:e]->(b:N)-[:e]->(c:N), (a)-[r:f]->(c) "
            "RETURN r.missing IS NULL",
        )
        assert result.rows == [(True,)]

    def test_direction_respected(self, triangle):
        # a-f->c exists, c-f->a does not.
        yes = run(
            triangle,
            "MATCH (a:N {i: 0}), (c:N {i: 2}), (a)-[:f]->(c) "
            "RETURN count(*)",
        )
        no = run(
            triangle,
            "MATCH (a:N {i: 0}), (c:N {i: 2}), (a)<-[:f]-(c) "
            "RETURN count(*)",
        )
        any_dir = run(
            triangle,
            "MATCH (a:N {i: 0}), (c:N {i: 2}), (a)-[:f]-(c) "
            "RETURN count(*)",
        )
        assert yes.single_value() == 1
        assert no.single_value() == 0
        assert any_dir.single_value() == 1

    def test_variable_length_join_check(self, triangle):
        # The same cycle constraint written join-check-first and
        # expand-first must agree (the former runs a path search inside
        # the join check, the latter a plain variable-length expand).
        join_first = run(
            triangle,
            "MATCH (a:N {i: 0})-[:f]->(c:N), (a)-[:e*2..2]->(c) "
            "RETURN count(*)",
        )
        expand_first = run(
            triangle,
            "MATCH (a:N {i: 0})-[:e*2..2]->(x:N {i: 2}), (a)-[:f]->(x) "
            "RETURN count(*)",
        )
        assert join_first.single_value() == 1
        assert join_first.single_value() == expand_first.single_value()


class TestExplain:
    def test_scan_expand_rendering(self, med_graph):
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        text = executor.explain(
            "MATCH (d:Drug)-[:treat]->(i:Indication) "
            "WHERE i.desc IS NOT NULL RETURN d.name"
        )
        assert "Scan d via label scan (:Drug)" in text
        assert "Expand (d)-[:treat]->(i)" in text
        assert "filter[i.desc IS NOT NULL]" in text

    def test_join_check_rendering(self, med_graph):
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        text = executor.explain(
            "MATCH (a:Drug)-[:treat]->(i:Indication)<-[:treat]-(a) "
            "RETURN a.name"
        )
        assert "JoinCheck" in text
        assert "O(1) pair probe" in text

    def test_accepts_parsed_query(self, med_graph):
        executor = Executor(GraphSession(med_graph, NEO4J_LIKE))
        query = parse_query("MATCH (d:Drug) RETURN d")
        assert "Scan d" in executor.explain(query)


class TestRunnerRowCollection:
    def test_rows_kept_on_demand(self, med_graph):
        q = "MATCH (d:Drug) RETURN d.name"
        without = run_single(med_graph, NEO4J_LIKE, q)
        assert without.result_rows is None
        with_rows = run_single(
            med_graph, NEO4J_LIKE, q, collect_rows=True
        )
        assert with_rows.result_rows is not None
        assert len(with_rows.result_rows) == with_rows.rows
