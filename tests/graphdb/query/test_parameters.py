"""$name query parameters: lexing, parsing, planning, execution.

The central property: a parameterized query has one *shape* - it
parses and plans once, and repeated executions with different bindings
hit the plan cache (verified with the cache's own hit/miss counters)
while producing exactly the rows the literal-interpolated equivalents
produce.
"""

import pytest

from repro.exceptions import ParameterError, QuerySyntaxError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import (
    Comparison,
    Parameter,
    PropertyRef,
    expr_text,
    parameters_used,
    walk,
)
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.lexer import tokenize
from repro.graphdb.query.parser import parse_expression, parse_query
from repro.graphdb.session import GraphSession


@pytest.fixture
def graph():
    g = PropertyGraph("params")
    for i in range(40):
        g.add_vertex(
            "Drug", {"id": i, "name": f"drug{i}", "tier": i % 4}
        )
    conds = [
        g.add_vertex("Condition", {"cid": i}) for i in range(10)
    ]
    for i in range(40):
        g.add_edge(i, conds[i % 10], "treats")
    g.create_property_index("Drug", "id")
    return g


@pytest.fixture
def executor(graph):
    return Executor(GraphSession(graph))


class TestLexerParser:
    def test_param_token(self):
        tokens = tokenize("$id")
        assert tokens[0].kind == "PARAM"
        assert tokens[0].value == "id"

    def test_bare_dollar_rejected(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("$ x")

    def test_numeric_param_name_rejected(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("$1abc")

    def test_param_in_expression(self):
        expr = parse_expression("d.id = $id")
        assert expr == Comparison(
            PropertyRef("d", "id"), "=", Parameter("id")
        )

    def test_param_in_node_map(self):
        query = parse_query("MATCH (d:Drug {id: $id}) RETURN d")
        assert query.patterns[0].nodes[0].props == (
            ("id", Parameter("id")),
        )

    def test_parameters_used(self):
        query = parse_query(
            "MATCH (d:Drug {id: $a}) WHERE d.tier = $b "
            "RETURN d.name, $c ORDER BY d.id"
        )
        assert parameters_used(query) == {"a", "b", "c"}

    def test_expr_text_and_walk(self):
        expr = parse_expression("d.id = $id")
        assert expr_text(expr) == "d.id = $id"
        assert Parameter("id") in list(walk(expr))


class TestExecution:
    def test_node_map_param(self, executor):
        q = "MATCH (d:Drug {id: $id}) RETURN d.name"
        assert executor.run(q, {"id": 3}).rows == [("drug3",)]
        assert executor.run(q, {"id": 11}).rows == [("drug11",)]

    def test_where_param(self, executor):
        q = "MATCH (d:Drug) WHERE d.tier = $t RETURN count(*)"
        assert executor.run(q, {"t": 1}).single_value() == 10

    def test_param_in_return(self, executor):
        q = "MATCH (d:Drug {id: $id}) RETURN $label, d.id"
        assert executor.run(
            q, {"id": 2, "label": "x"}
        ).rows == [("x", 2)]

    def test_param_in_comparison_list(self, executor):
        q = "MATCH (d:Drug) WHERE d.id IN $ids RETURN count(*)"
        assert executor.run(q, {"ids": [1, 2, 3]}).single_value() == 3

    def test_matches_literal_equivalent(self, executor):
        for tier in range(4):
            literal = executor.run(
                f"MATCH (d:Drug) WHERE d.tier = {tier} "
                "RETURN d.id ORDER BY d.id"
            )
            bound = executor.run(
                "MATCH (d:Drug) WHERE d.tier = $t "
                "RETURN d.id ORDER BY d.id",
                {"t": tier},
            )
            assert bound.rows == literal.rows

    def test_missing_parameter(self, executor):
        with pytest.raises(ParameterError, match=r"\$id"):
            executor.run("MATCH (d:Drug {id: $id}) RETURN d")

    def test_missing_parameter_names_all(self, executor):
        with pytest.raises(ParameterError, match=r"\$a.*\$b"):
            executor.run(
                "MATCH (d:Drug {id: $a}) WHERE d.tier = $b RETURN d"
            )

    def test_null_parameter_matches_nothing(self, executor):
        # `x.p = null` is always false; a $param bound to None must
        # behave the same, not "property is absent".
        q = "MATCH (d:Drug {id: $id}) RETURN count(*)"
        assert executor.run(q, {"id": None}).single_value() == 0

    def test_null_parameter_in_where(self, executor):
        q = "MATCH (d:Drug) WHERE d.tier = $t RETURN count(*)"
        assert executor.run(q, {"t": None}).single_value() == 0

    def test_unhashable_param_on_index_degrades_to_scan(self, executor):
        """An unhashable binding cannot key the index buckets; the
        scan degrades to label + residual equality instead of raising
        - plan choice must never change query semantics."""
        result = executor.run(
            "MATCH (d:Drug {id: $id}) RETURN count(*)", {"id": [1, 2]}
        )
        assert result.single_value() == 0

    def test_param_vs_literal_conflict_defers_to_runtime(
        self, executor
    ):
        """Repeating a variable with a $param and a literal constraint
        on the same property is satisfiable - decided per binding, not
        rejected at plan time."""
        q = (
            "MATCH (d:Drug {id: $a}), (d:Drug {id: 3}) "
            "RETURN d.name"
        )
        assert executor.run(q, {"a": 3}).rows == [("drug3",)]
        assert executor.run(q, {"a": 4}).rows == []

    def test_param_vs_param_conflict_defers_to_runtime(self, executor):
        q = (
            "MATCH (d:Drug {id: $a}) WHERE d.id = $b "
            "RETURN count(*)"
        )
        assert executor.run(q, {"a": 2, "b": 2}).single_value() == 1
        assert executor.run(q, {"a": 2, "b": 5}).single_value() == 0

    def test_null_map_constraint_not_overwritten_by_fold(self, graph):
        """`{p: null}` (matches-absent) plus `WHERE x.p = ...` is
        unsatisfiable - the fold must not replace the null
        constraint."""
        graph.add_vertex("Doc", {"tier": 1})
        graph.add_vertex("Doc", {})
        executor = Executor(GraphSession(graph))
        literal = executor.run(
            "MATCH (d:Doc {tier: null}) WHERE d.tier = 1 "
            "RETURN count(*)"
        )
        assert literal.single_value() == 0
        bound = executor.run(
            "MATCH (d:Doc {tier: null}) WHERE d.tier = $t "
            "RETURN count(*)",
            {"t": 1},
        )
        assert bound.single_value() == 0

    def test_literal_conflict_still_rejected(self, executor):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError, match="conflicting"):
            executor.run(
                "MATCH (d:Drug {id: 1}), (d:Drug {id: 2}) RETURN d"
            )

    def test_unhashable_param_without_index_compares(self, graph):
        vid = graph.add_vertex("Doc", {"tags": ["a", "b"]})
        graph.add_vertex("Doc", {"tags": ["c"]})
        executor = Executor(GraphSession(graph))
        result = executor.run(
            "MATCH (d:Doc) WHERE d.tags = $tags RETURN count(*)",
            {"tags": ["a", "b"]},
        )
        assert result.single_value() == 1
        del vid


class TestPlanCacheReuse:
    def test_zero_replans_after_warmup(self, graph, executor):
        """The acceptance criterion: parameterized re-execution replans
        zero times after the first (warmup) run."""
        stats = graph.statistics()
        q = "MATCH (d:Drug {id: $id}) RETURN d.name"
        executor.run(q, {"id": 0})  # warmup: parse + plan + cache
        misses_before = stats.plan_cache.misses
        hits_before = stats.plan_cache.hits
        for i in range(50):
            executor.run(q, {"id": i % 40})
        assert stats.plan_cache.misses == misses_before
        assert stats.plan_cache.hits == hits_before + 50

    def test_literal_interpolation_replans_every_time(
        self, graph, executor
    ):
        stats = graph.statistics()
        misses_before = stats.plan_cache.misses
        for i in range(10):
            executor.run(f"MATCH (d:Drug {{id: {i}}}) RETURN d.name")
        assert stats.plan_cache.misses == misses_before + 10


class TestExplain:
    def test_describe_renders_placeholder(self, executor):
        plan = executor.explain("MATCH (d:Drug {id: $id}) RETURN d")
        assert "index lookup (Drug.id = $id)" in plan
        assert "None" not in plan

    def test_check_props_render_placeholder(self, executor):
        plan = executor.explain(
            "MATCH (d:Drug {name: $n}) RETURN d"
        )
        assert "name=$n" in plan

    def test_analyze_with_parameters(self, executor):
        plan = executor.explain(
            "MATCH (d:Drug {id: $id}) RETURN d",
            analyze=True,
            parameters={"id": 5},
        )
        assert "actual=1" in plan


class TestPlannerPricing:
    def test_param_index_priced_by_average_bucket(self, graph):
        """A parameterized unique-key lookup still picks the index."""
        stats = graph.statistics()
        assert stats.avg_eq_estimate("Drug", "id") == pytest.approx(1.0)
        executor = Executor(GraphSession(graph))
        plan = executor.explain("MATCH (d:Drug {id: $id}) RETURN d")
        assert "index lookup" in plan
