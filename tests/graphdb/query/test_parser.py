"""Tests for the Cypher-subset parser."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    FuncCall,
    Literal,
    NullCheck,
    PropertyRef,
    Star,
    Variable,
)
from repro.graphdb.query.parser import parse_expression, parse_query


class TestPatterns:
    def test_single_node(self):
        q = parse_query("MATCH (n:Drug) RETURN n")
        pattern = q.patterns[0]
        assert pattern.nodes[0].var == "n"
        assert pattern.nodes[0].labels == ("Drug",)

    def test_multi_label_node(self):
        q = parse_query("MATCH (n:Drug:Generic) RETURN n")
        assert q.patterns[0].nodes[0].labels == ("Drug", "Generic")

    def test_anonymous_node(self):
        q = parse_query("MATCH (:Drug)-[:treat]->() RETURN count(*)")
        assert q.patterns[0].nodes[0].var is None
        assert q.patterns[0].nodes[1].labels == ()

    def test_property_filter(self):
        q = parse_query("MATCH (n:Drug {name: 'aspirin', doses: 3}) RETURN n")
        props = dict(q.patterns[0].nodes[0].props)
        assert props["name"].value == "aspirin"
        assert props["doses"].value == 3

    def test_directions(self):
        q = parse_query(
            "MATCH (a)-[:x]->(b)<-[:y]-(c)-[:z]-(d) RETURN a"
        )
        dirs = [r.direction for r in q.patterns[0].rels]
        assert dirs == ["out", "in", "any"]

    def test_rel_var_and_types(self):
        q = parse_query("MATCH (a)-[r:knows|likes]->(b) RETURN r")
        rel = q.patterns[0].rels[0]
        assert rel.var == "r"
        assert rel.labels == ("knows", "likes")

    def test_bare_rel(self):
        q = parse_query("MATCH (a)-->(b) RETURN a")
        # '-->' tokenizes as '-' + '->': an empty relationship body.
        assert q.patterns[0].rels[0].labels == ()

    def test_path_variable(self):
        q = parse_query("MATCH p=(a)-[:x]->(b) RETURN a")
        assert q.patterns[0].path_var == "p"

    def test_multiple_patterns(self):
        q = parse_query("MATCH (a:X), (b:Y) RETURN a, b")
        assert len(q.patterns) == 2

    def test_multiple_match_clauses(self):
        q = parse_query("MATCH (a:X) MATCH (b:Y) RETURN a, b")
        assert len(q.patterns) == 2

    def test_keyword_label_allowed(self):
        q = parse_query("MATCH (n:Order) RETURN n.desc")
        assert q.patterns[0].nodes[0].labels == ("Order",)


class TestReturn:
    def test_aliases(self):
        q = parse_query("MATCH (n:A) RETURN n.x AS value, n.y")
        assert q.return_items[0].alias == "value"
        assert q.return_items[1].alias is None
        assert q.return_items[1].output_name(1) == "n.y"

    def test_distinct(self):
        q = parse_query("MATCH (n:A) RETURN DISTINCT n.x")
        assert q.distinct

    def test_count_star(self):
        q = parse_query("MATCH (n:A) RETURN count(*)")
        expr = q.return_items[0].expr
        assert isinstance(expr, FuncCall)
        assert isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        q = parse_query("MATCH (n:A) RETURN count(DISTINCT n.x)")
        assert q.return_items[0].expr.distinct

    def test_nested_functions(self):
        q = parse_query("MATCH (n:A) RETURN size(collect(n.x))")
        outer = q.return_items[0].expr
        assert outer.name == "size"
        assert outer.args[0].name == "collect"

    def test_backtick_property(self):
        q = parse_query("MATCH (n:A) RETURN n.`Indication.desc`")
        expr = q.return_items[0].expr
        assert expr == PropertyRef("n", "Indication.desc")

    def test_order_by_and_limit(self):
        q = parse_query(
            "MATCH (n:A) RETURN n.x AS v ORDER BY v DESC, n.y LIMIT 5"
        )
        assert q.order_by[0].descending
        assert not q.order_by[1].descending
        assert q.limit == 5

    def test_limit_requires_int(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (n:A) RETURN n LIMIT 1.5")


class TestWhere:
    def test_comparisons(self):
        q = parse_query("MATCH (n:A) WHERE n.x >= 3 RETURN n")
        where = q.where
        assert isinstance(where, Comparison)
        assert where.op == ">="

    def test_and_or_precedence(self):
        expr = parse_expression("a.x = 1 AND a.y = 2 OR a.z = 3")
        assert isinstance(expr, BoolOp) and expr.op == "or"
        assert isinstance(expr.operands[0], BoolOp)
        assert expr.operands[0].op == "and"

    def test_parentheses(self):
        expr = parse_expression("a.x = 1 AND (a.y = 2 OR a.z = 3)")
        assert expr.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a.x = 1")
        from repro.graphdb.query.ast import NotOp

        assert isinstance(expr, NotOp)

    def test_is_null(self):
        expr = parse_expression("a.x IS NULL")
        assert expr == NullCheck(PropertyRef("a", "x"), False)

    def test_is_not_null(self):
        expr = parse_expression("a.x IS NOT NULL")
        assert expr == NullCheck(PropertyRef("a", "x"), True)

    def test_contains(self):
        expr = parse_expression("a.x CONTAINS 'sub'")
        assert expr.op == "contains"

    def test_in_list(self):
        expr = parse_expression("a.x IN ['p', 'q']")
        assert expr.op == "in"
        assert expr.rhs == Literal(["p", "q"])

    def test_literals(self):
        assert parse_expression("true") == Literal(True)
        assert parse_expression("false") == Literal(False)
        assert parse_expression("null") == Literal(None)
        assert parse_expression("-5") == Literal(-5)

    def test_bare_variable(self):
        assert parse_expression("abc") == Variable("abc")


class TestErrors:
    def test_missing_return(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (n:A)")

    def test_missing_match(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("RETURN 1")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (n:A) RETURN n n")

    def test_unclosed_node(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (n:A RETURN n")

    def test_bad_relationship(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (a)-[x(b) RETURN a")
