"""Cost-based planning: access-path pricing, ordering, cache, ANALYZE.

Planner *semantics* (what rows come back) are already pinned by the
executor and streaming suites; these tests pin the cost-specific
behaviours: histogram-priced access paths (a poorly selective index
must lose), estimated rows on plan steps, EXPLAIN ANALYZE rendering,
plan-cache reuse keyed on the stats epoch, and full result parity
between the cost-based and syntactic orderings on the med/fin
workload suites.
"""

import pytest

from repro.bench.harness import build_pipeline
from repro.datasets import build_fin, build_med
from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.planner import ScanStep, build_plan
from repro.graphdb.query.parser import parse_query
from repro.graphdb.session import GraphSession


@pytest.fixture(scope="module")
def med():
    return build_pipeline(build_med(), scale=0.25)


@pytest.fixture(scope="module")
def fin():
    return build_pipeline(build_fin(), scale=0.25)


def _multiset(rows):
    return sorted(
        (
            tuple(
                tuple(sorted(map(repr, v))) if isinstance(v, list) else v
                for v in row
            )
            for row in rows
        ),
        key=repr,
    )


@pytest.fixture()
def skewed():
    """60 P-vertices with a 2-value indexed prop, 3 unique Q-vertices."""
    g = PropertyGraph()
    targets = [
        g.add_vertex("Q", {"name": f"q{i}"}) for i in range(3)
    ]
    for i in range(60):
        vid = g.add_vertex("P", {"flag": "hot" if i % 2 else "cold"})
        g.add_edge(vid, targets[i % 3], "hits")
    g.create_property_index("P", "flag")
    return g


class TestAccessPathPricing:
    def test_selective_index_is_used(self, skewed):
        plan = build_plan(
            parse_query("MATCH (p:P {flag: 'hot'}) RETURN p"), skewed
        )
        assert plan.steps[0].access == "index"

    def test_poorly_selective_index_loses_to_unique_scan(self, skewed):
        # Syntactic ordering starts at the index by fiat; the cost
        # model prices its 30-row bucket against the 1-row name check
        # behind the 3-vertex :Q label scan and starts there instead.
        q = parse_query(
            "MATCH (p:P {flag: 'hot'})-[:hits]->(t:Q {name: 'q0'}) "
            "RETURN p"
        )
        cost = build_plan(q, skewed)
        assert cost.steps[0].var == "t"
        assert cost.steps[0].access == "label"
        syntactic = build_plan(
            parse_query(
                "MATCH (p:P {flag: 'hot'})-[:hits]->(t:Q {name: 'q0'}) "
                "RETURN p"
            ),
            skewed,
            cost_based=False,
        )
        assert syntactic.steps[0].var == "p"
        assert syntactic.steps[0].access == "index"

    def test_est_rows_attached_to_cost_plans_only(self, skewed):
        q = "MATCH (p:P)-[:hits]->(t:Q) RETURN p"
        cost = build_plan(parse_query(q), skewed)
        assert all(s.est_rows is not None for s in cost.steps)
        assert cost.ordering == "cost"
        syntactic = build_plan(
            parse_query(q), skewed, cost_based=False
        )
        assert all(s.est_rows is None for s in syntactic.steps)
        assert syntactic.ordering == "syntactic"

    def test_huge_variable_length_range_does_not_overflow(self, skewed):
        # per_hop ** depth must be capped in log space: fan-out > 1
        # raised OverflowError for large hop ranges before planning
        # even started.
        import math

        plan = build_plan(
            parse_query(
                "MATCH (p:P)-[:hits*500..600]->(t:Q) RETURN count(*)"
            ),
            skewed,
        )
        assert all(
            s.est_rows is None or math.isfinite(s.est_rows)
            for s in plan.steps
        )

    def test_scan_estimate_uses_histogram(self, skewed):
        plan = build_plan(
            parse_query("MATCH (p:P {flag: 'cold'}) RETURN p"), skewed
        )
        step = plan.steps[0]
        assert isinstance(step, ScanStep)
        assert step.est_rows == pytest.approx(30.0)


class TestExplainAnalyze:
    def test_estimates_and_actuals_rendered(self, med):
        executor = Executor(GraphSession(med.dir_graph, NEO4J_LIKE))
        text = executor.explain(
            "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name",
            analyze=True,
        )
        assert "est~" in text
        assert "actual=" in text

    def test_actuals_match_pipeline_rows(self, skewed):
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        result = executor.run("MATCH (p:P {flag: 'hot'}) RETURN p")
        text = executor.explain(
            "MATCH (p:P {flag: 'hot'}) RETURN p", analyze=True
        )
        assert f"actual={len(result.rows)}" in text

    def test_limit_short_circuit_visible(self, skewed):
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        text = executor.explain(
            "MATCH (p:P) RETURN p LIMIT 2", analyze=True
        )
        assert "actual=2" in text

    def test_plain_explain_has_no_actuals(self, skewed):
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        text = executor.explain("MATCH (p:P) RETURN p")
        assert "actual=" not in text
        assert "est~" in text


class TestPlanCache:
    QUERY = "MATCH (p:P)-[:hits]->(t:Q) RETURN t.name"

    def test_repeated_text_hits_cache(self, skewed):
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        cache = skewed.statistics().plan_cache
        baseline_misses = cache.misses
        first = executor.run(self.QUERY)
        second = executor.run(self.QUERY)
        assert cache.misses == baseline_misses + 1
        assert cache.hits >= 1
        assert _multiset(first.rows) == _multiset(second.rows)

    def test_cache_shared_across_sessions(self, skewed):
        Executor(GraphSession(skewed, NEO4J_LIKE)).run(self.QUERY)
        cache = skewed.statistics().plan_cache
        hits = cache.hits
        Executor(GraphSession(skewed, NEO4J_LIKE)).run(self.QUERY)
        assert cache.hits == hits + 1

    def test_index_creation_invalidates(self):
        g = PropertyGraph()
        for i in range(8):
            g.add_vertex("P", {"x": i % 2})
        executor = Executor(GraphSession(g, NEO4J_LIKE))
        query = "MATCH (p:P {x: 1}) RETURN p"
        _parsed, before = executor._prepare(query)
        assert before.steps[0].access == "label"
        g.create_property_index("P", "x")  # bumps the stats epoch
        _parsed, after = executor._prepare(query)
        assert after.steps[0].access == "index"

    def test_ast_queries_cached_too(self, skewed):
        # Frozen-dataclass ASTs are hashable, so the rewriter's
        # pre-parsed queries cache like text; structurally equal ASTs
        # share one entry.
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        cache = skewed.statistics().plan_cache
        executor.run(parse_query(self.QUERY))
        hits = cache.hits
        executor.run(parse_query(self.QUERY))
        assert cache.hits == hits + 1

    def test_unhashable_literal_ast_planned_fresh(self, skewed):
        executor = Executor(GraphSession(skewed, NEO4J_LIKE))
        cache = skewed.statistics().plan_cache
        size = len(cache)
        query = parse_query(
            "MATCH (p:P) WHERE p.flag IN ['hot', 'cold'] "
            "RETURN count(*)"
        )
        result = executor.run(query)
        assert result.single_value() == 60
        assert len(cache) == size  # list literal: not cacheable


class TestWorkloadParity:
    """Cost-based and syntactic plans must agree on every result."""

    def _check(self, graph, queries):
        for qid, query in queries.items():
            cost = Executor(GraphSession(graph, NEO4J_LIKE)).run(query)
            syntactic = Executor(
                GraphSession(graph, NEO4J_LIKE), cost_based=False
            ).run(query)
            assert _multiset(cost.rows) == _multiset(syntactic.rows), qid

    def test_med_dir(self, med):
        self._check(med.dir_graph, med.dataset.queries)

    def test_med_opt(self, med):
        self._check(med.opt_graph, med.rewritten)

    def test_fin_dir(self, fin):
        self._check(fin.dir_graph, fin.dataset.queries)

    def test_fin_opt(self, fin):
        self._check(fin.opt_graph, fin.rewritten)

    def test_cycles_and_cartesian_products(self, skewed):
        for query in (
            "MATCH (a:P)-[:hits]->(t:Q)<-[:hits]-(b:P) "
            "RETURN count(*)",
            "MATCH (a:Q), (b:Q) RETURN count(*)",
            "MATCH (a:P {flag: 'hot'})-[r:hits]->(t:Q), (b:Q) "
            "RETURN count(*)",
        ):
            cost = Executor(GraphSession(skewed, NEO4J_LIKE)).run(query)
            syntactic = Executor(
                GraphSession(skewed, NEO4J_LIKE), cost_based=False
            ).run(query)
            assert cost.single_value() == syntactic.single_value()
