"""Tests for the property graph store."""

import pytest

from repro.exceptions import GraphError
from repro.graphdb.graph import PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph("t")
    a = g.add_vertex("A", {"name": "a0", "k": 1})
    b = g.add_vertex(["A", "B"], {"name": "b0"})
    c = g.add_vertex("C", {})
    g.add_edge(a, b, "knows")
    g.add_edge(a, c, "likes", {"weight": 2})
    g.add_edge(b, c, "knows")
    return g


class TestVertices:
    def test_ids_sequential(self, graph):
        assert [v.vid for v in graph.iter_vertices()] == [0, 1, 2]

    def test_labels_required(self):
        g = PropertyGraph()
        with pytest.raises(GraphError):
            g.add_vertex([], {})

    def test_multi_labels(self, graph):
        assert graph.vertex(1).labels == {"A", "B"}
        assert graph.has_label(1, "B")
        assert not graph.has_label(0, "B")

    def test_label_index(self, graph):
        assert graph.vertices_with_label("A") == [0, 1]
        assert graph.vertices_with_label("B") == [1]
        assert graph.vertices_with_label("Nope") == []
        assert graph.label_count("A") == 2

    def test_unknown_vertex(self, graph):
        with pytest.raises(GraphError):
            graph.vertex(99)

    def test_set_property(self, graph):
        graph.set_property(0, "extra", [1, 2])
        assert graph.vertex(0).properties["extra"] == [1, 2]

    def test_labels_listing(self, graph):
        assert graph.labels() == ["A", "B", "C"]


class TestEdges:
    def test_adjacency(self, graph):
        out = graph.out_edges(0)
        assert {e.label for e in out} == {"knows", "likes"}
        assert [e.dst for e in graph.out_edges(0, "knows")] == [1]
        assert [e.src for e in graph.in_edges(2, "likes")] == [0]

    def test_label_filter(self, graph):
        assert graph.out_edges(0, "nothing") == []

    def test_edge_endpoints_checked(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge(0, 99, "x")

    def test_edge_properties(self, graph):
        likes = graph.out_edges(0, "likes")[0]
        assert likes.properties["weight"] == 2

    def test_degree(self, graph):
        assert graph.degree(0) == 2
        assert graph.degree(2) == 2

    def test_counts(self, graph):
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_multigraph(self, graph):
        graph.add_edge(0, 1, "knows")
        assert len(graph.out_edges(0, "knows")) == 2


class TestPropertyIndex:
    def test_lookup(self, graph):
        graph.create_property_index("A", "name")
        assert graph.lookup_property("A", "name", "a0") == [0]
        assert graph.lookup_property("A", "name", "zz") == []

    def test_requires_index(self, graph):
        with pytest.raises(GraphError):
            graph.lookup_property("A", "name", "a0")

    def test_index_tracks_new_vertices(self, graph):
        graph.create_property_index("A", "name")
        vid = graph.add_vertex("A", {"name": "a9"})
        assert graph.lookup_property("A", "name", "a9") == [vid]

    def test_idempotent_creation(self, graph):
        graph.create_property_index("A", "name")
        graph.create_property_index("A", "name")
        assert graph.has_property_index("A", "name")


class TestSize:
    def test_size_bytes_grows(self, graph):
        before = graph.size_bytes()
        graph.add_vertex("A", {"name": "x", "list": [1, 2, 3]})
        assert graph.size_bytes() > before
