"""Differential-testing toolkit: random queries, both pipelines, strict
equivalence.

The vectorized batch path (`repro.graphdb.query.vectorized`) promises
*strict* equivalence with the tuple pipeline: identical rows in
identical order AND identical work counters (vertex/property reads,
index lookups, edge traversals, page hits/misses).  This module holds
the pieces the differential tests share:

* :func:`build_differential_graph` - a deterministic medium graph whose
  schema deliberately covers every kernel-relevant column shape:
  int64 and float64 columns with missing values, NaN floats, a string
  (object) column, a column that promotes to object mid-table, and
  edge properties;
* :class:`QueryGen` - a seeded random generator over the Cypher subset
  (scans, 1-2 hop expands in all directions, WHERE trees with
  AND/OR/NOT and IS [NOT] NULL, parameters, DISTINCT, ORDER BY, and
  the aggregate forms - including grouped/collect shapes that must
  *fall back*);
* :func:`assert_equivalent` - runs one query through both pipelines on
  fresh sessions and asserts rows and counters match exactly.

`tests/conftest.py` exposes these as the ``diff_graph`` / ``diff_gen``
fixtures; the corpus test, the Hypothesis tests, and the CI seed runs
all go through here.
"""

from __future__ import annotations

import math
import random

from repro.graphdb.backends import NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.executor import Executor
from repro.graphdb.query.vectorized import ExecutionReport
from repro.graphdb.session import GraphSession

#: Work counters the two pipelines must agree on, exactly.  (``rows``
#: and ``queries`` are driver-level; retry counters are storage-level.)
WORK_COUNTERS = (
    "vertex_reads",
    "property_reads",
    "index_lookups",
    "edge_traversals",
    "page_hits",
    "page_misses",
)

#: label -> {prop: kind}; the generator only writes well-formed
#: queries, so it needs to know what exists where.
VERTEX_PROPS = {
    "Patient": {"age": "int", "weight": "float", "name": "str", "pid": "int"},
    "Drug": {"dose": "int", "name": "str", "code": "mixed"},
    "Visit": {"day": "int", "cost": "float"},
}

#: Single-hop building blocks: (src_label, edge_label, direction,
#: dst_label).  Direction is how the pattern is *written* ('>' out,
#: '<' in, '-' undirected), with src always the left node.
CHAINS_1 = [
    ("Patient", "takes", ">", "Drug"),
    ("Patient", "visits", ">", "Visit"),
    ("Drug", "interacts", ">", "Drug"),
    ("Drug", "takes", "<", "Patient"),
    ("Visit", "visits", "<", "Patient"),
    ("Drug", "interacts", "-", "Drug"),
]

CHAINS_2 = [
    [("Patient", "takes", ">", "Drug"), ("Drug", "interacts", ">", "Drug")],
    [("Visit", "visits", "<", "Patient"), ("Patient", "takes", ">", "Drug")],
    [("Drug", "takes", "<", "Patient"), ("Patient", "visits", ">", "Visit")],
    [("Drug", "interacts", "-", "Drug"), ("Drug", "takes", "<", "Patient")],
]

#: edge label -> {prop: kind} (only edges that carry properties).
EDGE_PROPS = {"takes": {"since": "int"}, "interacts": {"risk": "float"}}

#: Comparison constants per column kind.  Values straddle the stored
#: ranges so predicates are neither always-true nor always-false, and
#: the string pool includes misses.
CONST_POOL = {
    "int": [0, 1, 5, 17, 30, 45, 60, 90, 2005, -3],
    "float": [0.0, 0.4, 25.5, 60.0, 99.9, 450.0],
    "str": ["p0", "p3", "d1", "zz"],
    "mixed": [6, 30, "c21", "c35"],
}

NUMERIC_KINDS = ("int", "float")
OPS = ("=", "<>", "<", "<=", ">", ">=")
AGG_FUNCS = ("count", "sum", "min", "max", "avg")


def build_differential_graph(seed: int = 7) -> PropertyGraph:
    """A deterministic graph covering every kernel-relevant shape."""
    rng = random.Random(seed)
    g = PropertyGraph("diff")
    patients = []
    for i in range(90):
        props: dict[str, object] = {"pid": i}
        if rng.random() < 0.85:
            props["age"] = rng.randint(0, 90)
        r = rng.random()
        if r < 0.70:
            props["weight"] = round(rng.uniform(40.0, 120.0), 2)
        elif r < 0.80:
            props["weight"] = float("nan")
        if rng.random() < 0.90:
            props["name"] = f"p{i % 7}"
        patients.append(g.add_vertex("Patient", props))
    drugs = []
    for i in range(40):
        props = {"dose": rng.choice([5, 10, 20, 50]), "name": f"d{i % 5}"}
        # The first half stores ints, the second half strings: the
        # column starts int64 and promotes to object mid-table.
        props["code"] = i * 3 if i < 20 else f"c{i}"
        drugs.append(g.add_vertex("Drug", props))
    visits = []
    for i in range(60):
        props = {"day": i % 30}
        if i % 13 != 0:
            props["cost"] = (
                float("nan") if i % 11 == 0 else round(rng.uniform(1.0, 500.0), 2)
            )
        visits.append(g.add_vertex("Visit", props))
    for p in patients:
        for d in rng.sample(drugs, rng.randint(0, 3)):
            g.add_edge(p, d, "takes", {"since": rng.randint(1990, 2020)})
        for v in rng.sample(visits, rng.randint(0, 2)):
            g.add_edge(p, v, "visits")
    for d in drugs:
        for other in rng.sample(drugs, rng.randint(0, 2)):
            if other != d:
                g.add_edge(d, other, "interacts", {"risk": round(rng.random(), 3)})
    g.statistics()
    # Freeze last: the vectorized expand operator needs the CSR view,
    # and any mutation would invalidate it.
    g.freeze()
    return g


class QueryGen:
    """Seeded random generator over the engine's Cypher subset.

    Every produced query is valid against the differential schema.
    The mix intentionally includes shapes the vectorized path must
    refuse (object-column predicates, grouped aggregation, collect,
    LIMIT) so a corpus run exercises the fallback decision, not just
    the happy path.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng
        self._param_n = 0

    # -- public ---------------------------------------------------------
    def query(self) -> tuple[str, dict]:
        """One random ``(query_text, parameters)`` pair."""
        self._param_n = 0
        self.params: dict[str, object] = {}
        r = self.rng.random()
        if r < 0.45:
            text = self._scan_query()
        elif r < 0.80:
            text = self._hop_query(self.rng.choice(CHAINS_1))
        else:
            text = self._hop_query(*self.rng.choice(CHAINS_2))
        return text, self.params

    # -- pattern construction -------------------------------------------
    def _scan_query(self) -> str:
        rng = self.rng
        if rng.random() < 0.10:
            label = rng.choice(list(VERTEX_PROPS))
            node = self._node("a", None, VERTEX_PROPS[label])
            bound = {"a": VERTEX_PROPS[label]}
        else:
            label = rng.choice(list(VERTEX_PROPS))
            node = self._node("a", label, VERTEX_PROPS[label])
            bound = {"a": VERTEX_PROPS[label]}
        where = self._where(bound)
        tail = self._return(bound, rel_vars={})
        return f"MATCH {node}{where} {tail}"

    def _hop_query(self, *chain) -> str:
        rng = self.rng
        names = "abc"
        bound: dict[str, dict] = {}
        rel_vars: dict[str, dict] = {}
        parts = []
        for i, (src, elabel, direction, dst) in enumerate(chain):
            if i == 0:
                parts.append(self._node(names[0], src, VERTEX_PROPS[src]))
                bound[names[0]] = VERTEX_PROPS[src]
            rel = ""
            rvar = ""
            if rng.random() < 0.35 and elabel in EDGE_PROPS:
                rvar = f"r{i}"
                rel_vars[rvar] = EDGE_PROPS[elabel]
            etype = "" if rng.random() < 0.15 else f":{elabel}"
            body = f"{rvar}{etype}"
            if direction == ">":
                rel = f"-[{body}]->"
            elif direction == "<":
                rel = f"<-[{body}]-"
            else:
                rel = f"-[{body}]-"
            far = names[i + 1]
            far_label = dst if rng.random() < 0.85 else None
            parts.append(rel + self._node(far, far_label, VERTEX_PROPS[dst]))
            bound[far] = VERTEX_PROPS[dst]
        where = self._where(bound)
        tail = self._return(bound, rel_vars)
        return f"MATCH {''.join(parts)}{where} {tail}"

    def _node(self, var: str, label: str | None, props: dict) -> str:
        rng = self.rng
        inner = var if label is None else f"{var}:{label}"
        if rng.random() < 0.25:
            prop = rng.choice(list(props))
            value = rng.choice(CONST_POOL[props[prop]])
            if rng.random() < 0.5:
                name = self._param(value)
                return f"({inner} {{{prop}: ${name}}})"
            return f"({inner} {{{prop}: {self._literal(value)}}})"
        return f"({inner})"

    # -- WHERE ----------------------------------------------------------
    def _where(self, bound: dict[str, dict]) -> str:
        rng = self.rng
        n = rng.choices([0, 1, 2, 3], weights=[30, 40, 20, 10])[0]
        if n == 0:
            return ""
        preds = [self._predicate(bound) for _ in range(n)]
        joined = preds[0]
        for pred in preds[1:]:
            joined = f"{joined} {rng.choice(['AND', 'OR'])} {pred}"
        return f" WHERE {joined}"

    def _predicate(self, bound: dict[str, dict]) -> str:
        rng = self.rng
        var = rng.choice(list(bound))
        prop = rng.choice(list(bound[var]))
        kind = bound[var][prop]
        if rng.random() < 0.20:
            null_op = rng.choice(["IS NULL", "IS NOT NULL"])
            pred = f"{var}.{prop} {null_op}"
        else:
            op = rng.choice(OPS)
            value = rng.choice(CONST_POOL[kind])
            if rng.random() < 0.20:
                name = self._param(value)
                pred = f"{var}.{prop} {op} ${name}"
            else:
                pred = f"{var}.{prop} {op} {self._literal(value)}"
        if rng.random() < 0.15:
            pred = f"NOT ({pred})"
        return pred

    # -- RETURN ---------------------------------------------------------
    def _return(self, bound: dict[str, dict], rel_vars: dict) -> str:
        rng = self.rng
        if rng.random() < 0.40:
            return self._aggregate_return(bound)
        items = []
        pool = list(bound) + list(rel_vars)
        for _ in range(rng.randint(1, 3)):
            var = rng.choice(pool)
            props = bound.get(var) or rel_vars[var]
            if var in bound and rng.random() < 0.15:
                items.append(var)
            else:
                items.append(f"{var}.{rng.choice(list(props))}")
        distinct = "DISTINCT " if rng.random() < 0.20 else ""
        text = f"RETURN {distinct}{', '.join(dict.fromkeys(items))}"
        if rng.random() < 0.25:
            order = rng.choice([i for i in items if "." in i] or items)
            desc = " DESC" if rng.random() < 0.5 else ""
            text += f" ORDER BY {order}{desc}"
        if rng.random() < 0.08:
            text += f" LIMIT {rng.randint(1, 10)}"
        return text

    def _aggregate_return(self, bound: dict[str, dict]) -> str:
        rng = self.rng
        var = rng.choice(list(bound))
        props = bound[var]
        func = rng.choice(AGG_FUNCS)
        if func == "count" and rng.random() < 0.4:
            arg = "*"
        else:
            if func in ("sum", "avg"):
                allowed = [p for p, k in props.items() if k in NUMERIC_KINDS]
            elif func in ("min", "max"):
                # Mixed int/str columns make min/max raise TypeError in
                # *both* pipelines - not a differential signal.
                allowed = [p for p, k in props.items() if k != "mixed"]
            else:
                allowed = list(props)
            prop = rng.choice(allowed or list(props))
            arg = f"{var}.{prop}"
        if func == "count" and arg != "*" and rng.random() < 0.2:
            arg = f"DISTINCT {arg}"
        item = f"{func}({arg}) AS agg"
        if rng.random() < 0.25:
            # A grouping key: grouped aggregation is tuple-only, so
            # this shape exercises the fallback decision.
            key_var = rng.choice(list(bound))
            key = f"{key_var}.{rng.choice(list(bound[key_var]))}"
            return f"RETURN {key}, {item}"
        if rng.random() < 0.15:
            return f"RETURN collect({arg if arg != '*' else var}) AS agg"
        return f"RETURN {item}"

    # -- scalars --------------------------------------------------------
    def _literal(self, value: object) -> str:
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)

    def _param(self, value: object) -> str:
        self._param_n += 1
        name = f"p{self._param_n}"
        self.params[name] = value
        return name


# -- execution + comparison ---------------------------------------------

def run_path(graph, text, params, vectorize, parallelism=1):
    """Execute on a fresh session; return (columns, rows, work, report).

    ``parallelism`` defaults to 1 (not ``None``) so the serial and
    vectorized legs stay deterministic even when ``REPRO_PARALLEL`` is
    set in the environment; pass 2+ for the morsel-parallel leg.  The
    threshold is pinned to 0 so the tiny differential graphs still
    qualify for morsel dispatch.
    """
    session = GraphSession(graph, NEO4J_LIKE)
    executor = Executor(
        session, vectorize=vectorize, parallelism=parallelism,
        parallel_threshold=0,
    )
    report = ExecutionReport()
    _, _, columns, rows = executor.stream(text, dict(params), report=report)
    out = [tuple(row) for row in rows]
    metrics = session.reset_metrics().as_dict()
    return columns, out, {k: metrics[k] for k in WORK_COUNTERS}, report


def _norm_value(value):
    if isinstance(value, float) and math.isnan(value):
        return "<NaN>"
    if isinstance(value, list):
        return tuple(_norm_value(v) for v in value)
    return value


def norm_rows(rows):
    """Rows as comparable tuples (NaN != NaN would hide a match)."""
    return [tuple(_norm_value(v) for v in row) for row in rows]


def assert_equivalent(graph, text, params=(), parallel=True) -> ExecutionReport:
    """All pipelines, strict check; returns the vectorized-path report
    (``report.mode`` tells the caller whether the batch path ran or
    fell back).

    With ``parallel=True`` (the default) a third leg runs the same
    query through a 2-worker morsel-parallel executor (threshold 0)
    and must match the tuple pipeline on columns, rows, and all six
    work counters too.  Its report is attached to the return value as
    ``report.parallel_report`` - ``parallel_report.mode`` says whether
    morsel dispatch actually engaged or fell back (and
    ``parallel_report.parallel_reason`` says why).
    """
    params = dict(params)
    t_cols, t_rows, t_work, _ = run_path(graph, text, params, vectorize=False)
    v_cols, v_rows, v_work, report = run_path(graph, text, params, vectorize=True)
    context = f"query={text!r} params={params!r} mode={report.mode}"
    assert v_cols == t_cols, f"column mismatch: {context}"
    assert norm_rows(v_rows) == norm_rows(t_rows), f"row mismatch: {context}"
    assert v_work == t_work, (
        f"work-counter mismatch: {context}\n"
        f"  tuple:      {t_work}\n  vectorized: {v_work}"
    )
    report.parallel_report = None
    if parallel:
        p_cols, p_rows, p_work, p_report = run_path(
            graph, text, params, vectorize=True, parallelism=2
        )
        p_context = (
            f"query={text!r} params={params!r} mode={p_report.mode} "
            f"reason={p_report.parallel_reason}"
        )
        assert p_cols == t_cols, f"column mismatch: {p_context}"
        assert norm_rows(p_rows) == norm_rows(t_rows), (
            f"row mismatch: {p_context}"
        )
        assert p_work == t_work, (
            f"work-counter mismatch: {p_context}\n"
            f"  tuple:    {t_work}\n  parallel: {p_work}"
        )
        report.parallel_report = p_report
    return report
