"""Differential query fuzzing: vectorized vs tuple pipeline.

The batch path's correctness argument is empirical as well as
analytical: every query here runs through *both* pipelines on fresh
sessions over the same graph, and the results must match on columns,
rows (order included - the vectorized path preserves tuple-pipeline
order exactly), and all six work counters.  A counter mismatch is a
bug even when the rows agree: it means the batch kernels charge
different work than the tuple operators they replace.

Two layers:

* a seeded corpus run (``REPRO_DIFF_SEED`` overrides the seed; CI runs
  the fixed default plus one randomized, logged seed per build);
* Hypothesis-driven runs that shrink a failing seed to a minimal
  reproducer.

The corpus must exercise both paths: the generator deliberately emits
object-column predicates, grouped aggregation, ``collect``, and
``LIMIT`` - shapes the vectorized path refuses - so a run that never
fell back (or never vectorized) fails loudly instead of silently
testing one pipeline against itself.
"""

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.graphdb.diffquery import (
    QueryGen,
    assert_equivalent,
    build_differential_graph,
)

#: Default corpus seed; override with REPRO_DIFF_SEED=<int> (the CI
#: job runs one extra randomized seed and logs it for replay).
SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260808"))
CORPUS_SIZE = 220


class TestCorpus:
    def test_corpus_is_equivalent_on_both_paths(self, diff_graph):
        gen = QueryGen(random.Random(SEED))
        vectorized = fallbacks = parallel = 0
        for i in range(CORPUS_SIZE):
            text, params = gen.query()
            try:
                report = assert_equivalent(diff_graph, text, params)
            except AssertionError as exc:  # pragma: no cover - fail path
                raise AssertionError(
                    f"seed={SEED} query #{i}: {exc}"
                ) from exc
            if report.mode == "vectorized":
                vectorized += 1
            else:
                fallbacks += 1
            if (
                report.parallel_report is not None
                and report.parallel_report.mode == "parallel"
            ):
                parallel += 1
        # The run must have exercised all three pipelines, or it
        # proved nothing about their agreement.
        assert vectorized >= 30, (
            f"seed={SEED}: only {vectorized} queries ran vectorized"
        )
        assert fallbacks >= 10, (
            f"seed={SEED}: only {fallbacks} queries fell back"
        )
        assert parallel >= 20, (
            f"seed={SEED}: only {parallel} queries took the "
            "morsel-parallel path"
        )

    def test_object_column_queries_fall_back_and_agree(self, diff_graph):
        """String/mixed columns are the designed fallback case; pin a
        few explicit shapes on top of whatever the corpus drew."""
        cases = [
            "MATCH (p:Patient) WHERE p.name = 'p3' RETURN p.name",
            "MATCH (d:Drug) WHERE d.code = 30 RETURN d.dose",
            "MATCH (d:Drug) WHERE d.code = 'c21' RETURN d.name",
            "MATCH (d:Drug) RETURN min(d.name) AS first",
        ]
        for text in cases:
            report = assert_equivalent(diff_graph, text)
            assert report.mode == "tuple", text
            assert report.reason is not None, text

    def test_vectorized_shapes_actually_vectorize(self, diff_graph):
        """Guard the guard: the corpus assertion above is only
        meaningful if plain numeric shapes take the batch path."""
        cases = [
            "MATCH (p:Patient) WHERE p.age > 40 RETURN p.age",
            "MATCH (p:Patient) RETURN sum(p.age) AS total",
            "MATCH (p:Patient)-[:takes]->(d:Drug) RETURN count(*) AS n",
            "MATCH (v:Visit) WHERE v.cost >= 0.0 OR v.day < 5 RETURN v.day",
        ]
        for text in cases:
            report = assert_equivalent(diff_graph, text)
            assert report.mode == "vectorized", (text, report.reason)
            assert report.batches > 0, text


class TestHypothesis:
    """Shrinkable differential runs: a failure minimizes to one seed."""

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_seed_is_equivalent(self, diff_graph, seed):
        gen = QueryGen(random.Random(seed))
        for _ in range(3):
            text, params = gen.query()
            assert_equivalent(diff_graph, text, params)

    @settings(max_examples=20, deadline=None)
    @given(
        ages=st.lists(
            st.one_of(st.none(), st.integers(-(2**40), 2**40)),
            max_size=25,
        ),
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        const=st.integers(min_value=-100, max_value=100),
    )
    def test_int_predicates_on_generated_columns(self, ages, op, const):
        graph = _column_graph("x", ages)
        assert_equivalent(
            graph, f"MATCH (n:L) WHERE n.x {op} {const} RETURN n.x"
        )

    @settings(max_examples=20, deadline=None)
    @given(
        weights=st.lists(
            st.one_of(
                st.none(),
                st.floats(allow_nan=True, allow_infinity=True, width=64),
            ),
            max_size=25,
        ),
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        const=st.floats(
            allow_nan=False, allow_infinity=False, width=64
        ),
    )
    def test_float_predicates_on_generated_columns(self, weights, op, const):
        graph = _column_graph("x", weights)
        assert_equivalent(
            graph, f"MATCH (n:L) WHERE n.x {op} $c RETURN n.x", {"c": const}
        )

    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.integers(-1000, 1000),
                st.text(
                    alphabet="abcxyz", min_size=0, max_size=4
                ),
            ),
            max_size=25,
        ),
    )
    def test_aggregates_on_promoted_columns(self, values):
        """Mixed int/str columns promote to object mid-column; every
        aggregate must agree (typically by falling back)."""
        graph = _column_graph("x", values)
        present = [v for v in values if v is not None]
        mixed = any(isinstance(v, int) for v in present) and any(
            isinstance(v, str) for v in present
        )
        # min/max over a genuinely mixed column raises TypeError in
        # both pipelines; only count is total there.
        funcs = ("count",) if mixed else ("count", "min", "max")
        for func in funcs:
            assert_equivalent(
                graph, f"MATCH (n:L) RETURN {func}(n.x) AS agg"
            )
        assert_equivalent(
            graph, "MATCH (n:L) WHERE n.x IS NOT NULL RETURN count(*) AS c"
        )


def _column_graph(prop, values):
    """One label, one column, exactly these values (None = absent)."""
    from repro.graphdb.graph import PropertyGraph

    g = PropertyGraph("col")
    for v in values:
        g.add_vertex("L", {} if v is None else {prop: v})
    g.freeze()
    return g


def test_module_level_graph_matches_fixture(diff_graph):
    """The session fixture and a fresh build are the same graph (the
    builder is deterministic, so logged CI seeds replay exactly)."""
    fresh = build_differential_graph()
    assert fresh.summary() == diff_graph.summary()
