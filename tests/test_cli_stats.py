"""The ``repro stats`` subcommand: JSON shape dump of a data directory."""

import json

import pytest

from repro.cli import main
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import GraphStore


@pytest.fixture()
def store_dir(tmp_path):
    g = PropertyGraph("stats-demo")
    a = g.add_vertex("Drug", {"name": "aspirin", "doses": 3})
    b = g.add_vertex("Drug", {"name": "ibuprofen", "doses": 2})
    c = g.add_vertex(["Drug", "Generic"], {"name": "gx", "price": 1.5})
    i = g.add_vertex("Indication", {"desc": "pain"})
    g.add_edge(a, i, "treat")
    g.add_edge(b, i, "treat")
    g.add_edge(c, a, "sameAs")
    target = tmp_path / "store"
    GraphStore.create(target, g).close()
    return target


def test_stats_dumps_cardinalities_and_dtypes(store_dir, capsys):
    assert main(["stats", str(store_dir)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["name"] == "stats-demo"
    assert report["vertices"] == 4
    assert report["edges"] == 3
    assert report["labels"] == {"Drug": 3, "Generic": 1, "Indication": 1}
    assert report["edge_types"] == {"sameAs": 1, "treat": 2}
    tables = {
        frozenset(table["labels"]): table for table in report["tables"]
    }
    drug = tables[frozenset({"Drug"})]
    assert drug["rows"] == 2
    assert drug["columns"] == {"name": "object", "doses": "int64"}
    merged = tables[frozenset({"Drug", "Generic"})]
    assert merged["columns"]["price"] == "float64"


def test_stats_reflects_wal_tail(store_dir):
    with GraphStore.open(store_dir) as store:
        store.graph.add_vertex("Indication", {"desc": "fever"})
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["stats", str(store_dir)]) == 0
    report = json.loads(buffer.getvalue())
    assert report["labels"]["Indication"] == 2


def test_stats_missing_store_exits_1(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "nope")]) == 1
    assert "error:" in capsys.readouterr().err


def test_stats_empty_dir_exits_1(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["stats", str(empty)]) == 1
    assert "error:" in capsys.readouterr().err
