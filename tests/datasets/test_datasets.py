"""Tests for the MED and FIN datasets (published-count fidelity)."""

import pytest

from repro.datasets import (
    FIN_EXPECTED,
    MED_EXPECTED,
    build_fin_ontology,
    build_med_ontology,
)
from repro.datasets.base import fill_relationships
from repro.exceptions import DataGenerationError
from repro.ontology.model import RelationshipType
from repro.ontology.validation import validate_ontology


class TestMedCounts:
    def test_published_counts(self):
        onto = build_med_ontology()
        counts = onto.relationship_type_counts()
        assert onto.num_concepts == MED_EXPECTED["concepts"]
        assert onto.num_properties == MED_EXPECTED["properties"]
        assert counts[RelationshipType.INHERITANCE] == MED_EXPECTED[
            "inheritance"
        ]
        assert counts[RelationshipType.ONE_TO_ONE] == MED_EXPECTED[
            "one_to_one"
        ]
        assert counts[RelationshipType.ONE_TO_MANY] == MED_EXPECTED[
            "one_to_many"
        ]
        assert counts[RelationshipType.MANY_TO_MANY] == MED_EXPECTED[
            "many_to_many"
        ]
        assert counts[RelationshipType.UNION] == MED_EXPECTED["union"]

    def test_valid(self):
        validate_ontology(build_med_ontology())

    def test_figure2_core_present(self):
        onto = build_med_ontology()
        assert onto.union_concepts() >= {"Risk"}
        assert set(onto.members_of("Risk")) == {
            "ContraIndication", "BlackBoxWarning",
        }
        assert set(onto.children_of("DrugInteraction")) == {
            "DrugFoodInteraction", "DrugLabInteraction",
        }

    def test_query_vocabulary_exists(self, med_small):
        onto = med_small.ontology
        assert onto.find_relationship("cause", "Drug", "Risk")
        assert onto.find_relationship("hasDrugRoute", "Drug", "DrugRoute")
        assert onto.find_relationship("takes", "Patient", "Drug")
        assert "drugRouteId" in onto.concept("DrugRoute").properties

    def test_deterministic(self):
        a, b = build_med_ontology(), build_med_ontology()
        assert a.structurally_equal(b)


class TestFinCounts:
    def test_published_counts(self):
        onto = build_fin_ontology()
        counts = onto.relationship_type_counts()
        assert onto.num_concepts == FIN_EXPECTED["concepts"]
        assert onto.num_properties == FIN_EXPECTED["properties"]
        assert onto.num_relationships == FIN_EXPECTED["relationships"]
        assert counts[RelationshipType.UNION] == FIN_EXPECTED["union"]
        assert counts[RelationshipType.INHERITANCE] == FIN_EXPECTED[
            "inheritance"
        ]
        assert counts[RelationshipType.ONE_TO_MANY] == FIN_EXPECTED[
            "one_to_many"
        ]
        assert counts[RelationshipType.MANY_TO_MANY] == FIN_EXPECTED[
            "many_to_many"
        ]

    def test_valid(self):
        validate_ontology(build_fin_ontology())

    def test_fibo_core_present(self):
        onto = build_fin_ontology()
        assert "Person" in onto.children_of("AutonomousAgent")
        assert "ContractParty" in onto.children_of("Person")
        assert "Security" in onto.children_of("FinancialInstrument")
        assert onto.find_relationship("isManagedBy", "Contract",
                                      "Corporation")
        assert onto.find_relationship("investsIn", "Investment",
                                      "Security")

    def test_inheritance_band_mix(self, fin_small):
        from repro.ontology.model import jaccard_similarity

        onto = fin_small.ontology
        bands = {"up": 0, "down": 0, "mid": 0}
        for rel in onto.relationships_of_type(
            RelationshipType.INHERITANCE
        ):
            js = jaccard_similarity(
                onto.concept(rel.src).property_names(),
                onto.concept(rel.dst).property_names(),
            )
            if js > 0.66:
                bands["up"] += 1
            elif js < 0.33:
                bands["down"] += 1
            else:
                bands["mid"] += 1
        assert bands["up"] >= 3     # Security, Payment, Filing, Person
        assert bands["down"] >= 40  # inheritance-dominant filler
        assert bands["mid"] >= 1

    def test_deterministic(self):
        a, b = build_fin_ontology(), build_fin_ontology()
        assert a.structurally_equal(b)


class TestDataset:
    def test_workload_kinds(self, med_small):
        assert med_small.workload("uniform").name == "uniform"
        assert med_small.workload("zipf").name == "zipf"
        with pytest.raises(DataGenerationError):
            med_small.workload("weird")

    def test_query_workload_boosts_query_concepts(self, med_small):
        wl = med_small.query_workload(boost=10.0)
        assert wl.concept_weights["Drug"] > wl.concept_weights["Gene"]

    def test_logical_scaling(self, med_small):
        small = med_small.logical(scale=0.5)
        big = med_small.logical(scale=1.0)
        assert big.num_instances > small.num_instances

    def test_queries_parse(self, med_small, fin_small):
        from repro.graphdb.query.parser import parse_query

        for dataset in (med_small, fin_small):
            for text in dataset.queries.values():
                parse_query(text)


class TestFillRelationships:
    def test_adds_exact_count(self, fig2):
        onto = fig2.copy()
        added = fill_relationships(
            onto, RelationshipType.ONE_TO_MANY, 5, seed=1,
            label_prefix="x",
        )
        assert added == 5
        validate_ontology(onto)

    def test_inheritance_stays_acyclic(self, fig2):
        onto = fig2.copy()
        fill_relationships(
            onto, RelationshipType.INHERITANCE, 6, seed=2,
            label_prefix="isA", allowed_parents=["Drug", "Indication"],
        )
        validate_ontology(onto)

    def test_impossible_count_raises(self, fig2):
        onto = fig2.copy()
        with pytest.raises(DataGenerationError):
            fill_relationships(
                onto, RelationshipType.INHERITANCE, 10_000, seed=3,
                label_prefix="isA", allowed_parents=["Drug"],
            )
