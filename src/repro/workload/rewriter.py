"""Automatic DIR -> OPT query rewriting.

The paper hand-rewrites each microbenchmark query into "the semantically
equivalent quer[y] over OPT"; this module mechanizes that using the
:class:`~repro.schema.mapping.SchemaMapping`:

* **Collapse rewrites (mandatory).**  A pattern hop over a relationship
  the optimizer *collapsed* (consumed ``isA``/``unionOf``/1:1) has no
  edges in the OPT graph; the two endpoint variables are unified into
  one node pattern carrying both label constraints (OPT vertices keep
  the labels of every merged concept, so the unified pattern matches
  exactly the merged vertices).

* **Replication rewrites (optimization).**  A hop whose far node is used
  *only* to read properties that were replicated as list properties on
  the near node is removed; property reads become list reads, aggregates
  get ``flatten`` semantics (``COUNT(f.p)``/``COUNT(f)`` become a
  flattened count = sum of list sizes, ``COLLECT(f.p)`` a flattened
  collect), and an ``IS NOT NULL`` guard preserves match-existence
  semantics (vertices with no partner have no list property).  Hops
  whose relationships survive unchanged keep their edges in OPT, so
  skipping this rewrite is always safe, just slower.

Queries that cannot be resolved against the ontology (unknown labels or
edge labels) raise :class:`~repro.exceptions.RewriteError` in strict
mode and are returned unchanged otherwise.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import RewriteError
from repro.graphdb.query.ast import (
    AGGREGATE_FUNCTIONS,
    BoolOp,
    Expr,
    FuncCall,
    NodePattern,
    NullCheck,
    OrderItem,
    PathPattern,
    PropertyRef,
    Query,
    ReturnItem,
    Star,
    Variable,
    contains_aggregate,
    substitute_variable,
    walk,
)
from repro.graphdb.query.parser import parse_query
from repro.ontology.model import Ontology, Relationship
from repro.schema.mapping import SchemaMapping

#: Safety bound; every rewrite removes one hop, so this is generous.
_MAX_PASSES = 100


class QueryRewriter:
    """Rewrites DIR queries into equivalent OPT queries."""

    def __init__(
        self,
        ontology: Ontology,
        mapping: SchemaMapping,
        strict: bool = False,
    ):
        self.ontology = ontology
        self.mapping = mapping
        self.strict = strict

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def rewrite(self, query: Query | str) -> Query:
        if isinstance(query, str):
            query = parse_query(query)
        query = _ensure_node_vars(query)
        for _ in range(_MAX_PASSES):
            rewritten = self._rewrite_one_hop(query)
            if rewritten is None:
                return query
            query = rewritten
        raise RewriteError("rewriter did not converge")  # pragma: no cover

    # ------------------------------------------------------------------
    # Single-hop rewriting
    # ------------------------------------------------------------------
    def _rewrite_one_hop(self, query: Query) -> Query | None:
        """Apply the first applicable rewrite; None when none applies."""
        for p_index, pattern in enumerate(query.patterns):
            for h_index, (left, rel_pattern, right) in enumerate(
                pattern.hops()
            ):
                rel = self._resolve_rel(left, rel_pattern, right)
                if rel is None:
                    continue
                if self.mapping.is_collapsed(rel.rel_id):
                    return self._collapse_hop(query, p_index, h_index)
                rewritten = self._try_replication(
                    query, p_index, h_index, rel, left, right
                )
                if rewritten is not None:
                    return rewritten
        return None

    def _resolve_rel(
        self,
        left: NodePattern,
        rel_pattern,
        right: NodePattern,
    ) -> Relationship | None:
        """Map a pattern hop back to its ontology relationship."""
        if len(rel_pattern.labels) != 1:
            return None
        label = rel_pattern.labels[0]
        for la in left.labels or ("",):
            for lb in right.labels or ("",):
                rel = self.ontology.find_relationship(label, la, lb)
                if rel is not None:
                    return rel
        if self.strict:
            raise RewriteError(
                f"cannot resolve hop -[:{label}]- between labels "
                f"{left.labels} and {right.labels}"
            )
        return None

    # ------------------------------------------------------------------
    # Collapse rewrite
    # ------------------------------------------------------------------
    def _collapse_hop(
        self, query: Query, p_index: int, h_index: int
    ) -> Query:
        pattern = query.patterns[p_index]
        left = pattern.nodes[h_index]
        right = pattern.nodes[h_index + 1]
        keep_var, drop_var = left.var, right.var
        merged = NodePattern(
            keep_var,
            tuple(dict.fromkeys(left.labels + right.labels)),
            tuple(dict.fromkeys(left.props + right.props)),
        )
        new_nodes = (
            pattern.nodes[:h_index]
            + (merged,)
            + pattern.nodes[h_index + 2:]
        )
        new_rels = pattern.rels[:h_index] + pattern.rels[h_index + 1:]
        new_pattern = PathPattern(new_nodes, new_rels, None)
        query = query.with_(
            patterns=(
                query.patterns[:p_index]
                + ((new_pattern,) if new_rels or len(new_nodes) == 1 else (new_pattern,))
                + query.patterns[p_index + 1:]
            )
        )
        if drop_var != keep_var:
            query = _substitute_everywhere(query, drop_var, keep_var)
        return query

    # ------------------------------------------------------------------
    # Replication rewrite
    # ------------------------------------------------------------------
    def _try_replication(
        self,
        query: Query,
        p_index: int,
        h_index: int,
        rel: Relationship,
        left: NodePattern,
        right: NodePattern,
    ) -> Query | None:
        for far, near in ((right, left), (left, right)):
            rewritten = self._try_replication_oriented(
                query, p_index, h_index, rel, far, near
            )
            if rewritten is not None:
                return rewritten
        return None

    def _try_replication_oriented(
        self,
        query: Query,
        p_index: int,
        h_index: int,
        rel: Relationship,
        far: NodePattern,
        near: NodePattern,
    ) -> Query | None:
        far_var, near_var = far.var, near.var
        if far_var is None or near_var is None or far_var == near_var:
            return None
        if far.props:
            return None  # property filters on the far node: keep the hop
        # The far node must appear in exactly this one hop.
        if _hop_count(query, far_var) != 1:
            return None
        # The far node must be an endpoint of its chain (interior nodes
        # connect two hops and cannot be dropped).
        pattern = query.patterns[p_index]
        position = h_index if pattern.nodes[h_index].var == far_var else h_index + 1
        if position not in (0, len(pattern.nodes) - 1):
            return None

        # Determine the far concept: a label that identifies a concept.
        far_concepts = [
            label for label in far.labels if label in self.ontology.concepts
        ]
        if not far_concepts:
            return None
        near_concepts = [
            label for label in near.labels
            if label in self.ontology.concepts
        ]
        if not near_concepts:
            return None
        near_nodes = {
            key
            for concept in near_concepts
            for key in self.mapping.resolve_concept(concept)
        }

        # Collect every usage of the far variable and find the list
        # property that will replace it.
        usages = _far_usages(query, far_var)
        if usages is None:
            return None
        if not usages["props"] and not usages["bare_in_count"]:
            # The hop is a pure existence/multiplicity constraint
            # (e.g. count(*) over matches); removing it would change
            # row multiplicity.
            return None
        if _uses_star(query):
            return None
        has_aggregates = any(
            contains_aggregate(item.expr) for item in query.return_items
        )
        if not has_aggregates and not all(
            isinstance(item.expr, PropertyRef)
            and item.expr.var == far_var
            for item in query.return_items
        ):
            # Without aggregation, replacing a far property by the local
            # list turns N matched rows into one list-valued row per
            # near vertex.  That is only the paper's intended shape when
            # the query returns nothing but far-node properties (Q6);
            # mixed projections keep their hop.
            return None
        substitutions: dict[str, str] = {}
        for prop in usages["props"]:
            repl = self._find_owned_replication(
                rel.rel_id, far_concepts, prop, near_nodes
            )
            if repl is None:
                return None
            substitutions[prop] = repl.list_name
        count_list_name: str | None = None
        if usages["bare_in_count"]:
            repl = self._any_owned_replication(
                rel.rel_id, far_concepts, near_nodes
            )
            if repl is None:
                return None
            count_list_name = repl.list_name

        # Rebuild the pattern without the far node and its hop.
        new_nodes = tuple(
            node for node in pattern.nodes if node.var != far_var
        )
        new_rels = pattern.rels[:h_index] + pattern.rels[h_index + 1:]
        if len(new_nodes) != len(pattern.nodes) - 1:
            return None  # far var appears twice in the chain: keep hop
        new_pattern = PathPattern(new_nodes, new_rels, None)
        new_query = query.with_(
            patterns=(
                query.patterns[:p_index]
                + (new_pattern,)
                + query.patterns[p_index + 1:]
            )
        )
        new_query = _replace_far_usages(
            new_query, far_var, near_var, substitutions, count_list_name
        )

        # Guard: the near vertex must actually have partners.
        guard_list = (
            next(iter(substitutions.values()), None) or count_list_name
        )
        if guard_list is not None:
            guard = NullCheck(PropertyRef(near_var, guard_list), True)
            where = (
                guard if new_query.where is None
                else BoolOp("and", (new_query.where, guard))
            )
            new_query = new_query.with_(where=where)
        return new_query

    def _find_owned_replication(
        self,
        rel_id: str,
        far_concepts: list[str],
        prop: str,
        near_nodes: set[str],
    ):
        """A replication of the far property covering *every* near node.

        The rewritten query reads the list property off every vertex
        matching the near label, which spans all schema nodes the near
        concept resolves to; each of them must carry the same list via
        the same relationship, or contents would mix (the loader
        populates each node's list from its own ``via_rel``).
        """
        for concept in far_concepts:
            source_candidates = [concept]
            # The property may originate further up a collapsed
            # hierarchy (e.g. summary lives on DrugInteraction but the
            # query labels the node DrugFoodInteraction).
            source_candidates.extend(
                c for c in self.ontology.concepts
                if prop in self.ontology.concept(c).properties
            )
            for source in dict.fromkeys(source_candidates):
                repl = self._covering_replication(
                    rel_id, source, prop, near_nodes
                )
                if repl is not None:
                    return repl
        return None

    def _covering_replication(
        self, rel_id: str, source: str, prop: str, near_nodes: set[str]
    ):
        owners = {
            r.owner_node: r
            for r in self.mapping.replications_for_rel(rel_id)
            if r.source_concept == source and r.source_property == prop
        }
        if not near_nodes or not near_nodes <= set(owners):
            return None
        names = {owners[node].list_name for node in near_nodes}
        if len(names) != 1:
            return None
        repl = owners[next(iter(near_nodes))]
        if self._list_name_ambiguous(repl, near_nodes):
            return None
        return repl

    def _list_name_ambiguous(self, repl, near_nodes: set[str]) -> bool:
        """Could another relationship's values share this list name?

        Vertices merge along collapsed relationships, so a vertex
        matched by the near label may also belong to another schema
        node that carries the *same* list name populated via a
        *different* relationship.  That only happens when the other
        owner's concepts share a vertex component with the near
        concepts - in which case the list content is ambiguous and the
        hop must be kept.
        """
        near_components = {
            self.mapping.component_of(concept)
            for node in near_nodes
            for concept in self.mapping.node_concepts(node)
        }
        for other in self.mapping.replications:
            if other.rel_id == repl.rel_id:
                continue
            if other.list_name != repl.list_name:
                continue
            other_components = {
                self.mapping.component_of(concept)
                for concept in self.mapping.node_concepts(
                    other.owner_node
                )
            }
            if near_components & other_components:
                return True
        return False

    def _any_owned_replication(
        self,
        rel_id: str,
        far_concepts: list[str],
        near_nodes: set[str],
    ):
        by_key: dict[tuple[str, str, str], set[str]] = {}
        candidates: dict[tuple[str, str, str], object] = {}
        for repl in self.mapping.replications_for_rel(rel_id):
            key = (
                repl.source_concept, repl.source_property, repl.list_name
            )
            by_key.setdefault(key, set()).add(repl.owner_node)
            candidates[key] = repl
        for key, owners in by_key.items():
            if near_nodes <= owners and not self._list_name_ambiguous(
                candidates[key], near_nodes
            ):
                return candidates[key]
        return None


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _ensure_node_vars(query: Query) -> Query:
    """Give every anonymous node pattern a fresh variable."""
    counter = 0
    new_patterns = []
    for pattern in query.patterns:
        nodes = []
        for node in pattern.nodes:
            if node.var is None:
                node = replace(node, var=f"_rw{counter}")
                counter += 1
            nodes.append(node)
        new_patterns.append(
            PathPattern(tuple(nodes), pattern.rels, pattern.path_var)
        )
    return query.with_(patterns=tuple(new_patterns))


def _substitute_everywhere(query: Query, old: str, new: str) -> Query:
    patterns = []
    for pattern in query.patterns:
        nodes = tuple(
            replace(node, var=new) if node.var == old else node
            for node in pattern.nodes
        )
        patterns.append(PathPattern(nodes, pattern.rels, pattern.path_var))
    return Query(
        patterns=tuple(patterns),
        return_items=tuple(
            ReturnItem(substitute_variable(item.expr, old, new), item.alias)
            for item in query.return_items
        ),
        where=(
            substitute_variable(query.where, old, new)
            if query.where is not None else None
        ),
        distinct=query.distinct,
        order_by=tuple(
            OrderItem(substitute_variable(o.expr, old, new), o.descending)
            for o in query.order_by
        ),
        limit=query.limit,
    )


def _uses_star(query: Query) -> bool:
    for item in query.return_items:
        for node in walk(item.expr):
            if isinstance(node, Star):
                return True
    return False


def _hop_count(query: Query, var: str) -> int:
    count = 0
    for pattern in query.patterns:
        for left, _rel, right in pattern.hops():
            if left.var == var:
                count += 1
            if right.var == var:
                count += 1
    return count


def _far_usages(query: Query, var: str) -> dict | None:
    """Classify uses of ``var`` outside the pattern.

    Returns ``{"props": set of property names, "bare_in_count": bool}``
    or None when the variable is used in a way that blocks the rewrite:

    * returned bare / collected as a vertex / ordered on;
    * used as a *grouping key* (a property reference outside any
      aggregate) while the query aggregates - replacing a scalar
      grouping key with a list property would change the grouping.
    """
    props: set[str] = set()
    bare_in_count = False
    has_aggregates = any(
        contains_aggregate(item.expr) for item in query.return_items
    )

    exprs: list[Expr] = [item.expr for item in query.return_items]
    if query.where is not None:
        exprs.append(query.where)
    exprs.extend(order.expr for order in query.order_by)

    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, PropertyRef) and node.var == var:
                props.add(node.prop)
            elif isinstance(node, FuncCall):
                for arg in node.args:
                    if isinstance(arg, Variable) and arg.name == var:
                        if node.name == "count" and not node.distinct:
                            bare_in_count = True
                        else:
                            return None
    # Grouping-key check: with aggregation, every far property use must
    # sit inside an aggregate argument.
    if has_aggregates:
        for expr in exprs:
            if _prop_use_outside_aggregate(expr, var):
                return None
    # Re-scan for bare variable uses not wrapped in count().
    for expr in exprs:
        if _has_unwrapped_bare(expr, var):
            return None
    return {"props": props, "bare_in_count": bare_in_count}


def _prop_use_outside_aggregate(expr: Expr, var: str) -> bool:
    """Does ``var.prop`` appear outside every aggregate function?"""
    if isinstance(expr, PropertyRef):
        return expr.var == var
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return False  # inside an aggregate: fine
        return any(
            _prop_use_outside_aggregate(a, var) for a in expr.args
        )
    if isinstance(expr, BoolOp):
        return any(
            _prop_use_outside_aggregate(o, var) for o in expr.operands
        )
    if isinstance(expr, NullCheck):
        return _prop_use_outside_aggregate(expr.expr, var)
    if hasattr(expr, "lhs"):
        return _prop_use_outside_aggregate(
            expr.lhs, var
        ) or _prop_use_outside_aggregate(expr.rhs, var)
    if hasattr(expr, "operand"):
        return _prop_use_outside_aggregate(expr.operand, var)
    return False


def _has_unwrapped_bare(expr: Expr, var: str) -> bool:
    if isinstance(expr, Variable):
        return expr.name == var
    if isinstance(expr, PropertyRef):
        return False
    if isinstance(expr, FuncCall):
        if expr.name == "count" and not expr.distinct:
            return any(
                _has_unwrapped_bare(arg, var)
                for arg in expr.args
                if not isinstance(arg, Variable)
            )
        return any(_has_unwrapped_bare(arg, var) for arg in expr.args)
    if isinstance(expr, NullCheck):
        return _has_unwrapped_bare(expr.expr, var)
    if isinstance(expr, BoolOp):
        return any(_has_unwrapped_bare(o, var) for o in expr.operands)
    if hasattr(expr, "lhs"):
        return _has_unwrapped_bare(expr.lhs, var) or _has_unwrapped_bare(
            expr.rhs, var
        )
    if hasattr(expr, "operand"):
        return _has_unwrapped_bare(expr.operand, var)
    return False


def _replace_far_usages(
    query: Query,
    far_var: str,
    near_var: str,
    substitutions: dict[str, str],
    count_list_name: str | None,
) -> Query:
    def transform(expr: Expr) -> Expr:
        if isinstance(expr, PropertyRef) and expr.var == far_var:
            return PropertyRef(near_var, substitutions[expr.prop])
        if isinstance(expr, FuncCall):
            new_args = tuple(transform(arg) for arg in expr.args)
            flatten = expr.flatten
            if expr.name in AGGREGATE_FUNCTIONS:
                if any(
                    isinstance(a, Variable) and a.name == far_var
                    for a in expr.args
                ):
                    # count(f) -> count over the flattened list property
                    new_args = tuple(
                        PropertyRef(near_var, count_list_name)
                        if isinstance(a, Variable) and a.name == far_var
                        else a
                        for a in new_args
                    )
                    flatten = True
                elif any(
                    isinstance(a, PropertyRef) and a.var == far_var
                    for a in expr.args
                ):
                    flatten = True
            return replace(expr, args=new_args, flatten=flatten)
        if isinstance(expr, BoolOp):
            return BoolOp(
                expr.op, tuple(transform(o) for o in expr.operands)
            )
        if isinstance(expr, NullCheck):
            return NullCheck(transform(expr.expr), expr.negated)
        if hasattr(expr, "lhs"):
            return replace(
                expr, lhs=transform(expr.lhs), rhs=transform(expr.rhs)
            )
        if hasattr(expr, "operand"):
            return replace(expr, operand=transform(expr.operand))
        return expr

    return Query(
        patterns=query.patterns,
        return_items=tuple(
            ReturnItem(transform(item.expr), item.alias)
            for item in query.return_items
        ),
        where=(
            transform(query.where) if query.where is not None else None
        ),
        distinct=query.distinct,
        order_by=tuple(
            OrderItem(transform(o.expr), o.descending)
            for o in query.order_by
        ),
        limit=query.limit,
    )
