"""Workload execution: run query lists, collect latency and work counts.

Latency here is the *simulated* backend latency (deterministic, see
:mod:`repro.graphdb.backends`); wall-clock execution time is also
recorded for completeness.  Execution goes through the driver API
(:mod:`repro.graphdb.api`): one :class:`~repro.graphdb.api.Session` -
and hence one page cache and one plan cache - is shared across a
workload run, as a real backend connection would be.  Pass
``collect_rows=True`` to keep each query's result rows on its
:class:`QueryRun` - the equivalence checks use this to compare result
multisets without re-running the workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.graphdb.api import Database
from repro.graphdb.backends import BackendProfile
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.metrics import ExecutionMetrics
from repro.graphdb.query.ast import Query


@dataclass
class QueryRun:
    qid: str
    rows: int
    latency_ms: float
    wall_ms: float
    metrics: ExecutionMetrics
    #: Result rows, kept only when the workload ran with collect_rows.
    result_rows: list[tuple] | None = None


@dataclass
class WorkloadReport:
    backend: str
    graph_name: str
    runs: list[QueryRun] = field(default_factory=list)

    @property
    def total_latency_ms(self) -> float:
        return sum(run.latency_ms for run in self.runs)

    @property
    def total_wall_ms(self) -> float:
        return sum(run.wall_ms for run in self.runs)

    @property
    def total_metrics(self) -> ExecutionMetrics:
        total = ExecutionMetrics()
        for run in self.runs:
            total.merge(run.metrics)
        return total

    def latency_of(self, qid: str) -> float:
        return sum(r.latency_ms for r in self.runs if r.qid == qid)

    def summary(self) -> str:
        return (
            f"{self.graph_name} on {self.backend}: "
            f"{len(self.runs)} queries, "
            f"{self.total_latency_ms:.1f} ms simulated "
            f"({self.total_wall_ms:.1f} ms wall)"
        )


def resolve_graph(graph: PropertyGraph | str | Path) -> PropertyGraph:
    """Accept a live graph, a snapshot file, or a durable data dir.

    Paths are recovered read-only through the storage subsystem: a
    directory goes through snapshot + WAL replay
    (:func:`repro.graphdb.storage.recover_graph`), a file is loaded as
    a bare snapshot.  Mutations made through the returned graph are
    *not* logged - open a :class:`~repro.graphdb.storage.GraphStore`
    for that.
    """
    if isinstance(graph, PropertyGraph):
        return graph
    from repro.graphdb.storage import read_snapshot, recover_graph

    path = Path(graph)
    if path.is_dir():
        return recover_graph(path)
    return read_snapshot(path)


def run_queries(
    graph: PropertyGraph | str | Path,
    profile: BackendProfile,
    queries: list[tuple[str, Query | str]],
    collect_rows: bool = False,
    cost_based: bool = True,
) -> WorkloadReport:
    """Execute ``queries`` (qid, text-or-AST pairs) on one session.

    ``graph`` may also be a path to a snapshot file or a durable data
    directory (see :func:`resolve_graph`), so persisted workloads can
    be replayed without manually recovering the store first.
    ``cost_based=False`` runs the legacy syntactic planner instead of
    the statistics-driven one (the planner benchmark's baseline).
    """
    graph = resolve_graph(graph)
    if cost_based:
        # Materialize statistics outside the timed loop: the one-time
        # O(V+E) batch build must not inflate the first query's
        # wall_ms.
        graph.statistics()
    database = Database(graph, profile=profile)
    report = WorkloadReport(backend=profile.name, graph_name=graph.name)
    with database.session(cost_based=cost_based) as session:
        for qid, query in queries:
            started = time.perf_counter()
            result = session.run(query)
            rows = (
                [tuple(record) for record in result]
                if collect_rows else None
            )
            summary = result.consume()
            wall_ms = (time.perf_counter() - started) * 1000.0
            report.runs.append(
                QueryRun(
                    qid=qid,
                    rows=summary.rows,
                    latency_ms=summary.latency_ms,
                    wall_ms=wall_ms,
                    metrics=summary.metrics,
                    result_rows=rows,
                )
            )
    return report


def run_single(
    graph: PropertyGraph | str | Path,
    profile: BackendProfile,
    query: Query | str,
    qid: str = "q",
    collect_rows: bool = False,
    cost_based: bool = True,
) -> QueryRun:
    return run_queries(
        graph, profile, [(qid, query)],
        collect_rows=collect_rows, cost_based=cost_based,
    ).runs[0]
