"""The paper's microbenchmark queries (Section 5.3, Figure 11).

Q1-Q4 are graph pattern-matching queries (3 vertices, 2 edges), Q5-Q8
vertex property lookups, Q9-Q12 aggregations.  MED owns Q1, Q2, Q5, Q6,
Q9, Q10; FIN owns Q3, Q4, Q7, Q8, Q11, Q12 - the same assignment as the
paper's Figure 11 x-axis labels.  The texts live with their datasets
(:mod:`repro.datasets.med` / :mod:`repro.datasets.fin`); this module
groups them by query class.
"""

from __future__ import annotations

from repro.datasets.fin import FIN_QUERIES
from repro.datasets.med import MED_QUERIES

#: qid -> (dataset name, query class)
QUERY_CATALOG: dict[str, tuple[str, str]] = {
    "Q1": ("MED", "pattern"),
    "Q2": ("MED", "pattern"),
    "Q3": ("FIN", "pattern"),
    "Q4": ("FIN", "pattern"),
    "Q5": ("MED", "lookup"),
    "Q6": ("MED", "lookup"),
    "Q7": ("FIN", "lookup"),
    "Q8": ("FIN", "lookup"),
    "Q9": ("MED", "aggregation"),
    "Q10": ("MED", "aggregation"),
    "Q11": ("FIN", "aggregation"),
    "Q12": ("FIN", "aggregation"),
}

ALL_QUERIES: dict[str, str] = {**MED_QUERIES, **FIN_QUERIES}


def queries_for_dataset(name: str) -> dict[str, str]:
    return {
        qid: ALL_QUERIES[qid]
        for qid, (dataset, _cls) in QUERY_CATALOG.items()
        if dataset == name
    }


def query_class(qid: str) -> str:
    return QUERY_CATALOG[qid][1]
