"""Benchmark queries, workload generation, rewriting, and execution."""

from repro.workload.generator import WorkloadQuery, mixed_workload
from repro.workload.queries import (
    ALL_QUERIES,
    QUERY_CATALOG,
    queries_for_dataset,
    query_class,
)
from repro.workload.rewriter import QueryRewriter
from repro.workload.runner import (
    QueryRun,
    WorkloadReport,
    run_queries,
    run_single,
)

__all__ = [
    "ALL_QUERIES",
    "QUERY_CATALOG",
    "QueryRewriter",
    "QueryRun",
    "WorkloadQuery",
    "WorkloadReport",
    "mixed_workload",
    "queries_for_dataset",
    "query_class",
    "run_queries",
    "run_single",
]
