"""Query-workload generation (Section 5.3's "Graph Query Workload").

The paper builds, per dataset, a mixed workload of 15 queries spanning
the three query classes, with access frequencies following a Zipf
distribution over the ontology's concepts.  We sample (with replacement)
from the dataset's microbenchmark queries using Zipf weights over the
query ranks, which concentrates the workload on the queries touching
key concepts, matching the paper's setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.exceptions import DataGenerationError


@dataclass(frozen=True)
class WorkloadQuery:
    qid: str
    text: str


def mixed_workload(
    dataset: Dataset,
    size: int = 15,
    seed: int = 5,
    distribution: str = "zipf",
    s: float = 1.0,
) -> list[WorkloadQuery]:
    """A mixed workload of ``size`` queries over the dataset's templates."""
    templates = sorted(dataset.queries.items())
    if not templates:
        raise DataGenerationError(
            f"dataset {dataset.name!r} has no query templates"
        )
    if distribution == "zipf":
        weights = [1.0 / (rank + 1) ** s for rank in range(len(templates))]
    elif distribution == "uniform":
        weights = [1.0] * len(templates)
    else:
        raise DataGenerationError(
            f"unknown workload distribution {distribution!r}"
        )
    rng = random.Random(seed)
    chosen = rng.choices(templates, weights=weights, k=size)
    return [WorkloadQuery(qid, text) for qid, text in chosen]
