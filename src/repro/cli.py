"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``optimize``
    Read an ontology (JSON or the OWL-ish functional syntax), optimize
    its schema, and print DDL::

        python -m repro optimize onto.json --budget 0.5 --format cypher

``inspect``
    Summarize an ontology: element counts, OntologyPR key concepts, and
    the priced rule applications::

        python -m repro inspect onto.json

``demo``
    Run a built-in dataset end-to-end (optimize, load, rewrite,
    compare DIR vs OPT latency)::

        python -m repro demo med --scale 0.5

    ``--explain`` additionally prints each query's ``EXPLAIN ANALYZE``
    plan (scan access path, expand order, pushed-down predicates, and
    the cost-based planner's estimated vs. actual rows per step) on
    both the direct and the optimized graph.  ``--data-dir DIR`` memoizes
    the generated graphs as binary snapshots under ``DIR``, so repeat
    runs load in milliseconds instead of regenerating.

``save``
    Materialize a built-in dataset graph into a durable data
    directory (snapshot + write-ahead log)::

        python -m repro save med ./med-data --scale 0.5 --graph opt

``load``
    Recover a data directory (latest snapshot + WAL replay), print
    the recovery report, and optionally run a query or compact::

        python -m repro load ./med-data --query "MATCH (d:Drug) RETURN count(*)"
        python -m repro load ./med-data --checkpoint

``stats``
    Recover a data directory read-only and dump its shape as JSON:
    label and edge-type cardinalities plus, per label-set table, the
    row count and each property column's dtype::

        python -m repro stats ./med-data

``query``
    Run one Cypher-subset query against a data directory (recovered
    read-only) through the driver API, with ``$name`` parameters bound
    from ``--param`` flags::

        python -m repro query ./med-data \\
            'MATCH (d:Drug {name: $name}) RETURN d.name' \\
            --param name=aspirin --format json

    (Single-quote the query in a shell: ``$name`` inside double
    quotes would be expanded by the shell, not bound by the engine.)
    ``--timeout`` and ``--max-rows`` arm the driver's query
    guardrails.  ``--trace`` records a per-query span tree (parse ->
    plan -> execute with per-operator timings) and prints it after
    the result; with ``--format json`` the payload carries the full
    result summary (work metrics, latency, plan digest) and the
    trace as structured data.

``serve``
    Serve a data directory over TCP (the ``repro://`` wire protocol),
    with an optional HTTP sidecar for ``/health`` and ``/metrics``::

        python -m repro serve ./med-data --port 7688 --http-port 7689

    Any number of clients read concurrently (each query pinned to the
    graph epoch it started on); writes serialize through one writer
    slot with group-committed fsyncs.  ``--readonly`` rejects writes
    at the protocol level; ``--max-connections`` bounds concurrent
    clients (excess connections are refused with an ERROR frame);
    ``--idle-timeout`` / ``--query-timeout`` / ``--max-rows`` arm the
    server-side guardrails.  ``repro query`` accepts ``repro://`` URLs
    in place of a data directory, so a remote smoke test is::

        python -m repro query repro://127.0.0.1:7688 \\
            'MATCH (d:Drug) RETURN count(*) AS n' --format json

    SIGINT/SIGTERM shut down cleanly (flushing the WAL).

``metrics``
    Recover a data directory (populating the recovery, WAL, and plan
    instruments), optionally run queries or a checkpoint against it,
    and dump the process-global metrics registry::

        python -m repro metrics ./med-data \\
            --query 'MATCH (d:Drug) RETURN count(*)' --format prom

    ``--format json`` (default) prints the registry snapshot;
    ``prom`` prints a Prometheus text exposition.

``verify``
    Audit a data directory offline: validate every generation's
    snapshot checksums and WAL framing without repairing anything,
    and print a per-generation JSON report::

        python -m repro verify ./med-data

    Exits 0 when every artifact is intact, 1 when corruption (or a
    torn WAL tail) was found, 2 when the path is not a data
    directory.

Exit codes: 0 on success, 1 for invalid inputs, query errors, or
corrupt/missing data (:class:`~repro.exceptions.ReproError`, I/O and
JSON errors), 2 for command-line usage errors (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__

from repro.bench.harness import build_pipeline
from repro.bench.reporting import ExperimentTable, speedup
from repro.exceptions import ReproError
from repro.graphdb.backends import NEO4J_LIKE
from repro.ontology.io import load_owl_functional, ontology_from_dict
from repro.ontology.model import Ontology
from repro.ontology.stats import synthesize_statistics
from repro.ontology.validation import validate_ontology
from repro.optimizer import CostBenefitModel, ontology_pagerank, optimize
from repro.rules.base import Thresholds
from repro.schema.ddl import to_cypher_ddl, to_gsql
from repro.workload.runner import run_queries


def load_ontology(path: str) -> Ontology:
    """Load a JSON or OWL-ish ontology file."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        ontology = ontology_from_dict(json.loads(text))
    else:
        ontology = load_owl_functional(text, name=Path(path).stem)
    validate_ontology(ontology)
    return ontology


def _common_inputs(args) -> tuple[Ontology, object, object, Thresholds]:
    ontology = load_ontology(args.ontology)
    stats = synthesize_statistics(
        ontology, base_cardinality=args.base_cardinality
    )
    from repro.ontology.workload import WorkloadSummary

    workload = (
        WorkloadSummary.zipf(ontology)
        if args.workload == "zipf"
        else WorkloadSummary.uniform(ontology)
    )
    thresholds = Thresholds(args.theta1, args.theta2)
    return ontology, stats, workload, thresholds


def cmd_optimize(args) -> int:
    ontology, stats, workload, thresholds = _common_inputs(args)
    model = CostBenefitModel(ontology, stats, workload, thresholds)
    budget = (
        None if args.budget is None
        else model.budget_for_fraction(args.budget)
    )
    result = optimize(ontology, stats, budget, workload, thresholds)
    print(f"# {result.summary()}", file=sys.stderr)
    if args.format == "gsql":
        print(to_gsql(result.schema))
    else:
        print(to_cypher_ddl(result.schema))
    return 0


def cmd_inspect(args) -> int:
    ontology, stats, workload, thresholds = _common_inputs(args)
    print(ontology.summary())
    ranks = ontology_pagerank(ontology)
    top = sorted(
        ontology.concepts, key=lambda c: -ranks[c]
    )[: args.top]
    print(f"\nTop {len(top)} concepts by OntologyPR:")
    for concept in top:
        print(f"  {ranks[concept]:.4f}  {concept}")
    model = CostBenefitModel(ontology, stats, workload, thresholds)
    table = ExperimentTable(
        "\nPriced rule applications",
        ["rule family", "items", "total benefit", "total cost (B)"],
    )
    by_family: dict[str, list] = {}
    for item in model.items:
        by_family.setdefault(item.rel_type.value, []).append(item)
    for family, items in sorted(by_family.items()):
        table.add_row(
            family, len(items),
            round(sum(i.benefit for i in items), 1),
            sum(i.cost for i in items),
        )
    print(table.render())
    return 0


def _build_dataset(name: str):
    from repro.datasets import build_fin, build_med

    return build_fin() if name == "fin" else build_med()


def cmd_demo(args) -> int:
    dataset = _build_dataset(args.dataset)
    pipeline = build_pipeline(
        dataset, scale=args.scale, cache_dir=args.data_dir
    )
    print(pipeline.result.summary())
    print(pipeline.dir_graph.summary())
    print(pipeline.opt_graph.summary())
    if args.explain:
        with pipeline.database("dir").session() as dir_session, \
                pipeline.database("opt").session() as opt_session:
            for qid in sorted(dataset.queries, key=lambda q: int(q[1:])):
                print(f"\n{qid} on DIR:")
                print(
                    dir_session.explain(dataset.queries[qid], analyze=True)
                )
                print(f"{qid} on OPT (rewritten):")
                print(
                    opt_session.explain(
                        pipeline.rewritten[qid], analyze=True
                    )
                )
    table = ExperimentTable(
        f"{dataset.name} microbenchmark (neo4j-like, ms simulated)",
        ["query", "DIR", "OPT", "speedup"],
    )
    for qid in sorted(dataset.queries, key=lambda q: int(q[1:])):
        dir_run = run_queries(
            pipeline.dir_graph, NEO4J_LIKE,
            [(qid, dataset.queries[qid])],
        ).runs[0]
        opt_run = run_queries(
            pipeline.opt_graph, NEO4J_LIKE,
            [(qid, pipeline.rewritten[qid])],
        ).runs[0]
        table.add_row(
            qid, round(dir_run.latency_ms, 2),
            round(opt_run.latency_ms, 2),
            round(speedup(dir_run.latency_ms, opt_run.latency_ms), 2),
        )
    print(table.render())
    return 0


def cmd_save(args) -> int:
    from repro.data.loader import load_direct
    from repro.graphdb.storage import GraphStore

    dataset = _build_dataset(args.dataset)
    if args.graph == "opt":
        pipeline = build_pipeline(dataset, scale=args.scale)
        graph = pipeline.opt_graph
    else:
        graph = load_direct(
            dataset.logical(scale=args.scale),
            name=f"{dataset.name}-DIR",
        )
    store = GraphStore.create(
        args.data_dir, graph, overwrite=args.force
    )
    store.close()
    print(f"saved {graph.summary()}")
    print(f"  -> {Path(args.data_dir).resolve()} "
          f"(generation {store.generation})")
    return 0


def cmd_load(args) -> int:
    from repro.exceptions import StorageError
    from repro.graphdb.api import connect

    with connect(args.data_dir, create=False) as db:
        if db.store is None or db.store.recovery is None:
            # connect() also accepts bare snapshot files; load is
            # about recovering a *directory* (WAL replay, checkpoint).
            raise StorageError(
                f"{args.data_dir} is not a data directory "
                "(use 'repro query' for snapshot files)"
            )
        print(f"recovered: {db.store.recovery.summary()}")
        print(db.graph.summary())
        if args.query:
            with db.session() as session:
                result = session.run(args.query)
                for record in result:
                    print(
                        "  " + "\t".join(str(v) for v in record)
                    )
                summary = result.consume()
            print(f"({summary.rows} row(s), "
                  f"{summary.latency_ms:.2f} ms simulated)")
        if args.checkpoint:
            snapshot_path = db.checkpoint()
            print(f"checkpointed -> {snapshot_path.name}")
    return 0


def _jsonable(value):
    """Result values as JSON-encodable structures.

    Vertex/edge bindings become ``{"vertex": id}`` / ``{"edge": id}``
    markers; lists recurse; everything else is a JSON scalar already.
    """
    from repro.graphdb.query.executor import EdgeBinding, VertexBinding

    if isinstance(value, VertexBinding):
        return {"vertex": value.vid}
    if isinstance(value, EdgeBinding):
        return {"edge": value.eid}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def cmd_verify(args) -> int:
    from repro.graphdb.storage import verify_directory

    try:
        report = verify_directory(args.data_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


def cmd_query(args) -> int:
    from repro.graphdb.api import connect

    params = dict(args.params or [])
    with connect(
        args.data_dir, readonly=True, parallelism=args.parallel
    ) as db:
        with db.session() as session:
            result = session.run(
                args.query, params,
                timeout=args.timeout, max_rows=args.max_rows,
                trace=args.trace,
            )
            records = [record.values() for record in result]
            summary = result.consume()
    if args.format == "json":
        # The full ResultSummary, not just rows: work counters, real
        # and simulated latency, and the executed plan's digest, so a
        # scripted caller gets everything the driver knows.
        payload = {
            "columns": summary.columns,
            "rows": [
                [_jsonable(v) for v in row] for row in records
            ],
            "row_count": summary.rows,
            "latency_ms": round(summary.latency_ms, 3),
            "elapsed_ms": round(summary.elapsed_ms, 3),
            "plan_digest": summary.plan_digest,
            "mode": summary.mode,
            "parameters": {
                name: _jsonable(value)
                for name, value in summary.parameters.items()
            },
            "metrics": summary.metrics.as_dict(),
        }
        if args.explain:
            payload["plan"] = summary.plan.splitlines()
        if args.trace:
            payload["trace"] = summary.trace.as_dict()
        print(json.dumps(payload, indent=2))
        return 0
    table = ExperimentTable(
        f"{len(records)} row(s), {summary.latency_ms:.2f} ms simulated",
        summary.columns,
    )
    for row in records:
        table.add_row(*[str(v) for v in row])
    print(table.render())
    if args.explain:
        print("\nplan:")
        print(summary.plan)
    if args.trace:
        print("\ntrace:")
        print(summary.trace.render())
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.graphdb import faults
    from repro.graphdb.api import connect
    from repro.graphdb.server import GraphServer, ServerConfig

    database = connect(
        args.data_dir, create=False, readonly=args.readonly
    )
    server = GraphServer(database, ServerConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        readonly=args.readonly,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        query_timeout=args.query_timeout,
        max_rows=args.max_rows,
        group_window=args.group_window,
    ))

    async def _serve() -> None:
        await server.start()
        host, port = server.address
        mode = " (read-only)" if server.readonly else ""
        print(
            f"serving {args.data_dir} on repro://{host}:{port}{mode}",
            flush=True,
        )
        if server.http_address is not None:
            http_host, http_port = server.http_address
            print(
                f"http sidecar on http://{http_host}:{http_port} "
                "(/health, /metrics)",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        try:
            await server.serve_forever()
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(_serve())
    except faults.SimulatedCrash as crash:
        print(f"server crashed (injected fault: {crash})",
              file=sys.stderr)
        return 1
    print("server stopped", flush=True)
    return 0


def cmd_metrics(args) -> int:
    from repro.graphdb.api import connect
    from repro.graphdb.observe import render_prometheus

    # --checkpoint needs a writable open; plain dumps recover
    # read-only (which still exercises - and counts - recovery).
    writable = bool(args.checkpoint)
    with connect(args.data_dir, readonly=not writable) as db:
        for query in args.queries or []:
            with db.session() as session:
                session.run(query).consume()
        if args.checkpoint:
            db.checkpoint()
        snapshot = db.metrics()
    if args.format == "prom":
        print(render_prometheus(), end="")
    else:
        print(json.dumps(snapshot, indent=2))
    return 0


def cmd_stats(args) -> int:
    from collections import Counter

    from repro.exceptions import StorageError
    from repro.graphdb.storage import recover_graph
    from repro.graphdb.storage.recovery import RecoveryManager

    data_dir = Path(args.data_dir)
    manager = RecoveryManager(data_dir)
    if not data_dir.is_dir() or not (
        manager.snapshot_generations() or manager.wal_generations()
    ):
        raise StorageError(f"no graph store at {data_dir}")
    graph = recover_graph(data_dir)
    symbols = graph.symbols
    edge_types = Counter(
        symbols.name(sid) for sid in graph._e_label if sid >= 0
    )
    tables = [
        {
            "labels": sorted(table.labels),
            "rows": table.live,
            "columns": {
                symbols.name(key_sid): column.kind
                for key_sid, column in sorted(table.columns.items())
                if column.count
            },
        }
        for table in graph.iter_tables()
        if table.live
    ]
    report = {
        "name": graph.name,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "labels": {
            label: graph.label_count(label) for label in graph.labels()
        },
        "edge_types": dict(sorted(edge_types.items())),
        "tables": tables,
    }
    print(json.dumps(report, indent=2))
    return 0


def _param_kv(text: str) -> tuple[str, object]:
    """``--param NAME=VALUE``; VALUE parses as JSON, else raw string."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=VALUE, got {text!r}"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return name, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ontology-driven property graph schema optimization "
            "(ICDE 2021 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("ontology", help="ontology file (JSON or OWL-ish)")
        p.add_argument("--base-cardinality", type=int, default=1000,
                       help="synthetic instance count per leaf concept")
        p.add_argument("--workload", choices=("uniform", "zipf"),
                       default="uniform")
        p.add_argument("--theta1", type=float, default=0.66)
        p.add_argument("--theta2", type=float, default=0.33)

    p_opt = sub.add_parser("optimize", help="emit an optimized schema")
    add_common(p_opt)
    p_opt.add_argument(
        "--budget", type=float, default=None,
        help="space budget as a fraction of the NSC overhead "
             "(omit for unconstrained Algorithm 5)",
    )
    p_opt.add_argument("--format", choices=("cypher", "gsql"),
                       default="cypher")
    p_opt.set_defaults(fn=cmd_optimize)

    p_ins = sub.add_parser("inspect", help="summarize an ontology")
    add_common(p_ins)
    p_ins.add_argument("--top", type=int, default=10,
                       help="how many key concepts to list")
    p_ins.set_defaults(fn=cmd_inspect)

    p_demo = sub.add_parser("demo", help="run a built-in dataset demo")
    p_demo.add_argument("dataset", choices=("med", "fin"))
    p_demo.add_argument(
        "--scale", type=float, default=0.5, metavar="FACTOR",
        help="cardinality multiplier for the generated data (10-100x "
             "supported; snapshot-cache keys include the scale)",
    )
    p_demo.add_argument(
        "--explain", action="store_true",
        help="print each query's EXPLAIN ANALYZE plan (estimated vs "
             "actual rows per step) before the latency table",
    )
    p_demo.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="memoize the generated graphs as snapshots under DIR "
             "(repeat runs load instead of regenerating)",
    )
    p_demo.set_defaults(fn=cmd_demo)

    p_save = sub.add_parser(
        "save", help="materialize a dataset graph into a data directory"
    )
    p_save.add_argument("dataset", choices=("med", "fin"))
    p_save.add_argument("data_dir", help="target data directory")
    p_save.add_argument(
        "--scale", type=float, default=0.5, metavar="FACTOR",
        help="cardinality multiplier for the generated data (10-100x "
             "supported)",
    )
    p_save.add_argument(
        "--graph", choices=("dir", "opt"), default="dir",
        help="which materialization to persist (default: dir)",
    )
    p_save.add_argument(
        "--force", action="store_true",
        help="overwrite a non-empty data directory",
    )
    p_save.set_defaults(fn=cmd_save)

    p_load = sub.add_parser(
        "load", help="recover a data directory and summarize it"
    )
    p_load.add_argument("data_dir", help="data directory to open")
    p_load.add_argument(
        "--query", default=None,
        help="run one Cypher query against the recovered graph",
    )
    p_load.add_argument(
        "--checkpoint", action="store_true",
        help="compact the WAL into a fresh snapshot before exiting",
    )
    p_load.set_defaults(fn=cmd_load)

    p_stats = sub.add_parser(
        "stats",
        help="dump a data directory's cardinalities and column dtypes",
    )
    p_stats.add_argument("data_dir", help="data directory to inspect")
    p_stats.set_defaults(fn=cmd_stats)

    p_query = sub.add_parser(
        "query",
        help="run one Cypher query against a data directory (read-only)",
    )
    p_query.add_argument(
        "data_dir",
        help="data directory, .rpgs snapshot, or repro:// server URL "
             "to query",
    )
    p_query.add_argument("query", help="Cypher-subset query text")
    p_query.add_argument(
        "--param", dest="params", action="append", type=_param_kv,
        metavar="NAME=VALUE",
        help="bind a $NAME query parameter; VALUE parses as JSON, "
             "falling back to a plain string (repeatable)",
    )
    p_query.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    p_query.add_argument(
        "--explain", action="store_true",
        help="also print the executed plan (est vs actual rows)",
    )
    p_query.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="abort the query when it exceeds this wall-clock budget",
    )
    p_query.add_argument(
        "--max-rows", type=int, default=None, metavar="N",
        help="fail (don't truncate) if the query produces more rows",
    )
    p_query.add_argument(
        "--trace", action="store_true",
        help="record a span tree (parse -> plan -> execute, per-"
             "operator timings) and print it after the result",
    )
    p_query.add_argument(
        "--parallel", type=int, default=None, metavar="WORKERS",
        help="worker processes for morsel-parallel execution "
             "(default: $REPRO_PARALLEL, else serial)",
    )
    p_query.set_defaults(fn=cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="serve a data directory over TCP (repro:// wire protocol)",
    )
    p_serve.add_argument("data_dir", help="data directory to serve")
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    from repro.graphdb.server.protocol import DEFAULT_PORT

    p_serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port for the wire protocol (default: {DEFAULT_PORT}; "
             "0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also serve HTTP /health and /metrics on this port",
    )
    p_serve.add_argument(
        "--readonly", action="store_true",
        help="reject BEGIN/MUTATE at the protocol level",
    )
    p_serve.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="refuse connections beyond this many concurrent clients",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="drop connections idle for longer than this",
    )
    p_serve.add_argument(
        "--query-timeout", type=float, default=None, metavar="SECONDS",
        help="server-side ceiling on per-query wall time",
    )
    p_serve.add_argument(
        "--max-rows", type=int, default=None, metavar="N",
        help="server-side ceiling on rows a query may produce",
    )
    p_serve.add_argument(
        "--group-window", type=float, default=0.0, metavar="SECONDS",
        help="linger this long collecting commits per fsync batch "
             "(0 still batches commits that queue during an fsync)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_metrics = sub.add_parser(
        "metrics",
        help="recover a data directory and dump the engine metrics",
    )
    p_metrics.add_argument("data_dir", help="data directory to open")
    p_metrics.add_argument(
        "--query", dest="queries", action="append", metavar="CYPHER",
        help="run this query before dumping metrics (repeatable)",
    )
    p_metrics.add_argument(
        "--checkpoint", action="store_true",
        help="open writable and checkpoint before dumping (exercises "
             "the WAL and snapshot instruments)",
    )
    p_metrics.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="JSON registry snapshot or Prometheus text exposition",
    )
    p_metrics.set_defaults(fn=cmd_metrics)

    p_verify = sub.add_parser(
        "verify",
        help="audit a data directory's snapshots and WAL (read-only)",
    )
    p_verify.add_argument("data_dir", help="data directory to audit")
    p_verify.set_defaults(fn=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
