"""Fixpoint rule engine (the core of Algorithms 5, 7 and 8).

:func:`transform` starts from the direct mapping of an ontology and
repeatedly applies the enabled rules until the schema state stops changing
("repeat ... until O = O_prev" in Algorithm 5).  With
``Selection.all()`` this is exactly the paper's space-unconstrained
optimization; space-constrained algorithms pass the subset of rule
applications they selected.

Rules are dispatched in sorted relationship-id order, but because every
rule operation is monotone the fixpoint is order-independent (Theorem 3);
``tests/rules/test_confluence.py`` verifies this property with random
orders.
"""

from __future__ import annotations

from repro.exceptions import OptimizationError
from repro.ontology.model import Ontology, Relationship, RelationshipType
from repro.rules.base import SchemaState, Selection, Thresholds
from repro.rules.inheritance import apply_inheritance
from repro.rules.one_to_many import apply_many_to_many, apply_one_to_many
from repro.rules.one_to_one import apply_one_to_one
from repro.rules.union import apply_union

#: Safety bound on fixpoint iterations; real ontologies converge in a
#: handful of rounds (propagation depth is bounded by the ontology
#: diameter).
MAX_ITERATIONS = 1000


def transform(
    ontology: Ontology,
    selection: Selection | None = None,
    thresholds: Thresholds | None = None,
    rule_order: list[str] | None = None,
) -> SchemaState:
    """Run the enabled rules to a fixpoint and return the final state.

    ``rule_order`` overrides the per-iteration dispatch order (used by the
    confluence tests); ids not present are appended in sorted order.
    """
    selection = selection or Selection.all()
    state = SchemaState(ontology, thresholds)
    order = _resolve_order(ontology, rule_order)

    for _ in range(MAX_ITERATIONS):
        before = state.fingerprint()
        for rel_id in order:
            rel = ontology.relationships.get(rel_id)
            if rel is None:
                continue
            _dispatch(state, rel, selection)
        if state.fingerprint() == before:
            return state
    raise OptimizationError(
        f"rule engine did not converge within {MAX_ITERATIONS} iterations"
    )


def direct_state(ontology: Ontology,
                 thresholds: Thresholds | None = None) -> SchemaState:
    """The untransformed direct mapping (the paper's DIR baseline)."""
    return SchemaState(ontology, thresholds)


def _resolve_order(
    ontology: Ontology, rule_order: list[str] | None
) -> list[str]:
    all_ids = sorted(ontology.relationships)
    if not rule_order:
        return all_ids
    ordered = [rid for rid in rule_order if rid in ontology.relationships]
    ordered.extend(rid for rid in all_ids if rid not in set(ordered))
    return ordered


def _dispatch(
    state: SchemaState, rel: Relationship, selection: Selection
) -> bool:
    if rel.rel_type is RelationshipType.ONE_TO_ONE:
        if selection.has_rel(rel.rel_id):
            return apply_one_to_one(state, rel)
        return False
    if rel.rel_type is RelationshipType.UNION:
        if selection.has_rel(rel.rel_id):
            return apply_union(state, rel)
        return False
    if rel.rel_type is RelationshipType.INHERITANCE:
        if selection.has_rel(rel.rel_id):
            return apply_inheritance(state, rel)
        return False
    if rel.rel_type is RelationshipType.ONE_TO_MANY:
        props = selection.props_for(rel.rel_id, "fwd")
        return apply_one_to_many(state, rel, props)
    if rel.rel_type is RelationshipType.MANY_TO_MANY:
        fwd = selection.props_for(rel.rel_id, "fwd")
        rev = selection.props_for(rel.rel_id, "rev")
        return apply_many_to_many(state, rel, fwd, rev)
    raise OptimizationError(
        f"unhandled relationship type {rel.rel_type!r}"
    )  # pragma: no cover - enum is closed
