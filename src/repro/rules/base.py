"""Working state shared by the relationship rules.

The rule engine (Algorithm 5 and its space-constrained variants) operates
on a :class:`SchemaState`: a mutable graph of :class:`SchemaNode` and
:class:`SchemaEdge` that starts as the direct mapping of the ontology and
is transformed by rule applications until a fixpoint.

All rule operations are *monotone*: property sets and edge sets only grow,
and nodes are only ever dropped (with a recorded set of successor nodes).
Monotonicity gives both termination of the fixpoint loop and the
order-independence of Theorem 3.  The Jaccard similarity of every
inheritance relationship is frozen on the input ontology before any rule
fires (Section 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.exceptions import SchemaError
from repro.ontology.model import (
    DataType,
    Ontology,
    RelationshipType,
    jaccard_similarity,
)


class Provenance(Enum):
    """How a property arrived on a schema node."""

    NATIVE = "native"
    FROM_UNION = "from_union"          # copied union -> member
    FROM_PARENT = "from_parent"        # inheritance, js < theta2
    FROM_CHILD = "from_child"          # inheritance, js > theta1
    MERGED = "merged"                  # 1:1 merge
    REPLICATED = "replicated"          # 1:M / M:N list propagation


@dataclass(frozen=True)
class SchemaProperty:
    """A property on a schema node, with provenance for the mapping."""

    name: str
    data_type: DataType
    is_list: bool
    origin_concept: str
    origin_name: str
    provenance: Provenance
    via_rel: str | None = None
    #: "fwd"/"rev" for replicated list properties (which endpoint of
    #: via_rel received the values); None otherwise.
    via_direction: str | None = None

    def renamed(self, name: str) -> "SchemaProperty":
        return replace(self, name=name)


@dataclass
class SchemaNode:
    """A vertex type in the evolving schema."""

    key: str
    concepts: frozenset[str]
    properties: dict[str, SchemaProperty] = field(default_factory=dict)

    def add_property(self, prop: SchemaProperty) -> bool:
        """Add ``prop`` unless a property with the same name exists.

        Returns True when the node changed.  Name-collision keeps the
        existing property: for inheritance merges the shared names are
        exactly the Jaccard intersection and represent the same logical
        property.
        """
        if prop.name in self.properties:
            return False
        self.properties[prop.name] = prop
        return True


@dataclass(frozen=True)
class SchemaEdge:
    """An edge type in the evolving schema."""

    src: str
    dst: str
    label: str
    rel_type: RelationshipType
    origin_rel: str


@dataclass(frozen=True)
class Thresholds:
    """Jaccard thresholds (theta1, theta2) for the inheritance rule."""

    theta1: float = 0.66
    theta2: float = 0.33

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta2 <= self.theta1 <= 1.0:
            raise SchemaError(
                f"invalid thresholds: need 0 <= theta2 <= theta1 <= 1, "
                f"got ({self.theta1}, {self.theta2})"
            )


@dataclass(frozen=True)
class Selection:
    """Which rule applications are enabled.

    * ``select_all`` - NSC mode: every rule fires (Algorithm 5).
    * ``rel_ids`` - enabled union / inheritance / 1:1 relationships.
    * ``list_props`` - enabled ``(rel_id, direction, property)`` items for
      1:M and M:N relationships; direction is ``"fwd"`` (dst properties
      propagate to src, the 1:M direction of the paper) or ``"rev"`` (the
      second half of an M:N).
    """

    select_all: bool = False
    rel_ids: frozenset[str] = frozenset()
    list_props: frozenset[tuple[str, str, str]] = frozenset()

    @classmethod
    def all(cls) -> "Selection":
        return cls(select_all=True)

    @classmethod
    def none(cls) -> "Selection":
        return cls()

    def has_rel(self, rel_id: str) -> bool:
        return self.select_all or rel_id in self.rel_ids

    def props_for(self, rel_id: str, direction: str) -> frozenset[str] | None:
        """Enabled property names for a (rel, direction), or None for all."""
        if self.select_all:
            return None
        return frozenset(
            p for (r, d, p) in self.list_props
            if r == rel_id and d == direction
        )

    def is_empty(self) -> bool:
        return not self.select_all and not self.rel_ids and not self.list_props


class SchemaState:
    """The evolving schema graph plus drop/resolution bookkeeping."""

    def __init__(
        self,
        ontology: Ontology,
        thresholds: Thresholds | None = None,
    ):
        self.ontology = ontology
        self.thresholds = thresholds or Thresholds()
        self.nodes: dict[str, SchemaNode] = {}
        self.edges: set[SchemaEdge] = set()
        #: dropped node key -> direct successor keys
        self._successors: dict[str, tuple[str, ...]] = {}
        #: rel ids whose schema edge was consumed by a rule
        self.consumed: set[str] = set()
        #: union node key -> member node keys that consumed their rel
        self.union_absorbers: dict[str, set[str]] = {}
        #: parent node key -> child node keys that absorbed it (js < theta2)
        self.parent_absorbers: dict[str, set[str]] = {}
        #: child node key -> parent node keys that absorbed it (js > theta1)
        self.up_absorbers: dict[str, set[str]] = {}
        #: concept -> structural rel ids that must be consumed before a
        #: node carrying the concept may drop (static: derived from the
        #: input ontology and the frozen Jaccard bands)
        self._structural_blockers: dict[str, set[str]] = {}
        #: dropped node key -> the concepts it carried when it dropped
        self._dropped_concepts: dict[str, frozenset[str]] = {}
        #: dropped node key -> the successors as originally requested
        #: (pre-resolution; preserves intermediate chain members for
        #: identity-cycle detection)
        self._requested_successors: dict[str, tuple[str, ...]] = {}
        #: frozen Jaccard similarity per inheritance relationship
        self.jaccard: dict[str, float] = {}
        self._init_from_ontology()

    # ------------------------------------------------------------------
    # Initialization: the direct mapping
    # ------------------------------------------------------------------
    def _init_from_ontology(self) -> None:
        for concept in self.ontology.iter_concepts():
            node = SchemaNode(concept.name, frozenset((concept.name,)))
            for prop in concept.properties.values():
                node.add_property(
                    SchemaProperty(
                        name=prop.name,
                        data_type=prop.data_type,
                        is_list=False,
                        origin_concept=concept.name,
                        origin_name=prop.name,
                        provenance=Provenance.NATIVE,
                    )
                )
            self.nodes[node.key] = node
        for rel in self.ontology.iter_relationships():
            self.edges.add(
                SchemaEdge(rel.src, rel.dst, rel.label, rel.rel_type,
                           rel.rel_id)
            )
            if rel.rel_type.is_structural:
                self._structural_blockers.setdefault(rel.src, set()).add(
                    rel.rel_id
                )
            if rel.rel_type is RelationshipType.INHERITANCE:
                js = jaccard_similarity(
                    self.ontology.concept(rel.src).property_names(),
                    self.ontology.concept(rel.dst).property_names(),
                )
                self.jaccard[rel.rel_id] = js
                if js > self.thresholds.theta1:
                    # Merge-up: the child (dst) is absorbed, so this
                    # relationship also gates the child's drop.
                    self._structural_blockers.setdefault(
                        rel.dst, set()
                    ).add(rel.rel_id)

    # ------------------------------------------------------------------
    # Resolution of dropped nodes
    # ------------------------------------------------------------------
    def resolve(self, key: str) -> tuple[str, ...]:
        """Live node keys currently representing ``key`` (transitive)."""
        if key in self.nodes:
            return (key,)
        resolved: list[str] = []
        seen: set[str] = set()

        def walk(k: str) -> None:
            if k in seen:
                return
            seen.add(k)
            if k in self.nodes:
                if k not in resolved:
                    resolved.append(k)
                return
            for successor in self._successors.get(k, ()):
                walk(successor)

        walk(key)
        return tuple(resolved)

    def is_live(self, key: str) -> bool:
        return key in self.nodes

    def canonical_key(self, concepts: frozenset[str]) -> str:
        """Combined node name, ordered by concept declaration order.

        Figure 6 names the merge of ``Indication`` and ``Condition``
        ``IndicationCondition``; joining in the ontology's concept
        insertion order reproduces that.
        """
        order = {name: i for i, name in enumerate(self.ontology.concepts)}
        base = "".join(
            sorted(concepts, key=lambda c: order.get(c, len(order)))
        )
        candidate = base
        suffix = 2
        while candidate in self.nodes:
            candidate = f"{base}_{suffix}"
            suffix += 1
        return candidate

    def drop_node(self, key: str, successors: tuple[str, ...]) -> None:
        """Drop ``key``, rewriting its incident edges - and copying its
        properties and concept set - onto ``successors``.

        Copying the content makes dropping information-preserving: an
        absorber that ran its propagation *before* the dropped node
        acquired further content would otherwise miss it, which breaks
        Theorem 3's order-independence (additions after the drop are
        covered by :meth:`resolve`).

        When the successors resolve back to ``key`` itself (mutual
        absorption, e.g. a union concept whose single member also
        absorbs it through a merge-up inheritance), the two nodes
        denote the same instance set; the node is *renamed* to the
        canonical merged key instead, so every rule order converges to
        the same node.
        """
        if key not in self.nodes:
            raise SchemaError(f"cannot drop unknown node {key!r}")
        live_successors = tuple(
            dict.fromkeys(
                s
                for succ in successors
                for s in self.resolve(succ)
                if s != key
            )
        )
        if not live_successors:
            self._merge_identity(key, successors)
            return
        dropped = self.nodes[key]
        for successor in live_successors:
            node = self.nodes[successor]
            for prop in dropped.properties.values():
                node.add_property(prop)
        del self.nodes[key]
        self._dropped_concepts[key] = dropped.concepts
        self._requested_successors[key] = tuple(successors)
        self._successors[key] = live_successors
        self._rewrite_edges(key, live_successors)

    def _merge_identity(
        self, key: str, successors: tuple[str, ...]
    ) -> None:
        """Rename a mutually-absorbed node to its canonical merged key.

        The cycle members (the dropped nodes whose successor chains
        loop back to ``key``) denote the same instance set as ``key``;
        the canonical name is computed over exactly their concepts, so
        it is independent of when unrelated drops delivered content.
        """
        node = self.nodes[key]
        concepts = set(node.concepts)
        stack = list(successors)
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen or current == key:
                continue
            seen.add(current)
            concepts |= self._dropped_concepts.get(current, frozenset())
            stack.extend(self._requested_successors.get(current, ()))
        merged_concepts = frozenset(concepts)
        canonical = self.canonical_key(merged_concepts)
        if canonical == key:
            node.concepts = merged_concepts
            return
        self.nodes[canonical] = SchemaNode(
            canonical, merged_concepts, dict(node.properties)
        )
        del self.nodes[key]
        self._dropped_concepts[key] = node.concepts
        self._requested_successors[key] = (canonical,)
        self._successors[key] = (canonical,)
        self._rewrite_edges(key, (canonical,))

    def _rewrite_edges(
        self, key: str, live_successors: tuple[str, ...]
    ) -> None:
        self._successors[key] = live_successors
        rewritten: set[SchemaEdge] = set()
        for edge in self.edges:
            if edge.src != key and edge.dst != key:
                rewritten.add(edge)
                continue
            src_keys = live_successors if edge.src == key else (edge.src,)
            dst_keys = live_successors if edge.dst == key else (edge.dst,)
            for src in src_keys:
                for dst in dst_keys:
                    if src == dst and edge.rel_type.is_structural:
                        continue  # collapse structural self-loops
                    rewritten.add(
                        SchemaEdge(src, dst, edge.label, edge.rel_type,
                                   edge.origin_rel)
                    )
        self.edges = rewritten

    # ------------------------------------------------------------------
    # Monotone mutation helpers used by the rules
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: str,
        dst: str,
        label: str,
        rel_type: RelationshipType,
        origin_rel: str,
    ) -> bool:
        """Add an edge, resolving dropped endpoints.  True if changed."""
        changed = False
        for s in self.resolve(src):
            for d in self.resolve(dst):
                if s == d and rel_type.is_structural:
                    continue
                edge = SchemaEdge(s, d, label, rel_type, origin_rel)
                if edge not in self.edges:
                    self.edges.add(edge)
                    changed = True
        return changed

    def add_property(self, node_key: str, prop: SchemaProperty) -> bool:
        """Add a property to all live nodes representing ``node_key``."""
        changed = False
        for key in self.resolve(node_key):
            if self.nodes[key].add_property(prop):
                changed = True
        return changed

    def edges_touching(self, node_key: str) -> list[SchemaEdge]:
        # Iteration order is irrelevant: every consumer performs
        # commutative monotone set updates, so no sort is needed (it
        # dominated the fixpoint cost on inheritance-heavy ontologies).
        keys = set(self.resolve(node_key))
        return [
            e for e in self.edges if e.src in keys or e.dst in keys
        ]

    def has_edge_of_type(
        self, node_key: str, rel_type: RelationshipType, as_src: bool
    ) -> bool:
        keys = set(self.resolve(node_key))
        for edge in self.edges:
            if edge.rel_type is not rel_type:
                continue
            if as_src and edge.src in keys:
                return True
            if not as_src and edge.dst in keys:
                return True
        return False

    def properties_of(self, node_key: str) -> dict[str, SchemaProperty]:
        """Union of properties over the live nodes representing a key."""
        merged: dict[str, SchemaProperty] = {}
        for key in self.resolve(node_key):
            merged.update(self.nodes[key].properties)
        return merged

    # ------------------------------------------------------------------
    # Structural drops (shared by the union and inheritance rules)
    # ------------------------------------------------------------------
    def pending_structural(self, key: str) -> set[str]:
        """Unconsumed structural rel ids gating a node's drop.

        This is a *static* criterion: it reads the input ontology and
        the frozen Jaccard bands, not the evolving edge set, so drop
        timing cannot depend on when propagated edge copies arrive
        (required for Theorem 3's order-independence).
        """
        node = self.nodes[key]
        pending: set[str] = set()
        for concept in node.concepts:
            pending |= self._structural_blockers.get(concept, set())
        return pending - self.consumed

    def maybe_drop_structural(self, node_key: str) -> bool:
        """Drop a dissolved union/parent/absorbed-child node.

        A concept can hold several structural roles at once (union
        concept, inheritance parent, merged-up child); the node drops
        only when *every* structural relationship rooted at it has been
        consumed, and its successors are the union of all recorded
        absorbers.  Dropping for one role while another is pending
        would send content to only part of the successors and break
        order-independence.
        """
        for key in tuple(self.resolve(node_key)):
            if not self.is_live(key):
                continue
            absorbers = (
                set(self.union_absorbers.get(key, ()))
                | set(self.parent_absorbers.get(key, ()))
                | set(self.up_absorbers.get(key, ()))
            )
            if not absorbers:
                continue
            if self.pending_structural(key):
                continue
            self.drop_node(key, tuple(sorted(absorbers)))
            return True
        return False

    # ------------------------------------------------------------------
    # Fingerprint used by the fixpoint loop ("until O = O_prev")
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        node_part = tuple(
            sorted(
                (key, tuple(sorted(node.properties)))
                for key, node in self.nodes.items()
            )
        )
        edge_part = tuple(
            sorted(
                (e.src, e.dst, e.label, e.origin_rel) for e in self.edges
            )
        )
        return (node_part, edge_part, tuple(sorted(self.consumed)))
