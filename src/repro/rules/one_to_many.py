"""One-to-many rule (Algorithm 4) and many-to-many rule.

For a 1:M relationship ``r = (ci, cj)`` each data property of the "many"
side ``cj`` is propagated to the "one" side ``ci`` as a property of type
LIST, named ``"<Cj>.<prop>"`` (Figure 7: ``Indication.desc`` on ``Drug``).
Aggregations and 1-hop neighborhood lookups then read the local list
instead of traversing edges.

An M:N relationship is equivalent to two 1:M relationships (Section 3),
so the many-to-many rule runs the propagation in both directions; under a
space constraint each direction's properties are selected independently
(Section 4.2.2).

Propagation re-fires on every fixpoint iteration, so properties the "many"
side acquires from other rules are propagated transitively (Appendix A,
cases (ii) and (vi)).  Under a space-constrained :class:`Selection`, only
the *native* properties of the destination concept are eligible - those
are exactly the (relationship, property) items the cost model prices.
"""

from __future__ import annotations

from repro.ontology.model import Relationship
from repro.rules.base import (
    Provenance,
    SchemaProperty,
    SchemaState,
)


def apply_one_to_many(
    state: SchemaState,
    rel: Relationship,
    props: frozenset[str] | None,
) -> bool:
    """Propagate dst properties to src as LISTs.

    ``props`` restricts propagation to the named native properties of the
    destination concept; ``None`` (NSC mode) propagates everything.
    """
    return _propagate_lists(state, rel, rel.src, rel.dst, props, "fwd")


def apply_many_to_many(
    state: SchemaState,
    rel: Relationship,
    fwd_props: frozenset[str] | None,
    rev_props: frozenset[str] | None,
) -> bool:
    """Propagate in both directions (two 1:M halves)."""
    changed = _propagate_lists(state, rel, rel.src, rel.dst, fwd_props,
                               "fwd")
    changed |= _propagate_lists(state, rel, rel.dst, rel.src, rev_props,
                                "rev")
    return changed


def _propagate_lists(
    state: SchemaState,
    rel: Relationship,
    owner: str,
    source: str,
    props: frozenset[str] | None,
    direction: str,
) -> bool:
    """Copy ``source``'s properties onto ``owner`` as LIST properties."""
    if props is not None and not props:
        return False
    changed = False
    for prop in state.properties_of(source).values():
        if props is not None and not _is_selected(prop, source, props):
            continue
        list_name = (
            prop.name if "." in prop.name else f"{source}.{prop.name}"
        )
        replicated = SchemaProperty(
            name=list_name,
            data_type=prop.data_type,
            is_list=True,
            origin_concept=prop.origin_concept,
            origin_name=prop.origin_name,
            provenance=Provenance.REPLICATED,
            via_rel=rel.rel_id,
            via_direction=direction,
        )
        changed |= state.add_property(owner, replicated)
    return changed


def _is_selected(
    prop: SchemaProperty, source: str, props: frozenset[str]
) -> bool:
    """Under a space constraint only priced properties move.

    Matching is by *origin* (the concept that natively declared the
    property), not by provenance: a native property survives merges
    (1:1, inheritance) as a copy whose origin still names the source
    concept, and the cost model priced exactly those origins.
    """
    return prop.origin_concept == source and prop.origin_name in props
