"""Inheritance rule (Algorithm 2).

Uses the Jaccard similarity ``js`` between the parent's and child's
property-name sets, frozen on the input ontology:

* ``js > theta1`` - the child shares most of its properties with the
  parent: *merge up*.  The parent absorbs the child's properties and
  non-inheritance edges and the child node is dropped (Figure 5(c)/(d)).
* ``js < theta2`` - the child has little in common with the parent:
  *merge down*.  The child absorbs the parent's properties and
  non-inheritance edges; the parent node is dropped once it has no
  remaining ``isA`` edge to any child (Figure 5(a)/(b)).
* otherwise the ``isA`` edge is kept as a plain schema edge.

The merge-down copy re-fires on every fixpoint iteration while the parent
is live so later-acquired parent content also reaches the children
(Appendix A, case (ii)).
"""

from __future__ import annotations

from dataclasses import replace

from repro.ontology.model import Relationship, RelationshipType
from repro.rules.base import Provenance, SchemaState


def apply_inheritance(state: SchemaState, rel: Relationship) -> bool:
    """Apply the inheritance rule for one ``isA`` relationship."""
    js = state.jaccard[rel.rel_id]
    thresholds = state.thresholds
    if js > thresholds.theta1:
        return _merge_up(state, rel)
    if js < thresholds.theta2:
        return _merge_down(state, rel)
    return False  # middle band: the isA edge schema is kept as-is


def _merge_up(state: SchemaState, rel: Relationship) -> bool:
    """Parent absorbs child; the child drops when fully resolved.

    The copy step (child properties and non-inheritance edges onto the
    parent, Algorithm 2 lines 5-6) re-fires while the child lives; the
    drop waits until every structural relationship rooted at the child
    (it may itself be a union concept or a parent) has been consumed.
    """
    parent_key, child_key = rel.src, rel.dst
    changed = False

    if rel.rel_id not in state.consumed:
        state.consumed.add(rel.rel_id)
        state.edges = {
            e for e in state.edges if e.origin_rel != rel.rel_id
        }
        for key in state.resolve(child_key):
            state.up_absorbers.setdefault(key, set()).add(parent_key)
        changed = True

    if state.is_live(child_key):
        changed |= _propagate_up(state, child_key, parent_key)
        changed |= state.maybe_drop_structural(child_key)
    return changed


def _propagate_up(
    state: SchemaState, child_key: str, parent_key: str
) -> bool:
    """Copy the child's properties and non-inheritance edges upward."""
    changed = False
    child_keys = set(state.resolve(child_key))
    for prop in state.properties_of(child_key).values():
        copied = replace(
            prop,
            provenance=(
                prop.provenance
                if prop.provenance is not Provenance.NATIVE
                else Provenance.FROM_CHILD
            ),
        )
        changed |= state.add_property(parent_key, copied)
    for edge in state.edges_touching(child_key):
        if edge.rel_type is RelationshipType.INHERITANCE:
            continue
        if edge.src in child_keys:
            changed |= state.add_edge(
                parent_key, edge.dst, edge.label, edge.rel_type,
                edge.origin_rel,
            )
        if edge.dst in child_keys:
            changed |= state.add_edge(
                edge.src, parent_key, edge.label, edge.rel_type,
                edge.origin_rel,
            )
    return changed


def _merge_down(state: SchemaState, rel: Relationship) -> bool:
    """Child absorbs parent; the parent drops when childless."""
    parent_key, child_key = rel.src, rel.dst
    changed = False

    if rel.rel_id not in state.consumed:
        state.consumed.add(rel.rel_id)
        state.edges = {
            e for e in state.edges if e.origin_rel != rel.rel_id
        }
        for key in state.resolve(parent_key):
            state.parent_absorbers.setdefault(key, set()).add(child_key)
        changed = True

    if state.is_live(parent_key):
        changed |= _propagate_down(state, parent_key, child_key)
        changed |= state.maybe_drop_structural(parent_key)
    return changed


def _propagate_down(
    state: SchemaState, parent_key: str, child_key: str
) -> bool:
    """Copy the parent's properties and non-inheritance edges to a child."""
    changed = False
    parent_keys = set(state.resolve(parent_key))
    for prop in state.properties_of(parent_key).values():
        copied = replace(
            prop,
            provenance=(
                prop.provenance
                if prop.provenance is not Provenance.NATIVE
                else Provenance.FROM_PARENT
            ),
        )
        changed |= state.add_property(child_key, copied)
    for edge in state.edges_touching(parent_key):
        if edge.rel_type is RelationshipType.INHERITANCE:
            continue
        if edge.src in parent_keys:
            changed |= state.add_edge(
                child_key, edge.dst, edge.label, edge.rel_type,
                edge.origin_rel,
            )
        if edge.dst in parent_keys:
            changed |= state.add_edge(
                edge.src, child_key, edge.label, edge.rel_type,
                edge.origin_rel,
            )
    return changed


