"""One-to-one rule (Algorithm 3).

The two endpoint concepts of a 1:1 relationship are merged into a single
combined node - analogous to table denormalization (Figure 6 merges
``Indication`` and ``Condition`` into ``IndicationCondition``).  The rule
both avoids an edge traversal and *reduces* space, so it is applied
unconditionally by every optimizer.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ontology.model import Relationship
from repro.rules.base import Provenance, SchemaNode, SchemaState


def apply_one_to_one(state: SchemaState, rel: Relationship) -> bool:
    """Merge the endpoints of a 1:1 relationship into one node."""
    if rel.rel_id in state.consumed:
        return False
    state.consumed.add(rel.rel_id)
    state.edges = {e for e in state.edges if e.origin_rel != rel.rel_id}

    keys = []
    for endpoint in (rel.src, rel.dst):
        for key in state.resolve(endpoint):
            if key not in keys:
                keys.append(key)
    if len(keys) <= 1:
        return True  # endpoints already merged by earlier rules

    concepts: set[str] = set()
    for key in keys:
        concepts |= state.nodes[key].concepts
    merged_key = state.canonical_key(frozenset(concepts))
    merged = SchemaNode(merged_key, frozenset(concepts))
    for key in keys:
        for prop in state.nodes[key].properties.values():
            merged.add_property(
                replace(
                    prop,
                    provenance=(
                        prop.provenance
                        if prop.provenance is not Provenance.NATIVE
                        else Provenance.MERGED
                    ),
                )
            )
    state.nodes[merged_key] = merged
    for key in keys:
        state.drop_node(key, (merged_key,))
    return True
