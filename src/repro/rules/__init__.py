"""Relationship rules (Section 3) and the fixpoint rule engine."""

from repro.rules.base import (
    Provenance,
    SchemaEdge,
    SchemaNode,
    SchemaProperty,
    SchemaState,
    Selection,
    Thresholds,
)
from repro.rules.engine import direct_state, transform
from repro.rules.inheritance import apply_inheritance
from repro.rules.one_to_many import apply_many_to_many, apply_one_to_many
from repro.rules.one_to_one import apply_one_to_one
from repro.rules.union import apply_union

__all__ = [
    "Provenance",
    "SchemaEdge",
    "SchemaNode",
    "SchemaProperty",
    "SchemaState",
    "Selection",
    "Thresholds",
    "apply_inheritance",
    "apply_many_to_many",
    "apply_one_to_many",
    "apply_one_to_one",
    "apply_union",
    "direct_state",
    "transform",
]
