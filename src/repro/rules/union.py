"""Union rule (Algorithm 1).

For a union relationship ``run = (union, member)`` the member node is
connected directly to every node the union node connects to, the union
node's data properties are copied to the member, and the ``unionOf`` edge
is removed.  Once every union relationship of a union node has been
consumed, the union node itself is dropped (Figure 4 drops ``Risk``); its
successors are the members that absorbed it, so the drop rewrites any
remaining incident edges onto them.

The copy step re-fires on every fixpoint iteration while the union node is
still live, so edges and properties the union node acquires from *other*
rules also flow to the members (required for Theorem 3's
order-independence; see Appendix A, case (i)).
"""

from __future__ import annotations

from dataclasses import replace

from repro.ontology.model import Relationship, RelationshipType
from repro.rules.base import Provenance, SchemaState


def apply_union(state: SchemaState, rel: Relationship) -> bool:
    """Apply the union rule for one union relationship.  True if changed."""
    union_key, member_key = rel.src, rel.dst
    changed = False

    if rel.rel_id not in state.consumed:
        state.consumed.add(rel.rel_id)
        state.edges = {
            e for e in state.edges if e.origin_rel != rel.rel_id
        }
        for key in state.resolve(union_key):
            state.union_absorbers.setdefault(key, set()).add(member_key)
        changed = True

    if state.is_live(union_key):
        changed |= _propagate(state, union_key, member_key)
        changed |= state.maybe_drop_structural(union_key)
    return changed


def _propagate(state: SchemaState, union_key: str, member_key: str) -> bool:
    """Copy the union node's non-union edges and properties to a member."""
    changed = False
    union_keys = set(state.resolve(union_key))
    for edge in state.edges_touching(union_key):
        if edge.rel_type is RelationshipType.UNION:
            continue
        if edge.src in union_keys:
            changed |= state.add_edge(
                member_key, edge.dst, edge.label, edge.rel_type,
                edge.origin_rel,
            )
        if edge.dst in union_keys:
            changed |= state.add_edge(
                edge.src, member_key, edge.label, edge.rel_type,
                edge.origin_rel,
            )
    for prop in state.properties_of(union_key).values():
        copied = replace(
            prop,
            provenance=(
                prop.provenance
                if prop.provenance is not Provenance.NATIVE
                else Provenance.FROM_UNION
            ),
        )
        changed |= state.add_property(member_key, copied)
    return changed


