"""Structured event log: JSONL sink for operational events.

Where the metrics registry answers "how much / how fast", the event
log answers "what happened, when": one JSON object per line, append
only, safe to tail.  Events fall into two families:

* **slow queries** - every driver execution whose wall-clock time
  crosses the configured threshold emits a ``slow_query`` event with
  the query text + fingerprint, the executed plan's digest, row count,
  and the full work-counter snapshot, so a production slow-query can
  be replayed and EXPLAINed offline;
* **storage lifecycle** - ``checkpoint``, ``recovery``,
  ``quarantine``, ``wal_poisoned``, ``store_poisoned``: the rare,
  high-signal transitions an operator grepping a disk incident needs
  in order, with timestamps.

The sink is process-global (like the metrics registry and failpoint
catalog) and **disabled by default** - ``emit`` is a single attribute
check until a path is configured.  Configure it via the driver::

    connect("./data", observe=ObserveConfig(
        log_path="./events.jsonl", slow_query_ms=250.0))

or the environment (read once at import)::

    REPRO_OBSERVE_LOG=./events.jsonl REPRO_SLOW_QUERY_MS=250 ...

Each line carries ``ts`` (epoch seconds) and ``event`` (the kind);
remaining fields are event-specific (catalog in
``docs/OBSERVABILITY.md``).  Writes append under a lock with one
``flush`` per event - an event log that loses its tail on a crash is
useless exactly when it matters.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["EventLog", "ObserveConfig", "query_fingerprint"]


def query_fingerprint(text: str) -> str:
    """A stable short digest of a query's text (slow-query grouping)."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


@dataclass
class ObserveConfig:
    """What ``connect(..., observe=...)`` accepts.

    ``log_path`` enables the JSONL event sink; ``slow_query_ms``
    arms the slow-query log (queries at or above the threshold are
    logged - ``0`` logs every query); ``metrics=False`` switches the
    whole metrics registry off (the <2%-budget disabled path).
    """

    log_path: str | Path | None = None
    slow_query_ms: float | None = None
    metrics: bool = True

    @classmethod
    def coerce(cls, value) -> "ObserveConfig":
        """Accept an ObserveConfig, a mapping, or a bare log path."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(log_path=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            "observe= takes an ObserveConfig, a dict of its fields, "
            f"or an event-log path; got {type(value).__name__}"
        )


class EventLog:
    """Append-only JSONL sink; inert until given a path."""

    def __init__(
        self,
        path: str | Path | None = None,
        slow_query_ms: float | None = None,
    ):
        self._lock = threading.Lock()
        self._fh = None
        self.path: Path | None = None
        #: Wall-clock threshold for the slow-query log (``None`` =
        #: off; ``0`` = log every query).  Checked by the driver's
        #: result settle path.
        self.slow_query_ms = slow_query_ms
        if path is not None:
            self.configure(path=path, slow_query_ms=slow_query_ms)

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def configure(
        self,
        path: str | Path | None = None,
        slow_query_ms: float | None = None,
    ) -> None:
        """(Re)point the sink; ``path=None`` leaves the path alone.

        Passing ``slow_query_ms`` always updates the threshold (use
        ``None`` explicitly via :meth:`disable` to clear everything).
        """
        with self._lock:
            if path is not None:
                path = Path(path)
                if self._fh is not None and path != self.path:
                    self._fh.close()
                    self._fh = None
                self.path = path
            self.slow_query_ms = slow_query_ms

    def disable(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self._fh = None
            self.path = None
            self.slow_query_ms = None

    def emit(self, event: str, **fields) -> None:
        """Append one event line (no-op while unconfigured).

        Emission must never take down the caller: an unwritable sink
        degrades to dropping the event (the storage layer cannot be
        allowed to fail a checkpoint because the *log about it* hit
        ENOSPC).
        """
        if self.path is None:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, default=str) + "\n"
        try:
            with self._lock:
                if self.path is None:  # disabled concurrently
                    return
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = open(self.path, "a", encoding="utf-8")
                self._fh.write(line)
                self._fh.flush()
        except OSError:  # pragma: no cover - degraded sink
            pass

    def slow_query(
        self,
        elapsed_ms: float,
        query: str,
        plan_digest: str,
        rows: int,
        metrics: dict,
    ) -> None:
        """Emit a ``slow_query`` event when the threshold is armed and
        crossed; the common (fast-query or unarmed) path is two
        comparisons."""
        threshold = self.slow_query_ms
        if threshold is None or elapsed_ms < threshold:
            return
        self.emit(
            "slow_query",
            elapsed_ms=round(elapsed_ms, 3),
            threshold_ms=threshold,
            query=query,
            query_fingerprint=query_fingerprint(query),
            plan_digest=plan_digest,
            rows=rows,
            metrics=metrics,
        )
