"""Prometheus text exposition (version 0.0.4) for the registry.

Renders every registered instrument as the plain-text format a
Prometheus scraper ingests - the exact payload the future server's
``/metrics`` endpoint will serve, also reachable today via
``repro metrics --format prom``::

    # HELP repro_wal_appends_total Records appended to the WAL.
    # TYPE repro_wal_appends_total counter
    repro_wal_appends_total 1042
    # TYPE repro_query_seconds histogram
    repro_query_seconds_bucket{le="0.001"} 17
    ...
    repro_query_seconds_bucket{le="+Inf"} 23
    repro_query_seconds_sum 0.11941
    repro_query_seconds_count 23

Naming follows the Prometheus conventions the metric catalog was
designed to (``repro_`` prefix, ``_total`` counters, base units in
seconds/bytes); histogram buckets are cumulative with ``le``
(less-or-equal) bounds.  Plan observations are a structured store,
not a scalar family, so they appear only in the JSON snapshot.
"""

from __future__ import annotations

from repro.graphdb.observe.registry import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
)

__all__ = ["render_prometheus"]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: int | float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _bound_text(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry as Prometheus text exposition (trailing newline)."""
    if registry is None:
        from repro.graphdb.observe import REGISTRY

        registry = REGISTRY
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, LabeledCounter):
            lines.append(f"# TYPE {name} counter")
            label = instrument.label
            for key, value in sorted(instrument.values.items()):
                lines.append(
                    f'{name}{{{label}="{_escape_label(str(key))}"}} '
                    f"{_format_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in instrument.bucket_counts():
                lines.append(
                    f'{name}_bucket{{le="{_bound_text(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{name}_sum {repr(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
    return "\n".join(lines) + "\n"
