"""Per-query tracing: a tree of timed spans.

A :class:`Trace` records one query execution as nested spans::

    query MATCH (d:Drug) RETURN count(*)  (1.93 ms)
    |- parse  (0.21 ms)
    |- plan   (0.35 ms)
    `- execute  (1.22 ms, 1 row(s))
       |- 1. Scan d via label scan (:Drug)  (est~525, actual=525 rows, 0.98 ms)

The three phase spans (``parse`` -> ``plan`` -> ``execute``) are timed
with :func:`time.perf_counter`; a plan-cache hit collapses parse+plan
into a single instant ``plan`` span tagged ``cached``.  The operator
spans under ``execute`` are built from the *same* per-step binding
counters ``EXPLAIN ANALYZE`` renders (the executor counts each step's
produced bindings once, and both surfaces read that one list), plus a
per-step inclusive wall time measured only when tracing is on - so a
trace and an ``explain(analyze=True)`` of the same run can never
disagree about row counts.  Operator times are *inclusive*: each step's
clock runs while the pipeline pulls that step's generator, which
includes all upstream work (the classic iterator-model profile).

Tracing is opt-in per query (``session.run(..., trace=True)``,
``repro query --trace``); an untraced run executes the exact pipeline
it always did, with no per-row timing anywhere.
"""

from __future__ import annotations

import time
from typing import Iterator

__all__ = ["Span", "Trace"]

_perf = time.perf_counter


class Span:
    """One timed interval in a trace, possibly with children."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float | None = None):
        self.name = name
        self.start = _perf() if start is None else start
        self.end: float | None = None
        self.attrs: dict[str, object] = {}
        self.children: list[Span] = []

    def finish(self) -> "Span":
        if self.end is None:
            self.end = _perf()
        return self

    @property
    def duration_ms(self) -> float | None:
        if self.end is None:
            return None
        return (self.end - self.start) * 1000.0

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        out: dict[str, object] = {"name": self.name}
        duration = self.duration_ms
        if duration is not None:
            out["duration_ms"] = round(duration, 4)
        if self.attrs:
            out.update(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name!r} {self.duration_ms} ms>"


class Trace:
    """The span tree of one query execution.

    Built by the executor (phase spans) and settled by the driver's
    :class:`~repro.graphdb.api.result.Result` (execute end + operator
    spans); surfaced as ``ResultSummary.trace``.
    """

    def __init__(self, query: str):
        self.query = query
        #: Wall-clock start (event-log correlation; perf_counter is
        #: monotonic but epoch-less).
        self.started_at = time.time()
        self.root = Span(f"query {query}")
        self.root.attrs["query"] = query
        #: Per-step inclusive seconds, filled by the executor's traced
        #: pipeline wrapper (parallel to the plan's steps).
        self.step_times: list[float] | None = None
        self._execute: Span | None = None

    # -- span construction --------------------------------------------
    def begin(self, name: str, parent: Span | None = None) -> Span:
        span = Span(name)
        (parent or self.root).children.append(span)
        return span

    def span(self, name: str, parent: Span | None = None):
        """``with trace.span("parse"):`` - a scoped child span."""
        return _SpanContext(self.begin(name, parent))

    def begin_execute(self) -> Span:
        self._execute = self.begin("execute")
        return self._execute

    @property
    def execute_span(self) -> Span | None:
        return self._execute

    def complete(
        self,
        step_texts: list[str],
        est_rows: list[float | None],
        actual_rows: list[int],
        rows: int,
        mode: str | None = None,
    ) -> "Trace":
        """Settle the trace: operator spans + execute/root end times.

        ``actual_rows`` is the executor's per-step binding-count list -
        the same one ``EXPLAIN ANALYZE`` renders - and ``step_times``
        (when the traced pipeline filled it) supplies each operator's
        inclusive wall time.  ``mode`` tags the execute span with the
        pipeline path that ran (``vectorized`` or ``tuple``).
        """
        execute = self._execute
        if execute is None:
            execute = self.begin_execute()
        if mode is not None:
            execute.attrs["mode"] = mode
        times = self.step_times
        for i, text in enumerate(step_texts):
            span = Span(f"{i + 1}. {text}", start=execute.start)
            span.attrs["est_rows"] = est_rows[i]
            span.attrs["actual_rows"] = (
                actual_rows[i] if i < len(actual_rows) else 0
            )
            if times is not None and i < len(times):
                span.end = execute.start + times[i]
            else:
                span.end = execute.start
            execute.children.append(span)
        execute.attrs["rows"] = rows
        execute.finish()
        self.root.finish()
        return self

    # -- rendering -----------------------------------------------------
    def as_dict(self) -> dict:
        out = self.root.as_dict()
        out["started_at"] = self.started_at
        return out

    def render(self) -> str:
        """The span tree as indented text (``repro query --trace``)."""
        lines: list[str] = []
        self._render(self.root, "", "", lines)
        return "\n".join(lines)

    def _render(
        self, span: Span, lead: str, child_lead: str, lines: list[str]
    ) -> None:
        parts = [f"{lead}{span.name}"]
        details = []
        duration = span.duration_ms
        if duration is not None:
            details.append(f"{duration:.2f} ms")
        if "rows" in span.attrs:
            details.append(f"{span.attrs['rows']} row(s)")
        if "mode" in span.attrs:
            details.append(f"mode={span.attrs['mode']}")
        if "actual_rows" in span.attrs:
            est = span.attrs.get("est_rows")
            est_text = f"est~{est:.0f}, " if est is not None else ""
            details.append(f"{est_text}actual={span.attrs['actual_rows']} rows")
        if span.attrs.get("cached"):
            details.append("cached plan")
        if details:
            parts.append(f"  ({', '.join(details)})")
        lines.append("".join(parts))
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            branch = "`- " if last else "|- "
            extend = "   " if last else "|  "
            self._render(
                child, child_lead + branch, child_lead + extend, lines
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.query!r} spans={len(list(self.root.walk()))}>"


class _SpanContext:
    __slots__ = ("span",)

    def __init__(self, span: Span):
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.finish()
