"""Engine-wide observability: metrics, per-query traces, event log.

Three pillars, one subsystem (the layer ROADMAP item 1's server
metrics/health endpoint and item 4's self-tuning optimizer both plug
into):

* :data:`REGISTRY` - the process-global
  :class:`~repro.graphdb.observe.registry.MetricsRegistry` of named
  counters, gauges, and fixed-bucket histograms.  The WAL, snapshot,
  recovery, checkpoint, plan-cache, fault, and query layers update it
  inline; :meth:`Database.metrics` snapshots it and
  :func:`render_prometheus` renders the text exposition;
* :class:`~repro.graphdb.observe.trace.Trace` - opt-in per-query span
  trees (``session.run(..., trace=True)``, ``repro query --trace``)
  whose operator spans reuse the executor's EXPLAIN ANALYZE counters;
* :data:`EVENTS` - the process-global
  :class:`~repro.graphdb.observe.events.EventLog` JSONL sink
  (slow-query log + storage lifecycle events), disabled until
  configured via :func:`configure` / ``connect(..., observe=...)`` or
  the environment.

Environment (read once at import):

``REPRO_OBSERVE=off``
    Disable the metrics registry (every update becomes one flag
    check - the <2% disabled-overhead budget path).
``REPRO_OBSERVE_LOG=<path>``
    Enable the JSONL event sink at ``<path>``.
``REPRO_SLOW_QUERY_MS=<float>``
    Arm the slow-query log (requires the sink; ``0`` logs every
    query).

This package deliberately imports nothing from the rest of
``repro.graphdb`` - every engine layer (including
:mod:`repro.graphdb.faults`) can instrument itself without import
cycles.
"""

from __future__ import annotations

import os

from repro.graphdb.observe.events import (
    EventLog,
    ObserveConfig,
    query_fingerprint,
)
from repro.graphdb.observe.registry import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    PlanObservations,
)
from repro.graphdb.observe.trace import Span, Trace

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EVENTS",
    "EventLog",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "ObserveConfig",
    "PlanObservations",
    "REGISTRY",
    "Span",
    "Trace",
    "configure",
    "query_fingerprint",
    "render_prometheus",
]

#: The process-global metrics registry every engine layer updates.
REGISTRY = MetricsRegistry()

#: The process-global event sink (inert until configured).
EVENTS = EventLog()


def configure(config: ObserveConfig | dict | str | os.PathLike) -> None:
    """Apply an :class:`ObserveConfig` to the process-global pillars.

    Called by ``connect(..., observe=...)``; both the registry switch
    and the event sink are process-global, so the most recent
    configuration wins (exactly like arming a failpoint via
    ``REPRO_FAULTS``).
    """
    config = ObserveConfig.coerce(config)
    REGISTRY.enabled = config.metrics
    if config.log_path is not None or config.slow_query_ms is not None:
        EVENTS.configure(
            path=config.log_path, slow_query_ms=config.slow_query_ms
        )


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus text exposition of ``registry`` (default: global)."""
    from repro.graphdb.observe.prometheus import render_prometheus as _render

    return _render(REGISTRY if registry is None else registry)


if os.environ.get("REPRO_OBSERVE", "").lower() in ("off", "0", "false"):
    REGISTRY.enabled = False
_env_log = os.environ.get("REPRO_OBSERVE_LOG")
_env_slow = os.environ.get("REPRO_SLOW_QUERY_MS")
if _env_log:
    EVENTS.configure(
        path=_env_log,
        slow_query_ms=float(_env_slow) if _env_slow else None,
    )
elif _env_slow:
    EVENTS.slow_query_ms = float(_env_slow)
