"""Process-wide metrics: named counters, gauges, and histograms.

The registry is the numeric half of the observability layer (the
other half, :mod:`repro.graphdb.observe.events`, is the structured
event log).  Instrumented modules obtain metric handles **once at
import time** - exactly like the failpoint catalog in
:mod:`repro.graphdb.faults` - and the hot-path cost of an update is
one ``enabled`` check plus one locked add.  Disabling the registry
(``REPRO_OBSERVE=off`` or ``registry.enabled = False``) turns every
update into the check alone, which is what keeps the disabled-path
overhead inside the same <2% budget the failpoint hooks met
(``benchmarks/bench_observe.py`` enforces it).

Design points:

* **Named, typed instruments.**  :meth:`MetricsRegistry.counter`,
  :meth:`~MetricsRegistry.gauge`, :meth:`~MetricsRegistry.histogram`,
  and :meth:`~MetricsRegistry.labeled_counter` are idempotent: asking
  for an existing name returns the existing instrument (so modules can
  re-import freely), while asking for it with a *different type*
  raises - a name collision is a bug, not a merge.
* **Thread safety.**  Updates take the registry's value lock, so
  concurrent sessions (or a future server's worker threads) never lose
  increments; reads (:meth:`MetricsRegistry.snapshot`) take the same
  lock and therefore see a consistent cut.
* **Fixed-bucket histograms.**  Buckets are upper bounds with
  Prometheus ``le`` (less-or-equal) semantics: an observation equal to
  a bound lands in that bound's bucket, everything past the last bound
  lands in ``+Inf``.
* **Plan observations.**  A bounded per-plan-fingerprint store of
  estimated vs actual rows per step - the feed the self-tuning
  optimizer (ROADMAP item 4) will consume.  Executions of the same
  plan accumulate; a shape change (replan) resets the entry.

Metric names follow Prometheus conventions (``repro_`` prefix,
``_total`` for counters, base units in seconds/bytes); see
``docs/OBSERVABILITY.md`` for the full catalog and
:func:`repro.graphdb.observe.prometheus.render_prometheus` for the
text exposition.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "PlanObservations",
]

#: Latency buckets (seconds): 100us .. 10s, roughly x3 steps.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0
)

#: Count/size buckets (records per batch, rows, ...): powers of four.
DEFAULT_SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


class _Instrument:
    """Base: a named instrument bound to its registry."""

    __slots__ = ("name", "help", "_registry", "_lock")

    kind = "instrument"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = registry._value_lock


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, registry, name, help):
        super().__init__(registry, name, help)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        self._value = 0


class LabeledCounter(_Instrument):
    """A counter family keyed by one label (e.g. failpoint name)."""

    __slots__ = ("label", "_values")

    kind = "labeled_counter"

    def __init__(self, registry, name, help, label: str):
        super().__init__(registry, name, help)
        self.label = label
        self._values: dict[str, int | float] = {}

    def inc(self, label_value: str, amount: int | float = 1) -> None:
        if self._registry.enabled:
            with self._lock:
                values = self._values
                values[label_value] = values.get(label_value, 0) + amount

    def value(self, label_value: str) -> int | float:
        return self._values.get(label_value, 0)

    @property
    def values(self) -> dict[str, int | float]:
        with self._lock:
            return dict(self._values)

    def _reset(self) -> None:
        self._values.clear()


class Gauge(_Instrument):
    """A value that can go up and down (generation, sizes, ...)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, registry, name, help):
        super().__init__(registry, name, help)
        self._value = 0.0

    def set(self, value: int | float) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram(_Instrument):
    """Fixed upper-bound buckets with ``le`` (<=) semantics.

    ``observe(v)`` lands ``v`` in the first bucket whose bound is
    ``>= v`` (an observation exactly equal to a bound belongs to that
    bound), or in the implicit ``+Inf`` bucket past the last bound.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(self, registry, name, help, buckets):
        super().__init__(registry, name, help)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            raw = list(self._counts)
        out = []
        running = 0
        for bound, n in zip(self.bounds, raw):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + raw[-1]))
        return out

    def _reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0


class PlanObservations:
    """Bounded per-plan-fingerprint record of est vs actual rows.

    One entry per plan fingerprint (LRU-bounded), accumulating the
    per-step actual row counts of every traced/driver execution next
    to the planner's estimates.  This is the raw feed a self-tuning
    optimizer needs: a persistent misestimate for a fingerprint is a
    statistics correction waiting to be applied.
    """

    #: Executions folded exactly per fingerprint before sampling, and
    #: the 1-in-N fold stride after - a hot cached plan stops paying
    #: the per-step fold on every execution once its profile settles.
    EXACT_EXECUTIONS = 16
    SAMPLE_STRIDE = 16

    def __init__(self, registry: "MetricsRegistry", capacity: int = 256):
        self.capacity = max(1, capacity)
        self._registry = registry
        self._lock = registry._value_lock
        self._entries: dict[str, dict] = {}

    def record(
        self,
        fingerprint: str,
        steps,
    ) -> None:
        """Fold one execution's ``(step text, est, actual)`` rows in.

        ``steps`` is a list of ``(step text, est, actual)`` tuples or
        a zero-argument callable producing it - the callable is only
        invoked for *folded* executions, so sampled-out executions of
        a hot plan never build the list at all.  ``executions`` counts
        every execution; ``sampled`` counts the folded ones.
        """
        if not self._registry.enabled:
            return
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                executions = entry["executions"] + 1
                entry["executions"] = executions
                if (
                    executions > self.EXACT_EXECUTIONS
                    and executions % self.SAMPLE_STRIDE
                ):
                    self._entries[fingerprint] = entry  # LRU refresh
                    return
            if callable(steps):
                steps = steps()
            if entry is not None and len(entry["steps"]) != len(steps):
                entry = None  # replanned into a different shape
            if entry is None:
                entry = {
                    "executions": 1,
                    "sampled": 0,
                    "steps": [
                        {
                            "step": text,
                            "est_rows": est,
                            "actual_rows_total": 0,
                            "actual_rows_last": 0,
                        }
                        for text, est, _ in steps
                    ],
                }
            entry["sampled"] += 1
            for slot, (text, est, actual) in zip(entry["steps"], steps):
                slot["est_rows"] = est
                slot["actual_rows_total"] += actual
                slot["actual_rows_last"] = actual
            while len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
            self._entries[fingerprint] = entry

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {
                fp: {
                    "executions": entry["executions"],
                    "sampled": entry["sampled"],
                    "steps": [dict(slot) for slot in entry["steps"]],
                }
                for fp, entry in self._entries.items()
            }

    def __len__(self) -> int:
        return len(self._entries)

    def _reset(self) -> None:
        self._entries.clear()


class MetricsRegistry:
    """Catalog of named instruments plus the plan-observation store."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Guards instrument *creation* (import-time, cold).
        self._create_lock = threading.Lock()
        #: Guards every value update and snapshot read (hot, shared by
        #: all instruments - contention is negligible in-process and a
        #: single lock keeps snapshots consistent across instruments).
        self._value_lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self.plans = PlanObservations(self)

    # -- instrument creation (idempotent) ------------------------------
    def _get(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._create_lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(self, name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def labeled_counter(
        self, name: str, label: str, help: str = ""
    ) -> LabeledCounter:
        return self._get(LabeledCounter, name, help, label=label)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        buckets=DEFAULT_SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- reads ---------------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, in registration order."""
        return list(self._instruments.values())

    def snapshot(self) -> dict:
        """A consistent JSON-friendly dump of every instrument.

        This is the payload :meth:`Database.metrics` returns, ``repro
        metrics`` prints, and the future server's ``/metrics`` JSON
        endpoint will serve.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        labeled: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        with self._value_lock:
            for instrument in self._instruments.values():
                if isinstance(instrument, Counter):
                    counters[instrument.name] = instrument._value
                elif isinstance(instrument, Gauge):
                    gauges[instrument.name] = instrument._value
                elif isinstance(instrument, LabeledCounter):
                    labeled[instrument.name] = {
                        "label": instrument.label,
                        "values": dict(instrument._values),
                    }
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                histograms[instrument.name] = {
                    "count": instrument.count,
                    "sum": round(instrument.sum, 9),
                    "buckets": [
                        ["+Inf" if bound == float("inf") else bound, n]
                        for bound, n in instrument.bucket_counts()
                    ],
                }
        return {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "labeled_counters": labeled,
            "histograms": histograms,
            "plans": self.plans.snapshot(),
        }

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._value_lock:
            for instrument in self._instruments.values():
                instrument._reset()
            self.plans._reset()
