"""Deterministic fault injection for the storage stack.

Production storage engines earn their crash-safety claims with torture
harnesses that kill the process at every I/O boundary and check
invariants on recovery.  This module is that harness's foundation: a
process-global registry of **named failpoints** threaded through the
WAL, snapshot, store, and recovery layers.  Each hook is a single dict
probe when nothing is armed, so the instrumentation can stay in the
production code path permanently (the fault benchmark pins the
disarmed overhead below 2% of a WAL append).

Failpoints fire in one of three modes:

``error``
    Raise :class:`OSError` with a chosen errno at the hook.  Transient
    errnos (``EINTR``/``EAGAIN``) exercise the storage layer's bounded
    retry loops; hard ones (``EIO``, ``ENOSPC``) exercise poisoning
    and checkpoint rollback.

``crash``
    Raise :class:`SimulatedCrash` - a :class:`BaseException`, so no
    ``except Exception`` / ``except OSError`` cleanup handler in the
    storage stack can swallow it.  The test harness catches it at the
    workload boundary and re-opens the directory, exactly like a
    process kill plus restart (in-flight buffers are abandoned, tmp
    files stay behind as crash debris).

``short_write``
    Only meaningful on *write* hooks (:meth:`FaultRegistry.write`):
    write a strict prefix of the payload, flush it, then raise
    :class:`SimulatedCrash` - a torn write frozen at its worst moment.
    On non-write hooks it degrades to ``crash``.

Activation is per-test (:meth:`FaultRegistry.arm` or the
:meth:`FaultRegistry.armed` context manager) or via the environment::

    REPRO_FAULTS="wal.flush.fsync:error:EINTR@2,snapshot.rename:crash"

Spec grammar, comma-separated: ``point:mode[:arg][@hit][xN][%p]``
where ``arg`` is an errno name or number (``error``) or a keep-bytes
count (``short_write``), ``@hit`` is the 1-based hit index that starts
firing (default 1), ``xN`` caps how many hits fire (default 1,
``x*`` = every hit), and ``%p`` fires each eligible hit with
probability ``p`` drawn from the registry's seeded RNG
(``REPRO_FAULTS_SEED``) - deterministic for a fixed seed.

The registry also keeps the global ``injected`` / ``retries``
counters that :class:`~repro.graphdb.api.result.ResultSummary`
surfaces per query execution.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.graphdb.observe import REGISTRY as _OBS

_FAULTS_INJECTED = _OBS.labeled_counter(
    "repro_faults_injected_total",
    "point",
    "Faults the failpoint harness injected, by failpoint name.",
)
_IO_RETRIES = _OBS.counter(
    "repro_io_retries_total",
    "Transient I/O errors absorbed by bounded retry.",
)

__all__ = [
    "FaultError",
    "FaultRegistry",
    "FaultSpec",
    "REGISTRY",
    "SimulatedCrash",
    "TRANSIENT_ERRNOS",
    "fire",
    "registered_failpoints",
    "retrying",
    "write",
]


class SimulatedCrash(BaseException):
    """A hard process kill, as an exception.

    Deliberately *not* an :class:`Exception`: the storage stack's
    error handling (tmp-file cleanup, retry loops, best-effort prune)
    must never intercept it, because a real ``kill -9`` would not run
    those handlers either.  Only the torture harness catches it.
    """


class FaultError(ValueError):
    """Raised for malformed fault specs or arming unknown modes."""


#: Errnos the storage layer treats as transient and retries with
#: bounded backoff (see :func:`retrying`).
TRANSIENT_ERRNOS = frozenset({_errno.EINTR, _errno.EAGAIN})

MODES = ("error", "crash", "short_write")


@dataclass
class FaultSpec:
    """One armed failpoint's behavior."""

    point: str
    mode: str = "crash"
    #: ``error`` mode: the errno carried by the injected OSError.
    errno_code: int = _errno.EIO
    #: Fire starting at this 1-based hit of the failpoint.
    at: int = 1
    #: How many eligible hits fire (``None`` = every one).
    times: int | None = 1
    #: ``short_write`` mode: bytes actually written before the crash
    #: (``None`` = half the payload, at least one byte short).
    keep_bytes: int | None = None
    #: Probability an eligible hit fires (drawn from the seeded RNG).
    chance: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise FaultError(f"unknown fault mode {self.mode!r}")
        if self.at < 1:
            raise FaultError("fault 'at' is 1-based")
        if not 0.0 < self.chance <= 1.0:
            raise FaultError("fault chance must be in (0, 1]")


class _Armed:
    """Mutable firing state for one armed spec."""

    __slots__ = ("spec", "hits", "fired")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.hits = 0
        self.fired = 0

    def should_fire(self, rng: random.Random) -> bool:
        self.hits += 1
        spec = self.spec
        if self.hits < spec.at:
            return False
        if spec.times is not None and self.fired >= spec.times:
            return False
        if spec.chance < 1.0 and rng.random() >= spec.chance:
            return False
        self.fired += 1
        return True


class FaultRegistry:
    """Process-global catalog of failpoints and their armed faults.

    Instrumented modules :meth:`register` their failpoint names at
    import time (so harnesses can enumerate the full catalog), then
    call :meth:`fire` / :meth:`write` at the guarded operation.  Both
    hooks are a single ``dict.get`` when nothing is armed.
    """

    def __init__(self, seed: int = 0):
        #: name -> registration order (stable across a process).
        self._points: dict[str, int] = {}
        self._armed: dict[str, _Armed] = {}
        self._rng = random.Random(seed)
        #: Total faults injected (all modes) since process start.
        self.injected = 0
        #: Total transient-error retries performed by :func:`retrying`.
        self.retries = 0

    # -- catalog -------------------------------------------------------
    def register(self, point: str) -> str:
        """Declare a failpoint name; idempotent, returns the name."""
        self._points.setdefault(point, len(self._points))
        return point

    def names(self) -> list[str]:
        """Every registered failpoint, in registration order."""
        return sorted(self._points, key=self._points.__getitem__)

    # -- arming --------------------------------------------------------
    def arm(self, spec: FaultSpec | str, **kwargs) -> FaultSpec:
        """Arm one failpoint (replacing any prior arming of it).

        Accepts a prepared :class:`FaultSpec` or a point name plus
        keyword arguments (``mode=``, ``errno_code=``, ``at=``, ...).
        Arming does not require prior registration: env specs may be
        parsed before the instrumented modules import.
        """
        if isinstance(spec, str):
            spec = FaultSpec(spec, **kwargs)
        elif kwargs:
            raise FaultError("pass a FaultSpec or kwargs, not both")
        self._armed[spec.point] = _Armed(spec)
        return spec

    def arm_spec(self, text: str) -> list[FaultSpec]:
        """Arm every fault in a ``REPRO_FAULTS``-style spec string."""
        specs = [parse_fault(part) for part in _split_spec(text)]
        for spec in specs:
            self.arm(spec)
        return specs

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything; registrations and counters survive."""
        self._armed.clear()

    def seed(self, value: int) -> None:
        """Re-seed the probabilistic-firing RNG (deterministic runs)."""
        self._rng = random.Random(value)

    def armed_points(self) -> list[str]:
        return sorted(self._armed)

    @contextmanager
    def armed(self, spec: FaultSpec | str, **kwargs) -> Iterator[FaultSpec]:
        """Scope one armed fault to a ``with`` block."""
        prepared = self.arm(spec, **kwargs)
        try:
            yield prepared
        finally:
            self.disarm(prepared.point)

    # -- counters ------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {"injected": self.injected, "retries": self.retries}

    def record_retry(self) -> None:
        self.retries += 1
        _IO_RETRIES.inc()

    # -- hooks (hot path) ----------------------------------------------
    def fire(self, point: str) -> None:
        """The basic hook: raise if ``point`` is armed and eligible."""
        state = self._armed.get(point)
        if state is None:
            return
        if not state.should_fire(self._rng):
            return
        self.injected += 1
        _FAULTS_INJECTED.inc(point)
        spec = state.spec
        if spec.mode == "error":
            raise OSError(
                spec.errno_code,
                f"injected fault at {point}",
            )
        # crash - and short_write on a non-write hook degrades to it
        # (there is no payload whose prefix could be kept).
        raise SimulatedCrash(point)

    def write(self, point: str, fh, data: bytes) -> None:
        """Write ``data`` to ``fh``, subject to ``point``'s fault.

        ``error``/``crash`` fire *before* any byte is written;
        ``short_write`` writes a strict prefix, flushes it so the torn
        bytes really reach the OS, then raises
        :class:`SimulatedCrash`.
        """
        state = self._armed.get(point)
        if state is not None and state.should_fire(self._rng):
            self.injected += 1
            _FAULTS_INJECTED.inc(point)
            spec = state.spec
            if spec.mode == "error":
                raise OSError(
                    spec.errno_code, f"injected fault at {point}"
                )
            if spec.mode == "short_write" and data:
                keep = spec.keep_bytes
                if keep is None:
                    keep = len(data) // 2
                keep = max(0, min(keep, len(data) - 1))
                fh.write(data[:keep])
                fh.flush()
            raise SimulatedCrash(point)
        fh.write(data)


# ----------------------------------------------------------------------
# Spec parsing (REPRO_FAULTS)
# ----------------------------------------------------------------------
def _split_spec(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _errno_of(token: str) -> int:
    if token.isdigit():
        return int(token)
    code = getattr(_errno, token.upper(), None)
    if not isinstance(code, int):
        raise FaultError(f"unknown errno {token!r} in fault spec")
    return code


_SPEC_SUFFIX = re.compile(
    r"^(?P<body>.*?)"
    r"(?:@(?P<at>\d+))?"
    r"(?:x(?P<times>\d+|\*))?"
    r"(?:%(?P<chance>[0-9.]+))?$"
)


def parse_fault(part: str) -> FaultSpec:
    """Parse one ``point:mode[:arg][@hit][xN][%p]`` spec element."""
    match = _SPEC_SUFFIX.match(part)
    if match is None:  # pragma: no cover - the regex accepts anything
        raise FaultError(f"unparseable fault spec {part!r}")
    body = match.group("body")
    at = int(match.group("at") or 1)
    raw_times = match.group("times")
    times: int | None = (
        1 if raw_times is None else None if raw_times == "*" else int(raw_times)
    )
    chance = float(match.group("chance") or 1.0)
    fields = body.split(":")
    if not fields or not fields[0]:
        raise FaultError(f"missing failpoint name in {part!r}")
    point = fields[0]
    mode = fields[1] if len(fields) > 1 and fields[1] else "crash"
    if mode == "short":
        mode = "short_write"
    spec = FaultSpec(point, mode=mode, at=at, times=times, chance=chance)
    if len(fields) > 2 and fields[2]:
        if mode == "error":
            spec.errno_code = _errno_of(fields[2])
        elif mode == "short_write":
            try:
                spec.keep_bytes = int(fields[2])
            except ValueError:
                raise FaultError(
                    f"bad keep-bytes in fault spec {part!r}"
                )
        else:
            raise FaultError(
                f"mode {mode!r} takes no argument (spec {part!r})"
            )
    return spec


# ----------------------------------------------------------------------
# Bounded retry for transient I/O errors
# ----------------------------------------------------------------------
def retrying(
    op: Callable[[], object],
    what: str,
    attempts: int = 5,
    base_delay: float = 0.0005,
) -> object:
    """Run ``op``, retrying transient OSErrors with capped backoff.

    Only :data:`TRANSIENT_ERRNOS` (``EINTR``/``EAGAIN``) are retried -
    hard errors (``EIO``, ``ENOSPC``, permissions) propagate
    immediately so the caller can poison or roll back.  Each retry is
    counted on the global registry (surfaced as ``io_retries`` in
    query metrics).
    """
    delay = base_delay
    for attempt in range(attempts):
        try:
            return op()
        except OSError as exc:
            if (
                exc.errno not in TRANSIENT_ERRNOS
                or attempt == attempts - 1
            ):
                raise
            REGISTRY.record_retry()
            time.sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


#: The process-global registry; instrumented modules and tests share it.
REGISTRY = FaultRegistry()

#: Module-level aliases bound once: the hot hooks cost one dict probe
#: plus one call when disarmed.
fire = REGISTRY.fire
write = REGISTRY.write


def registered_failpoints() -> list[str]:
    """The full failpoint catalog (import the storage stack first)."""
    return REGISTRY.names()


_env_spec = os.environ.get("REPRO_FAULTS")
if _env_spec:
    _seed = os.environ.get("REPRO_FAULTS_SEED")
    if _seed:
        REGISTRY.seed(int(_seed))
    REGISTRY.arm_spec(_env_spec)
