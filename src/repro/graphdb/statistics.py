"""Graph statistics: the cardinalities behind cost-based planning.

:class:`GraphStatistics` tracks, per graph:

* **label cardinalities** - vertices per label, edges per edge type;
* **degree statistics** - for every (edge type, vertex label) pair,
  how many edges of that type start (or end) at a vertex carrying that
  label, which gives the planner average expansion fan-out and the
  label composition of an edge type's endpoints;
* **property-value histograms** - for every (label, property) pair, a
  value -> occurrence-count histogram plus the number of distinct
  values (NDV), which prices equality predicates (``x.p = literal``)
  and the label-scan vs. property-index choice.

The first call to :meth:`PropertyGraph.statistics` builds everything
in one batch pass; from then on every mutation the graph applies keeps
the counters current *incrementally* (the same hook points that feed
the WAL listeners, but with the pre-mutation context removals need).
Statistics therefore survive WAL replay: recovery replays mutations
through the ordinary graph API, which updates any attached statistics
as a side effect.

Two pieces of planner infrastructure live here because their lifetime
is the statistics object's lifetime:

* the **stats epoch** - a coarse version counter that advances after a
  batch of mutations large enough to plausibly shift cardinalities
  (one epoch per ~6% of graph size, minimum 64 mutations).  Plans are
  valid regardless of stats staleness - only their *optimality* decays
  - so the epoch exists purely to invalidate cached plans lazily;
* the **plan cache** - a small LRU mapping
  ``(query text, stats epoch)`` to a built
  :class:`~repro.graphdb.query.planner.Plan`, so repeated queries skip
  parsing and planning entirely until the epoch moves on.

Persistence: snapshots carry a STATS section (see
:mod:`repro.graphdb.storage.snapshot`) with the exact counters and a
most-common-values truncation of each histogram, so a recovered store
plans with warm statistics instead of paying a rebuild.
"""

from __future__ import annotations

from collections import Counter
from itertools import compress
from typing import Iterable

from repro.graphdb.columnar import KIND_OBJ
from repro.graphdb.observe import REGISTRY as _OBS

_PLAN_CACHE_HITS = _OBS.counter(
    "repro_plan_cache_hits_total", "Plan-cache lookups served from cache."
)
_PLAN_CACHE_MISSES = _OBS.counter(
    "repro_plan_cache_misses_total",
    "Plan-cache lookups that required planning (includes epoch bumps).",
)
_PLAN_CACHE_EVICTIONS = _OBS.counter(
    "repro_plan_cache_evictions_total",
    "Cached plans dropped by LRU capacity pressure.",
)

#: Histograms persisted into snapshots keep at most this many
#: most-common values; the remainder is summarized as (extra distinct
#: values, extra row count) and estimated uniformly.
MCV_CAP = 64


def is_hashable(value: object) -> bool:
    """Whether ``value`` can key an index bucket or a histogram.

    The single hashability test shared by the histograms here and the
    planner's fold/access logic - both must agree on what a property
    index can look up.
    """
    try:
        hash(value)
    except TypeError:
        return False
    return True


class PropertyStats:
    """Value histogram for one (vertex label, property name) pair.

    ``hist`` maps each *hashable* value to its occurrence count among
    vertices carrying the label.  Unhashable values (lists) are only
    counted in aggregate - they can never drive an index lookup, so
    their individual identities are irrelevant to planning.  After a
    snapshot load the histogram may be truncated to its most common
    values; ``extra_ndv`` / ``extra_count`` summarize the truncated
    tail, and estimates for untracked values fall back to a uniform
    spread over that tail.
    """

    __slots__ = ("count", "unhashable", "hist", "extra_ndv", "extra_count")

    def __init__(self) -> None:
        self.count = 0          # vertices with a non-null value
        self.unhashable = 0     # of which: unhashable (list) values
        self.hist: dict = {}    # value -> occurrences (hashable only)
        self.extra_ndv = 0      # distinct values truncated at load
        self.extra_count = 0    # rows truncated at load

    @property
    def ndv(self) -> int:
        """Number of distinct (hashable) values, tail included."""
        return len(self.hist) + self.extra_ndv

    def add(self, value: object) -> None:
        self.count += 1
        if is_hashable(value):
            self.hist[value] = self.hist.get(value, 0) + 1
        else:
            self.unhashable += 1

    def remove(self, value: object) -> None:
        self.count = max(0, self.count - 1)
        if not is_hashable(value):
            self.unhashable = max(0, self.unhashable - 1)
            return
        occurrences = self.hist.get(value)
        if occurrences is None:
            # Value fell in the truncated tail of a loaded histogram.
            self.extra_count = max(0, self.extra_count - 1)
        elif occurrences <= 1:
            del self.hist[value]
        else:
            self.hist[value] = occurrences - 1

    def eq_estimate(self, value: object) -> float:
        """Estimated rows matching ``prop = value``."""
        if is_hashable(value):
            tracked = self.hist.get(value)
            if tracked is not None:
                return float(tracked)
            if self.extra_ndv > 0:
                return self.extra_count / self.extra_ndv
            return 0.0
        # Unhashable literals can only match unhashable stored values.
        return float(self.unhashable)


class PlanCache:
    """LRU cache of built plans keyed on (query, stats epoch).

    The query key is the raw text or a hashable (frozen-dataclass)
    AST.  A cached plan is always *correct* - plans never embed row
    counts, only access choices and orderings - so entries are not
    evicted on mutation.  They are keyed by epoch instead: once the
    epoch advances, lookups miss and stale entries age out of the LRU.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = max(1, capacity)
        self._entries: dict = {}  # (query key, epoch) -> value
        self.hits = 0
        self.misses = 0

    def get(self, query, epoch: int):
        key = (query, epoch)
        value = self._entries.pop(key, None)
        if value is None:
            self.misses += 1
            _PLAN_CACHE_MISSES.inc()
            return None
        self._entries[key] = value  # re-insert: most recently used
        self.hits += 1
        _PLAN_CACHE_HITS.inc()
        return value

    def put(self, query, epoch: int, value) -> None:
        key = (query, epoch)
        self._entries.pop(key, None)
        while len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            _PLAN_CACHE_EVICTIONS.inc()
        self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)


def _column_histogram(table, column) -> tuple[Counter, int, int]:
    """(value histogram, unhashable count, non-null count) of a column.

    Considers live, present rows only and skips stored ``None`` values
    (parity with the incremental hooks, which ignore null properties).
    Typed columns can never hold ``None`` or unhashables, so they take
    a pure ``compress`` + ``Counter`` fast path.
    """
    mask = column.mask
    data = column.data
    if table.live != len(table.vids):
        # Tombstoned rows have their presence bits cleared, but guard
        # against vid<0 anyway so a future partial-unset cannot leak
        # removed rows into planner statistics.
        # Columns pad lazily, so the mask may be shorter than the vid
        # list; rows past its end are absent and need no clearing.
        selectors = bytearray(mask)
        for row, vid in enumerate(table.vids[:len(selectors)]):
            if vid < 0:
                selectors[row] = 0
        values = list(compress(data, selectors))
    else:
        values = list(compress(data, mask))
    if column.kind != KIND_OBJ:
        return Counter(values), 0, len(values)
    values = [v for v in values if v is not None]
    try:
        return Counter(values), 0, len(values)
    except TypeError:
        hist: Counter = Counter()
        unhashable = 0
        for value in values:
            if is_hashable(value):
                hist[value] += 1
            else:
                unhashable += 1
        return hist, unhashable, len(values)


class GraphStatistics:
    """Incrementally maintained cardinality statistics for one graph."""

    def __init__(self) -> None:
        self.epoch = 0
        self.num_vertices = 0
        self.num_edges = 0
        #: label -> vertex count
        self.label_counts: dict[str, int] = {}
        #: edge label -> edge count
        self.edge_label_counts: dict[str, int] = {}
        #: (edge label, src vertex label) -> edge count
        self._src: dict[tuple[str, str], int] = {}
        #: (edge label, dst vertex label) -> edge count
        self._dst: dict[tuple[str, str], int] = {}
        #: (edge label, src label, dst label) -> edge count; prices
        #: P(far end has label | near end has label) without the
        #: independence error the two marginals above would introduce.
        self._triples: dict[tuple[str, str, str], int] = {}
        #: vertex label -> total out-/in-edge count (any edge label)
        self._src_total: dict[str, int] = {}
        self._dst_total: dict[str, int] = {}
        #: sorted (label, label) pair -> vertices carrying both.  The
        #: schema optimizer's merge rules produce multi-label vertices
        #: whose labels correlate near-perfectly, so conjunctions must
        #: not be priced under independence.
        self._label_pairs: dict[tuple[str, str], int] = {}
        #: (vertex label, property name) -> histogram
        self.props: dict[tuple[str, str], PropertyStats] = {}
        self.plan_cache = PlanCache()
        self._mutations = 0
        self._next_epoch_at = 64

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph, parallelism: int | None = None) -> "GraphStatistics":
        """One batch pass over the columns of a live :class:`PropertyGraph`.

        Instead of walking per-vertex label sets and property dicts,
        the build iterates the graph's per-label-set tables: label and
        label-pair counts fall out of table sizes, each property
        histogram is one :class:`collections.Counter` pass over a flat
        column, and edge degree statistics aggregate one
        ``(edge type, src label set, dst label set)`` Counter over the
        edge columns before fanning out to per-label counters.  The
        result is exactly what replaying every mutation through the
        incremental hooks would produce.

        ``parallelism`` above 1 fans the per-table histogram and
        edge-combo passes out over the morsel worker pool
        (:func:`repro.graphdb.query.parallel.parallel_build_stats`);
        Counter merges are order-independent, so the result matches
        the serial build.
        """
        if parallelism is not None and parallelism > 1:
            # Lazy import: parallel imports this module's helpers.
            from repro.graphdb.query.parallel import parallel_build_stats

            return parallel_build_stats(graph, workers=parallelism)
        stats = cls()
        symbols = graph._symbols
        bump = cls._bump
        for table in graph._tables:
            live = table.live
            if live == 0:
                continue
            labels = table.labels
            stats.num_vertices += live
            for pair in cls._pairs_of(labels):
                bump(stats._label_pairs, pair, live)
            for label in labels:
                stats.label_counts[label] = (
                    stats.label_counts.get(label, 0) + live
                )
            for key_sid, column in table.columns.items():
                hist, unhashable, total = _column_histogram(table, column)
                if total == 0:
                    continue
                name = symbols.name(key_sid)
                for label in labels:
                    stat = stats.props.get((label, name))
                    if stat is None:
                        stat = stats.props[(label, name)] = PropertyStats()
                    stat.count += total
                    stat.unhashable += unhashable
                    stat_hist = stat.hist
                    for value, occurrences in hist.items():
                        stat_hist[value] = (
                            stat_hist.get(value, 0) + occurrences
                        )

        v_tid = graph._v_tid
        labelsets = graph._labelset_strs
        combos = Counter(
            (sid, v_tid[src], v_tid[dst])
            for sid, src, dst in zip(
                graph._e_label, graph._e_src, graph._e_dst
            )
            if sid >= 0
        )
        for (sid, src_tid, dst_tid), count in combos.items():
            label = symbols.name(sid)
            src_labels = labelsets[src_tid]
            dst_labels = labelsets[dst_tid]
            stats.num_edges += count
            bump(stats.edge_label_counts, label, count)
            for src_label in src_labels:
                bump(stats._src, (label, src_label), count)
                bump(stats._src_total, src_label, count)
            for dst_label in dst_labels:
                bump(stats._dst, (label, dst_label), count)
                bump(stats._dst_total, dst_label, count)
            for src_label in src_labels:
                for dst_label in dst_labels:
                    bump(
                        stats._triples, (label, src_label, dst_label), count
                    )
        stats._reset_epoch_trigger()
        return stats

    # ------------------------------------------------------------------
    # Mutation hooks (called by PropertyGraph with pre-state context)
    # ------------------------------------------------------------------
    def on_add_vertex(self, labels: frozenset, props: dict) -> None:
        self._vertex_added(labels, props)
        self._tick()

    def on_remove_vertex(self, labels: frozenset, props: dict) -> None:
        self.num_vertices = max(0, self.num_vertices - 1)
        for pair in self._pairs_of(labels):
            self._bump(self._label_pairs, pair, -1)
        for label in labels:
            remaining = self.label_counts.get(label, 1) - 1
            if remaining > 0:
                self.label_counts[label] = remaining
            else:
                self.label_counts.pop(label, None)
            for name, value in props.items():
                stat = self.props.get((label, name))
                if stat is not None and value is not None:
                    stat.remove(value)
        self._tick()

    def on_add_edge(
        self, label: str, src_labels: frozenset, dst_labels: frozenset
    ) -> None:
        self._edge_added(label, src_labels, dst_labels)
        self._tick()

    def on_remove_edge(
        self, label: str, src_labels: frozenset, dst_labels: frozenset
    ) -> None:
        self.num_edges = max(0, self.num_edges - 1)
        self._bump(self.edge_label_counts, label, -1)
        for src_label in src_labels:
            self._bump(self._src, (label, src_label), -1)
            self._bump(self._src_total, src_label, -1)
        for dst_label in dst_labels:
            self._bump(self._dst, (label, dst_label), -1)
            self._bump(self._dst_total, dst_label, -1)
        for src_label in src_labels:
            for dst_label in dst_labels:
                self._bump(
                    self._triples, (label, src_label, dst_label), -1
                )
        self._tick()

    def on_set_property(
        self,
        labels: frozenset,
        name: str,
        old: object,
        new: object,
    ) -> None:
        for label in labels:
            stat = self.props.get((label, name))
            if stat is None:
                if new is None:
                    continue
                stat = self.props[(label, name)] = PropertyStats()
            if old is not None:
                stat.remove(old)
            if new is not None:
                stat.add(new)
        self._tick()

    def on_remove_property(
        self, labels: frozenset, name: str, old: object
    ) -> None:
        if old is not None:
            for label in labels:
                stat = self.props.get((label, name))
                if stat is not None:
                    stat.remove(old)
        self._tick()

    def on_create_index(self) -> None:
        # Index creation changes nothing the counters track, but it
        # does change the planner's best choice - force an epoch bump
        # so cached plans are rebuilt against the new access path.
        self.epoch += 1
        self._reset_epoch_trigger()

    # ------------------------------------------------------------------
    # Estimation API (what the planner consumes)
    # ------------------------------------------------------------------
    def label_count(self, label: str) -> int:
        return self.label_counts.get(label, 0)

    def edge_count(self, labels: Iterable[str] | None) -> float:
        """Edges matching any of ``labels`` (all edges when empty)."""
        labels = tuple(labels or ())
        if not labels:
            return float(self.num_edges)
        return float(
            sum(self.edge_label_counts.get(label, 0) for label in labels)
        )

    def fanout(
        self,
        labels: frozenset | set,
        edge_labels: tuple[str, ...],
        direction: str,
    ) -> float:
        """Average matching edges per vertex of the given label set.

        ``direction`` follows pattern semantics seen from the vertex:
        ``out`` counts edges leaving it, ``in`` edges entering it,
        ``any`` both.  For multi-label specs the estimate is based on
        the rarest label, the same anchor the scan cost model uses.
        """
        if labels:
            anchor = min(labels, key=lambda l: self.label_counts.get(l, 0))
            base = max(1, self.label_counts.get(anchor, 0))
            total = 0.0
            if direction in ("out", "any"):
                total += self._incident(self._src, self._src_total,
                                        anchor, edge_labels)
            if direction in ("in", "any"):
                total += self._incident(self._dst, self._dst_total,
                                        anchor, edge_labels)
            return total / base
        base = max(1, self.num_vertices)
        per_direction = self.edge_count(edge_labels)
        if direction == "any":
            return 2.0 * per_direction / base
        return per_direction / base

    def _incident(
        self,
        pairs: dict[tuple[str, str], int],
        totals: dict[str, int],
        label: str,
        edge_labels: tuple[str, ...],
    ) -> float:
        if not edge_labels:
            return float(totals.get(label, 0))
        return float(
            sum(pairs.get((edge_label, label), 0)
                for edge_label in edge_labels)
        )

    def endpoint_label_fraction(
        self,
        edge_labels: tuple[str, ...],
        label: str,
        end: str,
    ) -> float:
        """Fraction of matching edges whose ``end`` carries ``label``.

        ``end`` is ``"src"`` or ``"dst"``.  Prices the label check the
        executor applies to each expansion target.
        """
        total = self.edge_count(edge_labels)
        if total <= 0:
            return 1.0
        pairs = self._src if end == "src" else self._dst
        if not edge_labels:
            totals = (
                self._src_total if end == "src" else self._dst_total
            )
            matching = float(totals.get(label, 0))
        else:
            matching = float(
                sum(pairs.get((edge_label, label), 0)
                    for edge_label in edge_labels)
            )
        return min(1.0, matching / total)

    def label_overlap(self, anchor: str, label: str) -> float:
        """P(a vertex carrying ``anchor`` also carries ``label``)."""
        if anchor == label:
            return 1.0
        base = self.label_counts.get(anchor, 0)
        if base <= 0:
            total = max(1, self.num_vertices)
            return min(1.0, self.label_counts.get(label, 0) / total)
        pair = tuple(sorted((anchor, label)))
        return min(1.0, self._label_pairs.get(pair, 0) / base)

    def cond_endpoint_fraction(
        self,
        edge_labels: tuple[str, ...],
        from_label: str,
        to_label: str,
        walk: str,
    ) -> float:
        """P(far end has ``to_label`` | near end has ``from_label``).

        ``walk`` is the traversal direction seen from the near end
        (``out`` / ``in`` / ``any``).  Falls back to the unconditional
        endpoint fraction when the conditioning side has no matching
        edges at all.
        """
        labels = tuple(edge_labels) or tuple(self.edge_label_counts)
        numerator = 0.0
        denominator = 0.0
        for edge_label in labels:
            if walk in ("out", "any"):
                denominator += self._src.get((edge_label, from_label), 0)
                numerator += self._triples.get(
                    (edge_label, from_label, to_label), 0
                )
            if walk in ("in", "any"):
                denominator += self._dst.get((edge_label, from_label), 0)
                numerator += self._triples.get(
                    (edge_label, to_label, from_label), 0
                )
        if denominator <= 0:
            end = {"out": "dst", "in": "src"}.get(walk)
            if end is None:
                return 0.5 * (
                    self.endpoint_label_fraction(edge_labels, to_label,
                                                 "src")
                    + self.endpoint_label_fraction(edge_labels, to_label,
                                                   "dst")
                )
            return self.endpoint_label_fraction(edge_labels, to_label, end)
        return min(1.0, numerator / denominator)

    def eq_estimate(self, label: str, prop: str, value: object) -> float:
        """Estimated vertices of ``label`` with ``prop = value``."""
        stat = self.props.get((label, prop))
        if stat is None:
            return 0.0
        return stat.eq_estimate(value)

    def eq_selectivity(
        self, label: str, prop: str, value: object
    ) -> float:
        """``eq_estimate`` as a fraction of the label's cardinality."""
        base = self.label_counts.get(label, 0)
        if base <= 0:
            return 1.0
        return min(1.0, self.eq_estimate(label, prop, value) / base)

    def avg_eq_estimate(self, label: str, prop: str) -> float:
        """Estimated rows matching ``prop = ?`` for an unknown value.

        Prices ``$parameter`` equality predicates, whose value is only
        bound at execution time: the average histogram bucket
        (count / NDV), i.e. the uniform-spread assumption.
        """
        stat = self.props.get((label, prop))
        if stat is None:
            return 0.0
        distinct = stat.ndv
        if distinct <= 0:
            return float(stat.unhashable)
        return (stat.count - stat.unhashable) / distinct

    def avg_eq_selectivity(self, label: str, prop: str) -> float:
        """``avg_eq_estimate`` as a fraction of the label cardinality."""
        base = self.label_counts.get(label, 0)
        if base <= 0:
            return 1.0
        return min(1.0, self.avg_eq_estimate(label, prop) / base)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _vertex_added(self, labels: frozenset, props: dict) -> None:
        self.num_vertices += 1
        for pair in self._pairs_of(labels):
            self._bump(self._label_pairs, pair, 1)
        for label in labels:
            self.label_counts[label] = self.label_counts.get(label, 0) + 1
            for name, value in props.items():
                if value is None:
                    continue
                stat = self.props.get((label, name))
                if stat is None:
                    stat = self.props[(label, name)] = PropertyStats()
                stat.add(value)

    def _edge_added(
        self, label: str, src_labels: frozenset, dst_labels: frozenset
    ) -> None:
        self.num_edges += 1
        self._bump(self.edge_label_counts, label, 1)
        for src_label in src_labels:
            self._bump(self._src, (label, src_label), 1)
            self._bump(self._src_total, src_label, 1)
        for dst_label in dst_labels:
            self._bump(self._dst, (label, dst_label), 1)
            self._bump(self._dst_total, dst_label, 1)
        for src_label in src_labels:
            for dst_label in dst_labels:
                self._bump(
                    self._triples, (label, src_label, dst_label), 1
                )

    @staticmethod
    def _pairs_of(labels: frozenset) -> list[tuple[str, str]]:
        if len(labels) < 2:
            return []
        ordered = sorted(labels)
        return [
            (ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        ]

    @staticmethod
    def _bump(counter: dict, key, delta: int) -> None:
        value = counter.get(key, 0) + delta
        if value > 0:
            counter[key] = value
        else:
            counter.pop(key, None)

    def _tick(self) -> None:
        self._mutations += 1
        if self._mutations >= self._next_epoch_at:
            self.epoch += 1
            self._reset_epoch_trigger()

    def _reset_epoch_trigger(self) -> None:
        size = self.num_vertices + self.num_edges
        self._next_epoch_at = self._mutations + max(64, size >> 4)

    def summary(self) -> str:
        return (
            f"GraphStatistics epoch={self.epoch}: "
            f"{self.num_vertices:,} vertices / {self.num_edges:,} edges, "
            f"{len(self.label_counts)} labels, "
            f"{len(self.props)} property histograms"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
