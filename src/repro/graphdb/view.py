"""Frozen CSR read view over a :class:`PropertyGraph`.

:meth:`PropertyGraph.freeze` materializes a :class:`GraphView`: for
every edge type, compressed-sparse-row adjacency in both directions -
an offsets array indexed by vid plus flat neighbor and edge-id lists.
On top of the flat arrays the build also pre-zips each (vertex, type)
segment into a tuple of (eid, neighbor) pairs, so the executor's
expand is one dict probe plus one ``extend`` with no per-call slicing.
That is a deliberate speed-for-memory trade: the view holds both the
CSR arrays (what the PageRank kernel and other bulk consumers iterate
via :meth:`GraphView.iter_csr`) and the segment tuples (~one pair
object per edge per direction); freezing a graph roughly doubles its
adjacency footprint while it is held.

The view is *immutable by contract* and epoch-stamped: every graph
mutation advances the graph's mutation epoch (the same machinery that
feeds the WAL listeners), which both drops the graph's cached view and
lets any outstanding reference detect staleness via :attr:`valid`.
Readers (the session's ``expand_pairs``, the PageRank kernel, the
benchmarks) use the view when one is valid and fall back to the
mutable dict adjacency otherwise - freezing is a deliberate, O(V + E)
act for read-heavy phases, never an implicit per-query cost.

Within one (vertex, edge type) bucket, neighbors appear in ascending
edge-id order - the same order the mutable adjacency dict yields,
since edge ids are never reused.
"""

from __future__ import annotations

from array import array
from typing import Iterator

#: One direction of one edge type: (offsets, neighbors, eids).
#: ``offsets`` is an array of length num_vid_slots+1; ``neighbors``
#: and ``eids`` are flat lists sliced by consecutive offsets.
Csr = tuple[array, list, list]


class GraphView:
    """Immutable CSR adjacency snapshot of one graph epoch."""

    __slots__ = ("graph", "epoch", "num_vid_slots", "_out", "_in",
                 "_out_segments", "_in_segments")

    def __init__(self, graph):
        self.graph = graph
        self.epoch = graph.mutation_epoch
        self.num_vid_slots = len(graph._v_tid)
        self._out: dict[int, Csr] = {}
        self._in: dict[int, Csr] = {}
        #: Per edge type: vid -> tuple of (eid, neighbor) pairs - the
        #: CSR segments pre-materialized once at freeze time, so an
        #: expand is a dict probe plus one ``extend`` with no per-call
        #: slicing.  Only vertices with matching edges have entries.
        self._out_segments: dict[int, dict[int, tuple]] = {}
        self._in_segments: dict[int, dict[int, tuple]] = {}
        self._build(graph)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, graph) -> None:
        nslots = self.num_vid_slots
        e_label = graph._e_label
        e_src = graph._e_src
        e_dst = graph._e_dst

        for direction, anchors, fars, csrs in (
            ("out", e_src, e_dst, self._out),
            ("in", e_dst, e_src, self._in),
        ):
            counts: dict[int, array] = {}
            for sid, anchor in zip(e_label, anchors):
                if sid < 0:
                    continue
                per_vid = counts.get(sid)
                if per_vid is None:
                    per_vid = counts[sid] = array("q", bytes(8 * (nslots + 1)))
                per_vid[anchor + 1] += 1
            for sid, per_vid in counts.items():
                total = 0
                for i in range(1, nslots + 1):
                    total += per_vid[i]
                    per_vid[i] = total
                csrs[sid] = (per_vid, [0] * total, [0] * total)
            # Fill pass: edges arrive in ascending eid order, so each
            # (vid, type) segment ends up eid-ordered.  The offsets
            # array doubles as the write cursor and is restored by the
            # final shift below.
            cursors = {sid: array("q", csr[0]) for sid, csr in csrs.items()}
            for eid, (sid, anchor, far) in enumerate(
                zip(e_label, anchors, fars)
            ):
                if sid < 0:
                    continue
                cursor = cursors[sid]
                slot = cursor[anchor]
                cursor[anchor] = slot + 1
                _offsets, neighbors, eids = csrs[sid]
                neighbors[slot] = far
                eids[slot] = eid
            segments = (
                self._out_segments if direction == "out"
                else self._in_segments
            )
            for sid, (offsets, neighbors, eids) in csrs.items():
                per_vid: dict[int, tuple] = {}
                start = 0
                # Walk segment boundaries via the anchor vids that
                # actually carry edges (recovered from the flat fill),
                # skipping the all-zero-degree majority.
                for vid in range(nslots):
                    end = offsets[vid + 1]
                    if end > start:
                        per_vid[vid] = tuple(
                            zip(eids[start:end], neighbors[start:end])
                        )
                        start = end
                segments[sid] = per_vid

    @property
    def valid(self) -> bool:
        """Whether the graph is still at the epoch this view froze."""
        return self.epoch == self.graph.mutation_epoch

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def expand_pairs(
        self,
        vid: int,
        label_sids: tuple[int | None, ...] | None,
        direction: str,
    ) -> list[tuple[int, int]]:
        """(eid, neighbor) pairs of ``vid``; CSR slice per edge type.

        ``label_sids`` of ``None`` means every edge type; a ``None``
        entry (a label the graph never interned) matches nothing.
        """
        pairs: list[tuple[int, int]] = []
        if direction != "in":
            self._collect(self._out_segments, vid, label_sids, pairs)
        if direction != "out":
            self._collect(self._in_segments, vid, label_sids, pairs)
        return pairs

    @staticmethod
    def _collect(
        segments: dict[int, dict[int, tuple]],
        vid: int,
        label_sids,
        pairs: list,
    ) -> None:
        if label_sids is None:
            for per_vid in segments.values():
                seg = per_vid.get(vid)
                if seg:
                    pairs.extend(seg)
            return
        for sid in label_sids:
            per_vid = segments.get(sid)
            if per_vid is None:
                continue
            seg = per_vid.get(vid)
            if seg:
                pairs.extend(seg)

    def edge_types(self) -> list[int]:
        """Symbol ids of the edge types present in the view."""
        return sorted(self._out)

    def iter_csr(
        self, direction: str = "out"
    ) -> Iterator[tuple[int, Csr]]:
        """(edge-type sid, CSR triple) pairs for one direction."""
        csrs = self._out if direction == "out" else self._in
        return iter(csrs.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphView epoch={self.epoch} "
            f"types={len(self._out)} "
            f"{'valid' if self.valid else 'stale'}>"
        )


def graph_pagerank(
    graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
) -> dict[int, float]:
    """PageRank over the property graph's frozen CSR adjacency.

    Treats the graph as undirected (every edge feeds rank both ways),
    matching the out-degree rule of the paper's OntologyPR.  Freezes
    the graph (reusing a valid cached view) and runs the flat-array
    kernel from :mod:`repro.optimizer.pagerank`.  Returns vid -> score
    over live vertices.
    """
    from repro.optimizer.pagerank import pagerank_kernel

    vids = graph.vertex_ids()
    n = len(vids)
    if n == 0:
        return {}
    index = {vid: i for i, vid in enumerate(vids)}
    view = graph.freeze()
    flat_src: list[int] = []
    flat_dst: list[int] = []
    for _sid, (offsets, neighbors, _eids) in view.iter_csr("out"):
        for vid in vids:
            start = offsets[vid]
            end = offsets[vid + 1]
            if end == start:
                continue
            i = index[vid]
            for neighbor in neighbors[start:end]:
                j = index[neighbor]
                flat_src.append(i)
                flat_dst.append(j)
                flat_src.append(j)
                flat_dst.append(i)
    scores, _iterations = pagerank_kernel(
        n, flat_src, flat_dst, damping, tol, max_iterations
    )
    return dict(zip(vids, scores))
