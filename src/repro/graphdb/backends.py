"""Simulated backend cost profiles.

The paper runs on Neo4j (single-node, disk-based page cache) and
JanusGraph (distributed, remote storage).  We model the two regimes the
paper's Section 5.3 discussion relies on:

* ``neo4j-like``: cheap in-memory operations but *expensive page misses*
  and a small page cache - disk-based systems "benefit much more from
  our techniques, as the optimized schema requires significantly less
  disk I/O";
* ``janusgraph-like``: higher constant per-operation cost (network
  round-trips amortized over batches) with a large effective cache, so
  the relative gain from fewer traversals is smaller but still
  significant.

All unit costs are microseconds; latencies are deterministic functions
of the metrics, so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphdb.metrics import ExecutionMetrics


@dataclass(frozen=True)
class BackendProfile:
    """Unit costs (microseconds) and cache geometry for one backend."""

    name: str
    traversal_us: float
    vertex_read_us: float
    property_read_us: float
    index_lookup_us: float
    page_miss_us: float
    fixed_overhead_us: float
    vertices_per_page: int
    adjacency_per_page: int
    cache_pages: int

    def latency_ms(self, metrics: ExecutionMetrics) -> float:
        """Simulated latency in milliseconds for the given work counts."""
        total_us = (
            self.fixed_overhead_us * max(1, metrics.queries)
            + self.traversal_us * metrics.edge_traversals
            + self.vertex_read_us * metrics.vertex_reads
            + self.property_read_us * metrics.property_reads
            + self.index_lookup_us * metrics.index_lookups
            + self.page_miss_us * metrics.page_misses
        )
        return total_us / 1000.0


NEO4J_LIKE = BackendProfile(
    name="neo4j-like",
    traversal_us=1.0,
    vertex_read_us=0.5,
    property_read_us=0.2,
    index_lookup_us=10.0,
    page_miss_us=150.0,
    fixed_overhead_us=150.0,
    vertices_per_page=32,
    adjacency_per_page=32,
    cache_pages=96,
)

JANUSGRAPH_LIKE = BackendProfile(
    name="janusgraph-like",
    traversal_us=10.0,
    vertex_read_us=5.0,
    property_read_us=2.0,
    index_lookup_us=50.0,
    page_miss_us=30.0,
    fixed_overhead_us=1500.0,
    vertices_per_page=16,
    adjacency_per_page=16,
    cache_pages=8192,
)

PROFILES: dict[str, BackendProfile] = {
    NEO4J_LIKE.name: NEO4J_LIKE,
    JANUSGRAPH_LIKE.name: JANUSGRAPH_LIKE,
}
