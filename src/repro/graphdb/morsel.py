"""Morsel partitioning: fixed-size row ranges over columnar segments.

Morsel-driven parallelism (Leis et al.) dispatches work to a pool in
*morsels* - contiguous row ranges small enough to balance load and
large enough to amortize dispatch overhead.  Here the unit being
partitioned is always a flat array of candidate rows: either the live
rows of one per-label-set :class:`~repro.graphdb.columnar.VertexTable`
or a post-scan candidate vid array (one *segment* per table the scan
admitted).  A :class:`Morsel` is therefore ``(segment, start, stop)``
- it never copies data; workers slice the shared-memory arrays by
these bounds.

The parallel query path (:mod:`repro.graphdb.query.parallel`) keys its
morsel size to the vectorized pipeline's batch size so that batch
boundaries - and with them the page-run charging the work-counter
equivalence contract depends on - are identical to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

#: Default rows per morsel.  Matches the vectorized pipeline's
#: ``BATCH_ROWS`` so a morsel is exactly one serial batch; callers
#: that need bigger morsels must use a multiple of the batch size.
DEFAULT_MORSEL_ROWS = 4096


@dataclass(frozen=True)
class Morsel:
    """One contiguous row range of one segment (half-open)."""

    segment: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


class MorselSource:
    """Slices per-segment row counts into fixed-size morsels.

    ``lengths`` is one row count per segment, in the order the serial
    pipeline would stream them; iteration yields morsels in that same
    (segment-major, ascending-offset) order, which is the order the
    coordinator replays work-counter charges in.
    """

    def __init__(
        self,
        lengths: Sequence[int],
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ):
        if morsel_rows < 1:
            raise ValueError("morsel_rows must be positive")
        self.lengths = list(lengths)
        self.morsel_rows = morsel_rows

    @classmethod
    def from_tables(
        cls, graph, morsel_rows: int = DEFAULT_MORSEL_ROWS
    ) -> "MorselSource":
        """Morsels over each table's raw row extent (live + tombstones).

        Segment indices are table ids; row offsets index the table's
        ``vids`` list, so workers can apply their own liveness masks.
        """
        return cls(
            [len(table.vids) for table in graph._tables], morsel_rows
        )

    def __iter__(self) -> Iterator[Morsel]:
        step = self.morsel_rows
        for segment, length in enumerate(self.lengths):
            for start in range(0, length, step):
                yield Morsel(segment, start, min(start + step, length))

    def __len__(self) -> int:
        step = self.morsel_rows
        return sum(
            (length + step - 1) // step for length in self.lengths
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MorselSource segments={len(self.lengths)} "
            f"rows={sum(self.lengths)} morsels={len(self)}>"
        )
