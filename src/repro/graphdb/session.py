"""Execution context: instrumented access to a property graph.

Every read the query executor performs goes through a
:class:`GraphSession`, which counts the work (edge traversals, vertex and
property reads) and simulates page I/O through an LRU cache sized by the
backend profile.  Vertices live on property pages, adjacency lists on
adjacency pages; ids are clustered onto pages in insertion order, which
approximates how both Neo4j record stores and JanusGraph's adjacency
layout behave.
"""

from __future__ import annotations

from repro.graphdb.backends import BackendProfile, NEO4J_LIKE
from repro.graphdb.graph import Edge, PropertyGraph
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache


class GraphSession:
    """Instrumented read API over a :class:`PropertyGraph`."""

    def __init__(
        self,
        graph: PropertyGraph,
        profile: BackendProfile = NEO4J_LIKE,
        cache: LruPageCache | None = None,
    ):
        self.graph = graph
        self.profile = profile
        self.cache = cache or LruPageCache(profile.cache_pages)
        self.metrics = ExecutionMetrics()

    # ------------------------------------------------------------------
    # Page simulation
    # ------------------------------------------------------------------
    def _touch(self, kind: str, ordinal: int, per_page: int) -> None:
        page = (kind, ordinal // max(1, per_page))
        if self.cache.touch(page):
            self.metrics.page_hits += 1
        else:
            self.metrics.page_misses += 1

    def _touch_vertex_page(self, vid: int) -> None:
        self._touch("v", vid, self.profile.vertices_per_page)

    def _touch_adjacency_page(self, vid: int) -> None:
        self._touch("a", vid, self.profile.adjacency_per_page)

    # ------------------------------------------------------------------
    # Instrumented reads
    # ------------------------------------------------------------------
    def read_labels(self, vid: int) -> frozenset[str]:
        self.metrics.vertex_reads += 1
        self._touch_vertex_page(vid)
        return self.graph.vertex(vid).labels

    def read_property(self, vid: int, name: str) -> object:
        self.metrics.property_reads += 1
        self._touch_vertex_page(vid)
        return self.graph.vertex(vid).properties.get(name)

    def read_edge_property(self, eid: int, name: str) -> object:
        self.metrics.property_reads += 1
        return self.graph.edge(eid).properties.get(name)

    def expand(
        self, vid: int, label: str | None, direction: str
    ) -> list[Edge]:
        """Adjacent edges of ``vid``; each returned edge is a traversal."""
        self._touch_adjacency_page(vid)
        if direction == "out":
            edges = self.graph.out_edges(vid, label)
        elif direction == "in":
            edges = self.graph.in_edges(vid, label)
        else:
            edges = self.graph.out_edges(vid, label) + self.graph.in_edges(
                vid, label
            )
        self.metrics.edge_traversals += len(edges)
        return edges

    def label_scan(self, label: str) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.vertices_with_label(label)

    def index_lookup(self, label: str, prop: str, value: object) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.lookup_property(label, prop, value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_metrics(self) -> ExecutionMetrics:
        """Return the collected metrics and start a fresh counter."""
        finished = self.metrics
        self.metrics = ExecutionMetrics()
        return finished

    def latency_ms(self) -> float:
        return self.profile.latency_ms(self.metrics)
