"""Execution context: instrumented access to a property graph.

Every read the query executor performs goes through a
:class:`GraphSession`, which counts the work (edge traversals, vertex and
property reads) and simulates page I/O through an LRU cache sized by the
backend profile.  Vertices live on property pages, adjacency lists on
adjacency pages; ids are clustered onto pages in insertion order, which
approximates how both Neo4j record stores and JanusGraph's adjacency
layout behave.

Besides the classic per-read API (:meth:`GraphSession.read_labels`,
:meth:`GraphSession.expand`, ...), the session exposes fused fast paths
the streaming executor uses: :meth:`GraphSession.expand_pairs` (raw
(eid, neighbor) pairs - served from the graph's frozen CSR view when
one is valid, from the mutable dict adjacency otherwise),
:meth:`GraphSession.accept_vertex` (label + property check in one
call, reading property columns directly), and
:meth:`GraphSession.edge_between` (O(1) endpoint-pair join probe).
:meth:`GraphSession.scan_rows` streams an entire label (or
all-vertices) scan with a folded equality predicate as one columnar
pass - ``zip`` over the vid list and the property column instead of a
per-vertex dict probe - while staying lazy so ``LIMIT`` still
short-circuits.

A session can also own a durable backing store:
:meth:`GraphSession.open` recovers a data directory (snapshot + WAL
replay, see :mod:`repro.graphdb.storage`) and from then on every graph
mutation is write-ahead logged; :meth:`GraphSession.checkpoint`
compacts the log into a fresh snapshot and :meth:`GraphSession.close`
flushes and detaches.  Sessions created directly from an in-memory
graph behave exactly as before - ``store`` stays ``None``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.exceptions import GraphError
from repro.graphdb.backends import BackendProfile, NEO4J_LIKE
from repro.graphdb.graph import Edge, PropertyGraph
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache


class GraphSession:
    """Instrumented read API over a :class:`PropertyGraph`."""

    def __init__(
        self,
        graph: PropertyGraph,
        profile: BackendProfile = NEO4J_LIKE,
        cache: LruPageCache | None = None,
    ):
        self.graph = graph
        self.profile = profile
        self.cache = cache or LruPageCache(profile.cache_pages)
        self.metrics = ExecutionMetrics()
        #: Durable backing store; set by :meth:`GraphSession.open`.
        self.store = None
        self._vertices_per_page = max(1, profile.vertices_per_page)
        self._adjacency_per_page = max(1, profile.adjacency_per_page)
        # Hot-path aliases: the adjacency dicts and id-location lists
        # are mutated in place by the graph, never replaced, so
        # binding them once is safe.
        self._graph_out = graph._out
        self._graph_in = graph._in
        #: Edge-label tuple -> interned-sid tuple (symbol ids are
        #: append-only, so entries never go stale; labels the graph
        #: has not seen yet re-resolve on each miss until interned).
        self._label_sids: dict[tuple[str, ...], tuple] = {}

    # ------------------------------------------------------------------
    # Page simulation
    # ------------------------------------------------------------------
    def _touch_page(self, page: tuple) -> None:
        """Record one page access as a cache hit or miss."""
        if self.cache.touch(page):
            self.metrics.page_hits += 1
        else:
            self.metrics.page_misses += 1

    def charge_page_runs(
        self, kind: str, run_pages: list[int], extra_hits: int
    ) -> None:
        """Bulk page charging for the vectorized path.

        ``run_pages`` is one page number per run of consecutive
        same-page accesses, in access order; each run costs one real
        LRU touch.  ``extra_hits`` covers the within-run repeats that
        per-row readers count as guaranteed hits (pass 0 for the
        deduplicating :meth:`scan_rows` flavor, which suppresses
        repeats entirely).
        """
        self.metrics.page_hits += extra_hits
        touch = self.cache.touch
        metrics = self.metrics
        for page in run_pages:
            if touch((kind, page)):
                metrics.page_hits += 1
            else:
                metrics.page_misses += 1

    # ------------------------------------------------------------------
    # Instrumented reads
    # ------------------------------------------------------------------
    def read_labels(self, vid: int) -> frozenset[str]:
        self.metrics.vertex_reads += 1
        self._touch_page(("v", vid // self._vertices_per_page))
        return self.graph.labels_of(vid)

    def read_property(self, vid: int, name: str) -> object:
        self.metrics.property_reads += 1
        self._touch_page(("v", vid // self._vertices_per_page))
        return self.graph.get_property(vid, name)

    def property_reader(self, name: str):
        """A fused per-query closure for reading one vertex property.

        Resolves the property key's symbol id once and binds every
        hot attribute (metrics, page geometry, column maps) into the
        closure, so the executor's compiled projections pay one call
        per row instead of four.  Safe to hold for one execution:
        symbol ids are append-only and a query never mutates the
        graph.  Accounting matches :meth:`read_property` exactly.
        """
        graph = self.graph
        sid = graph._symbols.sid(name)
        v_tid = graph._v_tid
        v_row = graph._v_row
        tables = graph._tables
        metrics = self.metrics
        per_page = self._vertices_per_page
        touch = self._touch_page

        def read(vid: int) -> object:
            metrics.property_reads += 1
            touch(("v", vid // per_page))
            tid = v_tid[vid]
            if tid < 0:
                raise GraphError(f"unknown vertex {vid}")
            column = tables[tid].columns.get(sid)
            if column is None:
                return None
            row = v_row[vid]
            mask = column.mask
            if row >= len(mask) or not mask[row]:
                return None
            return column.data[row]

        if sid is None:
            # Key never interned: every read is None (same page/metric
            # accounting as a probing read).
            def read_absent(vid: int) -> object:
                metrics.property_reads += 1
                touch(("v", vid // per_page))
                if v_tid[vid] < 0:
                    raise GraphError(f"unknown vertex {vid}")
                return None

            return read_absent
        return read

    def read_edge_property(self, eid: int, name: str) -> object:
        self.metrics.property_reads += 1
        graph = self.graph
        labels = graph._e_label
        if not (0 <= eid < len(labels)) or labels[eid] < 0:
            raise GraphError(f"unknown edge {eid}")
        props = graph._e_props.get(eid)
        if props is None:
            return None
        return props.get(name)

    def expand(
        self, vid: int, label: str | None, direction: str
    ) -> list[Edge]:
        """Adjacent edges of ``vid``; each returned edge is a traversal."""
        self._touch_page(("a", vid // self._adjacency_per_page))
        if direction == "out":
            edges = self.graph.out_edges(vid, label)
        elif direction == "in":
            edges = self.graph.in_edges(vid, label)
        else:
            edges = self.graph.out_edges(vid, label) + self.graph.in_edges(
                vid, label
            )
        self.metrics.edge_traversals += len(edges)
        return edges

    def expand_pairs(
        self, vid: int, labels: tuple[str, ...], direction: str
    ) -> list[tuple[int, int]]:
        """(eid, neighbor) pairs of ``vid``; one page touch per expand.

        The fast path behind pattern expansion.  When the graph holds
        a valid frozen CSR view the pairs come from two offset reads
        and a slice per edge type; otherwise the mutable adjacency
        dicts serve them (buckets store the neighbor id, so no edge
        record is dereferenced either way).
        """
        self._touch_page(("a", vid // self._adjacency_per_page))
        graph = self.graph
        view = graph._view
        if view is not None and view.epoch == graph._epoch:
            if labels:
                sids = self._label_sids.get(labels)
                if sids is None:
                    sid = graph._symbols.sid
                    sids = tuple(sid(label) for label in labels)
                    if None not in sids:
                        self._label_sids[labels] = sids
            else:
                sids = None
            pairs = view.expand_pairs(vid, sids, direction)
            self.metrics.edge_traversals += len(pairs)
            return pairs
        pairs: list[tuple[int, int]] = []
        if direction != "in":
            adjacency = self._graph_out.get(vid)
            if adjacency:
                self._collect_pairs(adjacency, labels, pairs)
        if direction != "out":
            adjacency = self._graph_in.get(vid)
            if adjacency:
                self._collect_pairs(adjacency, labels, pairs)
        self.metrics.edge_traversals += len(pairs)
        return pairs

    @staticmethod
    def _collect_pairs(
        adjacency: dict, labels: tuple[str, ...], pairs: list
    ) -> None:
        if labels:
            for label in labels:
                bucket = adjacency.get(label)
                if bucket:
                    pairs.extend(bucket.items())
        else:
            for bucket in adjacency.values():
                pairs.extend(bucket.items())

    def accept_vertex(
        self,
        vid: int,
        labels: frozenset[str] | None,
        props: tuple[tuple[str, object], ...],
    ) -> bool:
        """Fused label/property acceptance check for one vertex.

        Counts one vertex read when labels are checked and one property
        read per checked property, like the equivalent sequence of
        :meth:`read_labels` / :meth:`read_property` calls.  Reads go
        straight to the label-set table and its columns.
        """
        metrics = self.metrics
        touch_page = self._touch_page
        page = ("v", vid // self._vertices_per_page)
        graph = self.graph
        try:
            tid = graph._v_tid[vid]
        except IndexError:
            raise GraphError(f"unknown vertex {vid}") from None
        if tid < 0:
            raise GraphError(f"unknown vertex {vid}")
        table = graph._tables[tid]
        if labels is not None:
            metrics.vertex_reads += 1
            touch_page(page)
            if not labels <= table.labels:
                return False
        if props:
            row = graph._v_row[vid]
            sid = graph._symbols.sid
            columns = table.columns
            for prop, value in props:
                metrics.property_reads += 1
                touch_page(page)
                column = columns.get(sid(prop))
                if column is None:
                    if value is not None:
                        return False
                    continue
                mask = column.mask
                stored = (
                    column.data[row]
                    if row < len(mask) and mask[row] else None
                )
                if stored != value:
                    return False
        return True

    def scan_rows(
        self,
        label: str | None,
        check_labels: frozenset[str] | None,
        check_props: tuple[tuple[str, object], ...],
    ) -> Iterator[int]:
        """Columnar label/all scan with inline residual checks.

        Streams the vids that pass - lazily, so ``LIMIT`` stops the
        scan early - by iterating each matching label-set table's vid
        list zipped against the checked property's column.  Residual
        *label* checks collapse to a per-table subset test (every row
        of a table shares one label set); the first property check
        rides the column zip; any further properties fall back to
        per-row column reads.  Work accounting mirrors the per-vertex
        path: one vertex read per examined row when labels are
        checked, one property read per property actually examined, and
        one page touch per distinct vertex page (vids within a table
        ascend, so consecutive rows share pages).
        """
        graph = self.graph
        self.metrics.index_lookups += 1
        sym = graph._symbols
        label_sid = None
        if label is not None:
            label_sid = sym.sid(label)
            if label_sid is None:
                return
        count_labels = check_labels is not None
        primary = check_props[0] if check_props else None
        rest = check_props[1:] if len(check_props) > 1 else ()
        rest_sids = tuple((sym.sid(p), v) for p, v in rest)
        metrics = self.metrics
        per_page = self._vertices_per_page
        touch = self._touch_page
        for table in graph._tables:
            if table.live == 0:
                continue
            if label_sid is not None and label_sid not in table.label_sids:
                continue
            if check_labels is not None and not check_labels <= table.labels:
                # Whole table rejected by its label set: the label
                # check still "examined" each live row once.
                metrics.vertex_reads += table.live
                continue
            vids = table.vids
            examined = 0
            last_page = -1
            try:
                if primary is None:
                    for vid in vids:
                        if vid < 0:
                            continue
                        examined += 1
                        page = vid // per_page
                        if page != last_page:
                            touch(("v", page))
                            last_page = page
                        yield vid
                    continue
                name, value = primary
                name_sid = sym.sid(name)
                column = (
                    table.columns.get(name_sid)
                    if name_sid is not None else None
                )
                if column is None:
                    # Property never set on this table: only a None
                    # target can match (absent reads as None).
                    if value is not None:
                        metrics.property_reads += table.live
                        continue
                    mask: bytes = b"\x00" * len(vids)
                    data: list = [None] * len(vids)
                else:
                    mask = column.mask
                    data = column.data
                matches_none = value is None
                if matches_none and len(mask) < len(vids):
                    # Columns pad lazily: rows past the mask's end are
                    # absent, which a None target must still match -
                    # zip would otherwise silently truncate them away.
                    short = len(vids) - len(mask)
                    mask = bytes(mask) + b"\x00" * short
                    data = list(data) + [None] * short
                for vid, present, stored in zip(vids, mask, data):
                    if vid < 0:
                        continue
                    examined += 1
                    if present:
                        if stored != value:
                            continue
                    elif not matches_none:
                        continue
                    page = vid // per_page
                    if page != last_page:
                        touch(("v", page))
                        last_page = page
                    if rest_sids:
                        row = graph._v_row[vid]
                        if any(
                            table.get_prop(row, sid) != want
                            for sid, want in rest_sids
                        ):
                            continue
                    yield vid
            finally:
                # Charged per examined row: one vertex read when the
                # label set was checked, one property read per declared
                # property (residual props are charged even for rows
                # the primary check pruned - acceptable for the
                # simulated model and monotone under LIMIT).
                if count_labels:
                    metrics.vertex_reads += examined
                metrics.property_reads += examined * len(check_props)

    def edge_between(
        self,
        src: int,
        dst: int,
        labels: tuple[str, ...],
        direction: str,
    ) -> int | None:
        """O(1) join-check probe: the first matching eid, or None.

        Costs one adjacency-page touch and one edge traversal - the
        executor's join-check step uses this instead of scanning and
        re-counting the full adjacency list of ``src``.
        """
        self._touch_page(("a", src // self._adjacency_per_page))
        self.metrics.edge_traversals += 1
        for label in labels or (None,):
            eid = self.graph.first_edge_between(src, dst, label, direction)
            if eid is not None:
                return eid
        return None

    def label_scan(self, label: str) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.vertices_with_label(label)

    def index_lookup(self, label: str, prop: str, value: object) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.lookup_property(label, prop, value)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        data_dir: str | Path,
        profile: BackendProfile = NEO4J_LIKE,
        cache: LruPageCache | None = None,
        create: bool = True,
        sync: str = "batch",
    ) -> GraphSession:
        """Open (or create) a durable data directory as a session.

        Recovery loads the latest valid snapshot and replays the WAL
        tail; afterwards every mutation of ``session.graph`` is
        write-ahead logged until :meth:`close`.
        """
        from repro.graphdb.storage import GraphStore

        store = GraphStore.open(data_dir, create=create, sync=sync)
        session = cls(store.graph, profile, cache)
        session.store = store
        return session

    def checkpoint(self) -> Path:
        """Compact the WAL into a fresh snapshot (durable stores only)."""
        if self.store is None:
            raise GraphError("session has no backing store")
        return self.store.checkpoint()

    def close(self) -> None:
        """Flush and detach the backing store, if any."""
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> GraphSession:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_metrics(self) -> ExecutionMetrics:
        """Return the collected metrics and start a fresh counter."""
        finished = self.metrics
        self.metrics = ExecutionMetrics()
        return finished

    def latency_ms(self) -> float:
        return self.profile.latency_ms(self.metrics)
