"""Execution context: instrumented access to a property graph.

Every read the query executor performs goes through a
:class:`GraphSession`, which counts the work (edge traversals, vertex and
property reads) and simulates page I/O through an LRU cache sized by the
backend profile.  Vertices live on property pages, adjacency lists on
adjacency pages; ids are clustered onto pages in insertion order, which
approximates how both Neo4j record stores and JanusGraph's adjacency
layout behave.

Besides the classic per-read API (:meth:`GraphSession.read_labels`,
:meth:`GraphSession.expand`, ...), the session exposes fused fast paths
the streaming executor uses: :meth:`GraphSession.expand_pairs` (raw
(eid, neighbor) pairs, no Edge list), :meth:`GraphSession.accept_vertex`
(label + property check in one call) and
:meth:`GraphSession.edge_between` (O(1) endpoint-pair join probe, one
traversal instead of a full adjacency scan).

A session can also own a durable backing store:
:meth:`GraphSession.open` recovers a data directory (snapshot + WAL
replay, see :mod:`repro.graphdb.storage`) and from then on every graph
mutation is write-ahead logged; :meth:`GraphSession.checkpoint`
compacts the log into a fresh snapshot and :meth:`GraphSession.close`
flushes and detaches.  Sessions created directly from an in-memory
graph behave exactly as before - ``store`` stays ``None``.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import GraphError
from repro.graphdb.backends import BackendProfile, NEO4J_LIKE
from repro.graphdb.graph import Edge, PropertyGraph
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache


class GraphSession:
    """Instrumented read API over a :class:`PropertyGraph`."""

    def __init__(
        self,
        graph: PropertyGraph,
        profile: BackendProfile = NEO4J_LIKE,
        cache: LruPageCache | None = None,
    ):
        self.graph = graph
        self.profile = profile
        self.cache = cache or LruPageCache(profile.cache_pages)
        self.metrics = ExecutionMetrics()
        #: Durable backing store; set by :meth:`GraphSession.open`.
        self.store = None
        self._vertices_per_page = max(1, profile.vertices_per_page)
        self._adjacency_per_page = max(1, profile.adjacency_per_page)
        # Hot-path aliases: the adjacency dicts are mutated in place by
        # the graph, never replaced, so binding them once is safe.
        self._graph_out = graph._out
        self._graph_in = graph._in

    # ------------------------------------------------------------------
    # Page simulation
    # ------------------------------------------------------------------
    def _touch_page(self, page: tuple) -> None:
        """Record one page access as a cache hit or miss."""
        if self.cache.touch(page):
            self.metrics.page_hits += 1
        else:
            self.metrics.page_misses += 1

    # ------------------------------------------------------------------
    # Instrumented reads
    # ------------------------------------------------------------------
    def read_labels(self, vid: int) -> frozenset[str]:
        self.metrics.vertex_reads += 1
        self._touch_page(("v", vid // self._vertices_per_page))
        return self.graph.vertex(vid).labels

    def read_property(self, vid: int, name: str) -> object:
        self.metrics.property_reads += 1
        self._touch_page(("v", vid // self._vertices_per_page))
        return self.graph.vertex(vid).properties.get(name)

    def read_edge_property(self, eid: int, name: str) -> object:
        self.metrics.property_reads += 1
        return self.graph.edge(eid).properties.get(name)

    def expand(
        self, vid: int, label: str | None, direction: str
    ) -> list[Edge]:
        """Adjacent edges of ``vid``; each returned edge is a traversal."""
        self._touch_page(("a", vid // self._adjacency_per_page))
        if direction == "out":
            edges = self.graph.out_edges(vid, label)
        elif direction == "in":
            edges = self.graph.in_edges(vid, label)
        else:
            edges = self.graph.out_edges(vid, label) + self.graph.in_edges(
                vid, label
            )
        self.metrics.edge_traversals += len(edges)
        return edges

    def expand_pairs(
        self, vid: int, labels: tuple[str, ...], direction: str
    ) -> list[tuple[int, int]]:
        """(eid, neighbor) pairs of ``vid``; one page touch per expand.

        The fast path behind pattern expansion: adjacency buckets store
        the neighbor id, so no edge record is dereferenced and no
        :class:`Edge` list is built.
        """
        self._touch_page(("a", vid // self._adjacency_per_page))
        metrics = self.metrics
        pairs: list[tuple[int, int]] = []
        if direction != "in":
            adjacency = self._graph_out.get(vid)
            if adjacency:
                self._collect_pairs(adjacency, labels, pairs)
        if direction != "out":
            adjacency = self._graph_in.get(vid)
            if adjacency:
                self._collect_pairs(adjacency, labels, pairs)
        metrics.edge_traversals += len(pairs)
        return pairs

    @staticmethod
    def _collect_pairs(
        adjacency: dict, labels: tuple[str, ...], pairs: list
    ) -> None:
        if labels:
            for label in labels:
                bucket = adjacency.get(label)
                if bucket:
                    pairs.extend(bucket.items())
        else:
            for bucket in adjacency.values():
                pairs.extend(bucket.items())

    def accept_vertex(
        self,
        vid: int,
        labels: frozenset[str] | None,
        props: tuple[tuple[str, object], ...],
    ) -> bool:
        """Fused label/property acceptance check for one vertex.

        Counts one vertex read when labels are checked and one property
        read per checked property, like the equivalent sequence of
        :meth:`read_labels` / :meth:`read_property` calls.
        """
        metrics = self.metrics
        touch_page = self._touch_page
        page = ("v", vid // self._vertices_per_page)
        vertex = self.graph.vertex(vid)
        if labels is not None:
            metrics.vertex_reads += 1
            touch_page(page)
            if not labels <= vertex.labels:
                return False
        if props:
            properties = vertex.properties
            for prop, value in props:
                metrics.property_reads += 1
                touch_page(page)
                if properties.get(prop) != value:
                    return False
        return True

    def edge_between(
        self,
        src: int,
        dst: int,
        labels: tuple[str, ...],
        direction: str,
    ) -> int | None:
        """O(1) join-check probe: the first matching eid, or None.

        Costs one adjacency-page touch and one edge traversal - the
        executor's join-check step uses this instead of scanning and
        re-counting the full adjacency list of ``src``.
        """
        self._touch_page(("a", src // self._adjacency_per_page))
        self.metrics.edge_traversals += 1
        for label in labels or (None,):
            eid = self.graph.first_edge_between(src, dst, label, direction)
            if eid is not None:
                return eid
        return None

    def label_scan(self, label: str) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.vertices_with_label(label)

    def index_lookup(self, label: str, prop: str, value: object) -> list[int]:
        self.metrics.index_lookups += 1
        return self.graph.lookup_property(label, prop, value)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        data_dir: str | Path,
        profile: BackendProfile = NEO4J_LIKE,
        cache: LruPageCache | None = None,
        create: bool = True,
        sync: str = "batch",
    ) -> GraphSession:
        """Open (or create) a durable data directory as a session.

        Recovery loads the latest valid snapshot and replays the WAL
        tail; afterwards every mutation of ``session.graph`` is
        write-ahead logged until :meth:`close`.
        """
        from repro.graphdb.storage import GraphStore

        store = GraphStore.open(data_dir, create=create, sync=sync)
        session = cls(store.graph, profile, cache)
        session.store = store
        return session

    def checkpoint(self) -> Path:
        """Compact the WAL into a fresh snapshot (durable stores only)."""
        if self.store is None:
            raise GraphError("session has no backing store")
        return self.store.checkpoint()

    def close(self) -> None:
        """Flush and detach the backing store, if any."""
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> GraphSession:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_metrics(self) -> ExecutionMetrics:
        """Return the collected metrics and start a fresh counter."""
        finished = self.metrics
        self.metrics = ExecutionMetrics()
        return finished

    def latency_ms(self) -> float:
        return self.profile.latency_ms(self.metrics)
