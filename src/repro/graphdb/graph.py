"""In-memory property graph storage (Definition 2 of the paper).

A directed multigraph whose vertices carry a *set of labels* (vertices
produced by collapsing rules keep the labels of every merged concept -
the same behaviour Neo4j multi-labels give) and whose vertices and edges
carry property maps.  Adjacency is indexed by edge label in both
directions, so expanding a typed pattern hop only touches matching
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import GraphError


@dataclass
class Vertex:
    vid: int
    labels: frozenset[str]
    properties: dict[str, object] = field(default_factory=dict)


@dataclass
class Edge:
    eid: int
    src: int
    dst: int
    label: str
    properties: dict[str, object] = field(default_factory=dict)


class PropertyGraph:
    """Vertex/edge stores with label and adjacency indexes."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._label_index: dict[str, list[int]] = {}
        self._out: dict[int, dict[str, list[int]]] = {}
        self._in: dict[int, dict[str, list[int]]] = {}
        self._property_indexes: dict[tuple[str, str], dict] = {}
        self._next_vid = 0
        self._next_eid = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        labels: Iterable[str] | str,
        properties: dict[str, object] | None = None,
    ) -> int:
        if isinstance(labels, str):
            labels = (labels,)
        label_set = frozenset(labels)
        if not label_set:
            raise GraphError("a vertex needs at least one label")
        vid = self._next_vid
        self._next_vid += 1
        self._vertices[vid] = Vertex(vid, label_set, dict(properties or {}))
        for label in label_set:
            self._label_index.setdefault(label, []).append(vid)
        self._out[vid] = {}
        self._in[vid] = {}
        for (label, prop), index in self._property_indexes.items():
            if label in label_set:
                value = self._vertices[vid].properties.get(prop)
                if value is not None:
                    index.setdefault(value, []).append(vid)
        return vid

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        properties: dict[str, object] | None = None,
    ) -> int:
        for endpoint in (src, dst):
            if endpoint not in self._vertices:
                raise GraphError(f"unknown vertex {endpoint}")
        eid = self._next_eid
        self._next_eid += 1
        self._edges[eid] = Edge(eid, src, dst, label, dict(properties or {}))
        self._out[src].setdefault(label, []).append(eid)
        self._in[dst].setdefault(label, []).append(eid)
        return eid

    def set_property(self, vid: int, name: str, value: object) -> None:
        vertex = self.vertex(vid)
        old = vertex.properties.get(name)
        vertex.properties[name] = value
        for (label, prop), index in self._property_indexes.items():
            if prop != name or label not in vertex.labels:
                continue
            if old is not None and vid in index.get(old, ()):
                index[old].remove(vid)
            if value is not None:
                index.setdefault(value, []).append(vid)

    def remove_property(self, vid: int, name: str) -> None:
        vertex = self.vertex(vid)
        old = vertex.properties.pop(name, None)
        if old is None:
            return
        for (label, prop), index in self._property_indexes.items():
            if prop == name and label in vertex.labels:
                if vid in index.get(old, ()):
                    index[old].remove(vid)

    def remove_edge(self, eid: int) -> None:
        """Remove an edge (update handling, Section 4.2 of the paper)."""
        edge = self.edge(eid)
        del self._edges[eid]
        self._out[edge.src][edge.label].remove(eid)
        self._in[edge.dst][edge.label].remove(eid)

    def remove_vertex(self, vid: int) -> None:
        """Remove a vertex and every incident edge."""
        vertex = self.vertex(vid)
        for edge in list(self.out_edges(vid)) + list(self.in_edges(vid)):
            if edge.eid in self._edges:
                self.remove_edge(edge.eid)
        for label in vertex.labels:
            self._label_index[label].remove(vid)
        for (label, prop), index in self._property_indexes.items():
            if label in vertex.labels:
                value = vertex.properties.get(prop)
                if value is not None and vid in index.get(value, ()):
                    index[value].remove(vid)
        del self._vertices[vid]
        del self._out[vid]
        del self._in[vid]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def vertex(self, vid: int) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise GraphError(f"unknown vertex {vid}") from None

    def edge(self, eid: int) -> Edge:
        try:
            return self._edges[eid]
        except KeyError:
            raise GraphError(f"unknown edge {eid}") from None

    def has_label(self, vid: int, label: str) -> bool:
        return label in self.vertex(vid).labels

    def vertices_with_label(self, label: str) -> list[int]:
        return list(self._label_index.get(label, ()))

    def label_count(self, label: str) -> int:
        return len(self._label_index.get(label, ()))

    def labels(self) -> list[str]:
        return sorted(self._label_index)

    def out_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._out.get(vid, {})
        return self._edges_from(adjacency, label)

    def in_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._in.get(vid, {})
        return self._edges_from(adjacency, label)

    def _edges_from(
        self, adjacency: dict[str, list[int]], label: str | None
    ) -> list[Edge]:
        if label is not None:
            return [self._edges[e] for e in adjacency.get(label, ())]
        result: list[Edge] = []
        for edge_ids in adjacency.values():
            result.extend(self._edges[e] for e in edge_ids)
        return result

    def degree(self, vid: int) -> int:
        out_deg = sum(len(v) for v in self._out.get(vid, {}).values())
        in_deg = sum(len(v) for v in self._in.get(vid, {}).values())
        return out_deg + in_deg

    def iter_vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def iter_edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    # ------------------------------------------------------------------
    # Property indexes (exact-match lookups for {prop: value} patterns)
    # ------------------------------------------------------------------
    def create_property_index(self, label: str, prop: str) -> None:
        key = (label, prop)
        if key in self._property_indexes:
            return
        index: dict = {}
        for vid in self._label_index.get(label, ()):
            value = self._vertices[vid].properties.get(prop)
            if value is not None:
                index.setdefault(value, []).append(vid)
        self._property_indexes[key] = index

    def has_property_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._property_indexes

    def lookup_property(
        self, label: str, prop: str, value: object
    ) -> list[int]:
        try:
            index = self._property_indexes[(label, prop)]
        except KeyError:
            raise GraphError(
                f"no property index on ({label!r}, {prop!r})"
            ) from None
        return list(index.get(value, ()))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def size_bytes(self, edge_bytes: int = 16) -> int:
        """Approximate storage footprint (used to sanity-check budgets)."""
        from repro.ontology.model import DataType

        total = 0
        for vertex in self._vertices.values():
            for value in vertex.properties.values():
                if isinstance(value, list):
                    total += DataType.STRING.size_bytes * len(value)
                elif isinstance(value, bool):
                    total += DataType.BOOL.size_bytes
                elif isinstance(value, int):
                    total += DataType.INT.size_bytes
                elif isinstance(value, float):
                    total += DataType.FLOAT.size_bytes
                else:
                    total += DataType.STRING.size_bytes
        total += edge_bytes * len(self._edges)
        return total

    def summary(self) -> str:
        return (
            f"PropertyGraph {self.name!r}: {self.num_vertices:,} vertices, "
            f"{self.num_edges:,} edges, {len(self._label_index)} labels"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
