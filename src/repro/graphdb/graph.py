"""In-memory property graph storage (Definition 2 of the paper).

A directed multigraph whose vertices carry a *set of labels* (vertices
produced by collapsing rules keep the labels of every merged concept -
the same behaviour Neo4j multi-labels give) and whose vertices and
edges carry property maps.

Since the columnar-core refactor the primary representation is
column-oriented (the layout analytical graph engines use):

* every label / edge-type / property-key string is interned once into
  the graph's :class:`~repro.graphdb.columnar.SymbolTable`;
* vertices live in one :class:`~repro.graphdb.columnar.VertexTable`
  per distinct label *set*, with typed per-(label-set, key) property
  columns (``array``-backed for int/float, list-backed otherwise) and
  a dense table-local row id per vertex (``_v_tid`` / ``_v_row`` map a
  vid to its table and row);
* edges live in parallel columns indexed directly by eid
  (``_e_src`` / ``_e_dst`` / ``_e_label``); the rare edges with
  properties keep a sparse side dict;
* :meth:`PropertyGraph.freeze` materializes an immutable per-edge-type
  CSR read view (see :mod:`repro.graphdb.view`), invalidated by the
  graph's mutation epoch - the counter every mutation advances
  alongside the WAL listener callbacks.

The classic object API survives as façades: :class:`Vertex` and
:class:`Edge` are id-holding views whose ``labels`` / ``properties``
attributes read through to the columns, so existing callers (loaders,
optimizers, tests) are untouched while scans, statistics builds and
the snapshot codec iterate flat columns.

Every secondary structure (label index, adjacency lists, property
indexes, the endpoint-pair index) still uses insertion-ordered dict
buckets keyed by id, so membership tests, insertion and removal are
all O(1) while iteration order stays deterministic.  The
endpoint-pair index additionally gives ``has_edge_between`` an O(1)
answer to "is there a :T edge from u to v?", which the executor's
join-check step uses instead of scanning a full adjacency list.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Iterable, Iterator

from repro.exceptions import GraphError, TransactionError
from repro.graphdb.columnar import (
    KIND_FLOAT,
    KIND_INT,
    PropertyColumn,
    SymbolTable,
    VertexTable,
)
from repro.graphdb.statistics import GraphStatistics
from repro.graphdb.view import GraphView

#: Insertion-ordered bucket keyed by id.  Adjacency buckets map
#: eid -> neighbor vid (so expansion never dereferences edge records);
#: the label/property/pair indexes ignore the values.
_Bucket = dict

_MISSING = object()


class VertexProperties(MutableMapping):
    """Dict-like façade over one vertex's property columns.

    Reads go straight to the columns.  Writes mirror the old
    plain-dict semantics: they update the stored value *without*
    touching property indexes, statistics, or WAL listeners - code
    that needs those side effects calls
    :meth:`PropertyGraph.set_property` (exactly as before, when
    mutating ``vertex.properties`` bypassed the same machinery).
    """

    __slots__ = ("_graph", "_vid")

    def __init__(self, graph: "PropertyGraph", vid: int):
        self._graph = graph
        self._vid = vid

    def _locate(self) -> tuple[VertexTable, int]:
        return self._graph._locate(self._vid)

    def __getitem__(self, name: str) -> object:
        table, row = self._locate()
        sid = self._graph._symbols.sid(name)
        value = table.get_prop(row, sid, _MISSING)
        if value is _MISSING:
            raise KeyError(name)
        return value

    def get(self, name: str, default: object = None) -> object:
        table, row = self._locate()
        return table.get_prop(row, self._graph._symbols.sid(name), default)

    def __setitem__(self, name: str, value: object) -> None:
        table, row = self._locate()
        table.set_prop(row, self._graph._symbols.intern(name), value)
        self._graph._touch()

    def __delitem__(self, name: str) -> None:
        table, row = self._locate()
        sid = self._graph._symbols.sid(name)
        if sid is None or not table.has_prop(row, sid):
            raise KeyError(name)
        table.unset_prop(row, sid)
        self._graph._touch()

    def __contains__(self, name: str) -> bool:
        table, row = self._locate()
        return table.has_prop(row, self._graph._symbols.sid(name))

    def __iter__(self) -> Iterator[str]:
        table, row = self._locate()
        name = self._graph._symbols.name
        return iter([name(sid) for sid in table.row_keys(row)])

    def __len__(self) -> int:
        table, row = self._locate()
        return len(table.row_keys(row))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self))


class Vertex:
    """Lightweight façade over one row of a vertex table."""

    __slots__ = ("_graph", "vid")

    def __init__(self, graph: "PropertyGraph", vid: int):
        self._graph = graph
        self.vid = vid

    @property
    def labels(self) -> frozenset[str]:
        return self._graph.labels_of(self.vid)

    @property
    def properties(self) -> VertexProperties:
        return VertexProperties(self._graph, self.vid)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Vertex)
            and other.vid == self.vid
            and other._graph is self._graph
        )

    def __hash__(self) -> int:
        return hash((id(self._graph), self.vid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vertex(vid={self.vid}, labels={set(self.labels)!r}, "
            f"properties={dict(self.properties)!r})"
        )


class EdgeProperties(MutableMapping):
    """Dict-like façade over one edge's sparse property dict.

    Reads never allocate: property-less edges stay absent from the
    graph's sparse side table.  The backing dict is created (and
    registered) only on the first write.
    """

    __slots__ = ("_graph", "_eid")

    def __init__(self, graph: "PropertyGraph", eid: int):
        self._graph = graph
        self._eid = eid

    def _props(self) -> dict:
        return self._graph._e_props.get(self._eid) or {}

    def __getitem__(self, name: str) -> object:
        return self._props()[name]

    def get(self, name: str, default: object = None) -> object:
        return self._props().get(name, default)

    def __setitem__(self, name: str, value: object) -> None:
        graph = self._graph
        eid = self._eid
        labels = graph._e_label
        if not (0 <= eid < len(labels)) or labels[eid] < 0:
            raise GraphError(f"unknown edge {eid}")
        props = graph._e_props.get(eid)
        if props is None:
            props = graph._e_props[eid] = {}
        props[name] = value

    def __delitem__(self, name: str) -> None:
        del self._props()[name]

    def __contains__(self, name: str) -> bool:
        return name in self._props()

    def __iter__(self):
        return iter(self._props())

    def __len__(self) -> int:
        return len(self._props())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self._props()))


class Edge:
    """Lightweight façade over one row of the edge columns."""

    __slots__ = ("_graph", "eid")

    def __init__(self, graph: "PropertyGraph", eid: int):
        self._graph = graph
        self.eid = eid

    @property
    def src(self) -> int:
        return self._graph._e_src[self.eid]

    @property
    def dst(self) -> int:
        return self._graph._e_dst[self.eid]

    @property
    def label(self) -> str:
        sid = self._graph._e_label[self.eid]
        if sid < 0:  # stale facade of a removed edge
            raise GraphError(f"unknown edge {self.eid}")
        return self._graph._symbols.name(sid)

    @property
    def properties(self) -> EdgeProperties:
        """Dict-like view of the edge's (sparse) properties."""
        return EdgeProperties(self._graph, self.eid)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Edge)
            and other.eid == self.eid
            and other._graph is self._graph
        )

    def __hash__(self) -> int:
        return hash((id(self._graph), self.eid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Edge(eid={self.eid}, src={self.src}, dst={self.dst}, "
            f"label={self.label!r})"
        )


class _VerticesView:
    """Mapping-flavored view of the live vertex ids (test/debug aid)."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "PropertyGraph"):
        self._graph = graph

    def __contains__(self, vid: object) -> bool:
        tids = self._graph._v_tid
        return (
            isinstance(vid, int) and 0 <= vid < len(tids) and tids[vid] >= 0
        )

    def __len__(self) -> int:
        return sum(table.live for table in self._graph._tables)

    def __iter__(self) -> Iterator[int]:
        for vid, tid in enumerate(self._graph._v_tid):
            if tid >= 0:
                yield vid

    def __getitem__(self, vid: int) -> Vertex:
        if vid not in self:
            raise KeyError(vid)
        return Vertex(self._graph, vid)

    def values(self) -> Iterator[Vertex]:
        graph = self._graph
        return (Vertex(graph, vid) for vid in self)


class _EdgesView:
    """Mapping-flavored view of the live edge ids (test/debug aid)."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "PropertyGraph"):
        self._graph = graph

    def __contains__(self, eid: object) -> bool:
        labels = self._graph._e_label
        return (
            isinstance(eid, int)
            and 0 <= eid < len(labels)
            and labels[eid] >= 0
        )

    def __len__(self) -> int:
        return self._graph._num_edges

    def __iter__(self) -> Iterator[int]:
        for eid, sid in enumerate(self._graph._e_label):
            if sid >= 0:
                yield eid

    def __getitem__(self, eid: int) -> Edge:
        if eid not in self:
            raise KeyError(eid)
        return Edge(self._graph, eid)

    def values(self) -> Iterator[Edge]:
        graph = self._graph
        return (Edge(graph, eid) for eid in self)


class PropertyGraph:
    """Columnar vertex/edge stores with label, adjacency, pair indexes."""

    def __init__(self, name: str = "graph"):
        self.name = name
        #: String interning shared by labels, edge types, and keys.
        self._symbols = SymbolTable()
        #: One table per distinct label set; index == label-set id.
        self._tables: list[VertexTable] = []
        self._labelset_ids: dict[frozenset[int], int] = {}
        #: label-set id -> frozenset of label strings (façade reads).
        self._labelset_strs: list[frozenset[str]] = []
        #: vid -> owning table id (-1 = removed) / table-local row.
        self._v_tid: list[int] = []
        self._v_row: list[int] = []
        #: Edge columns indexed directly by eid (-1 label = removed).
        self._e_src: list[int] = []
        self._e_dst: list[int] = []
        self._e_label: list[int] = []
        #: Sparse eid -> property dict (most edges carry none).
        self._e_props: dict[int, dict] = {}
        self._num_edges = 0
        #: label sid -> insertion-ordered vid bucket.
        self._label_index: dict[int, _Bucket] = {}
        self._out: dict[int, dict[str, _Bucket]] = {}
        self._in: dict[int, dict[str, _Bucket]] = {}
        #: (src, dst) -> label -> ordered set of eids.  ``None`` means
        #: "not materialized yet": the snapshot loader defers building
        #: this index until the first endpoint probe, because batch
        #: construction from the edge columns is cheaper than the
        #: per-edge incremental path and many workloads never probe at
        #: all.  While deferred, mutations leave it deferred (they are
        #: visible to the eventual batch build); they must never create
        #: a partially-populated index.
        self._pairs: dict[tuple[int, int], dict[str, _Bucket]] | None = {}
        self._property_indexes: dict[tuple[str, str], dict] = {}
        self._next_vid = 0
        self._next_eid = 0
        #: Mutation listeners (the durable store's WAL hook).  Each is
        #: called as ``listener(op, args)`` *after* the mutation has
        #: been applied; ``op`` is the method name, ``args`` its
        #: essential arguments including assigned ids.
        self._listeners: list = []
        #: In-memory undo log of the active transaction (``None`` when
        #: no transaction is open).  Every mutation appends the inverse
        #: operation; :meth:`rollback_transaction` replays it in
        #: reverse.  See the Transactions section below.
        self._undo: list[tuple] | None = None
        #: While True, listener callbacks are suppressed (rollback
        #: replays inverses that recovery must never see - the WAL
        #: frame is discarded wholesale instead).
        self._muted = False
        #: Planner statistics, materialized lazily by
        #: :meth:`statistics` (or attached by the snapshot loader) and
        #: kept current by per-mutation hooks in the methods below.
        #: Unlike the listeners, the hooks receive pre-mutation context
        #: (removals need the labels/values being removed).
        self._stats: GraphStatistics | None = None
        #: Mutation epoch + cached frozen CSR view.  Every mutation
        #: advances the epoch and drops the view; :meth:`freeze`
        #: rebuilds it on demand.
        self._epoch = 0
        self._view: GraphView | None = None
        #: labels-argument -> VertexTable memo for add_vertex: loaders
        #: pass the same str/tuple/frozenset label arguments millions
        #: of times, so the intern + frozenset work runs once per
        #: distinct argument.  Symbol ids and tables are append-only,
        #: so entries never go stale.
        self._table_cache: dict = {}
        self._vertices = _VerticesView(self)
        self._edges = _EdgesView(self)

    # ------------------------------------------------------------------
    # Mutation listeners (write-ahead logging hook)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Subscribe ``listener(op, args)`` to every mutation."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _emit(self, op: str, *args) -> None:
        if self._muted:
            return
        for listener in self._listeners:
            listener(op, args)

    # ------------------------------------------------------------------
    # Transactions (in-memory undo log + WAL framing events)
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._undo is not None

    def begin_transaction(self) -> None:
        """Open a transaction: mutations become revocable until commit.

        Emits a ``tx_begin`` listener event, which the durable store
        writes as a WAL BEGIN framing record - recovery discards any
        frame that never reached its COMMIT, so a crash mid-transaction
        recovers to the pre-transaction state.  Transactions do not
        nest.
        """
        if self._undo is not None:
            raise TransactionError("a transaction is already active")
        # First entry (applied last on rollback): restore the id
        # counters, so ids allocated by rolled-back mutations are
        # reused - keeping the live graph identical to what replaying
        # the WAL (which drops the frame wholesale) reconstructs.
        self._undo = [("counters", self._next_vid, self._next_eid)]
        self._emit("tx_begin")

    def commit_transaction(self) -> None:
        """Make the open transaction's mutations permanent."""
        if self._undo is None:
            raise TransactionError("no active transaction")
        self._undo = None
        self._emit("tx_commit")

    def rollback_transaction(self) -> None:
        """Revert every mutation of the open transaction.

        The undo log replays in reverse through the ordinary mutation
        machinery (indexes and statistics stay consistent) with
        listeners muted - the WAL instead gets one ``tx_rollback``
        framing record closing the frame, so recovery skips the
        rolled-back mutations wholesale.
        """
        if self._undo is None:
            raise TransactionError("no active transaction")
        undo = self._undo
        self._undo = None
        self._muted = True
        try:
            for entry in reversed(undo):
                self._apply_undo(entry)
        finally:
            self._muted = False
        self._emit("tx_rollback")

    def _record_undo(self, entry: tuple) -> None:
        if self._undo is not None:
            self._undo.append(entry)

    def _apply_undo(self, entry: tuple) -> None:
        op = entry[0]
        if op == "unadd_vertex":
            self.remove_vertex(entry[1])
        elif op == "unadd_edge":
            self.remove_edge(entry[1])
        elif op == "unset_property":
            _op, vid, name, old = entry
            if old is None:
                self.remove_property(vid, name)
            else:
                self.set_property(vid, name, old)
        elif op == "reset_property":
            _op, vid, name, old = entry
            self.set_property(vid, name, old)
        elif op == "restore_edge":
            _op, eid, src, dst, label, props = entry
            self._restore_edge(eid, src, dst, label, props)
        elif op == "restore_vertex":
            _op, vid, labels, props = entry
            self._restore_vertex(vid, labels, props)
        elif op == "counters":
            # Applied last (it is the frame's first entry): every id
            # at or past the saved counters belonged to a rolled-back
            # add and is tombstoned by now - drop the tombstone tails
            # so the ids are reallocated, exactly as a WAL recovery
            # (which never sees the frame) would allocate them.
            _op, next_vid, next_eid = entry
            del self._v_tid[next_vid:]
            del self._v_row[next_vid:]
            del self._e_src[next_eid:]
            del self._e_dst[next_eid:]
            del self._e_label[next_eid:]
            self._next_vid = next_vid
            self._next_eid = next_eid
        else:  # drop_index
            _op, label, prop = entry
            self._drop_property_index(label, prop)

    def _restore_vertex(
        self, vid: int, labels: frozenset[str], props: dict
    ) -> None:
        """Re-materialize a removed vertex under its original vid.

        Mirrors :meth:`add_vertex` (indexes, statistics, epoch) but
        reuses ``vid`` instead of allocating: the id maps still have
        the slot (tombstoned), and ``vid < _next_vid`` always holds.
        """
        intern = self._symbols.intern
        table = self._table_for(frozenset(intern(l) for l in labels))
        row = table.new_row(vid)
        self._v_tid[vid] = table.labelset_id
        self._v_row[vid] = row
        for name, value in props.items():
            table.set_prop(row, intern(name), value)
        self._attach_vertex(table, vid, props)

    def _restore_edge(
        self, eid: int, src: int, dst: int, label: str, props: dict
    ) -> None:
        """Re-materialize a removed edge under its original eid."""
        self._e_src[eid] = src
        self._e_dst[eid] = dst
        self._e_label[eid] = self._symbols.intern(label)
        if props:
            self._e_props[eid] = dict(props)
        self._attach_edge(eid, src, dst, label)

    def _drop_property_index(self, label: str, prop: str) -> None:
        """Undo of :meth:`create_property_index` (rollback only)."""
        self._property_indexes.pop((label, prop), None)
        if self._stats is not None:
            # Cached plans may embed the dropped index as their access
            # path: force an epoch bump so they age out.
            self._stats.on_create_index()
        self._touch()

    # ------------------------------------------------------------------
    # Epoch / frozen view
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        return self._epoch

    def _touch(self) -> None:
        """Advance the mutation epoch; invalidates any frozen view."""
        self._epoch += 1
        self._view = None

    def freeze(self) -> GraphView:
        """The CSR read view of the current epoch (built on demand).

        O(V + E) when (re)built, O(1) while the graph stays unmutated.
        Hot read paths (the session's expand, PageRank, benchmarks)
        use a valid view automatically; they never build one
        implicitly.
        """
        view = self._view
        if view is None or view.epoch != self._epoch:
            view = self._view = GraphView(self)
        return view

    @property
    def frozen_view(self) -> GraphView | None:
        """The cached CSR view if still valid, else ``None``."""
        return self._view

    # ------------------------------------------------------------------
    # Internal columnar plumbing
    # ------------------------------------------------------------------
    def _locate(self, vid: int) -> tuple[VertexTable, int]:
        try:
            # vid < 0 must not fall into Python negative indexing.
            tid = self._v_tid[vid] if vid >= 0 else -1
        except (IndexError, TypeError):
            raise GraphError(f"unknown vertex {vid}") from None
        if tid < 0:
            raise GraphError(f"unknown vertex {vid}")
        return self._tables[tid], self._v_row[vid]

    def _table_for(self, label_sids: frozenset[int]) -> VertexTable:
        tid = self._labelset_ids.get(label_sids)
        if tid is None:
            tid = len(self._tables)
            self._labelset_ids[label_sids] = tid
            name = self._symbols.name
            labels = frozenset(name(sid) for sid in label_sids)
            self._tables.append(VertexTable(tid, label_sids, labels))
            self._labelset_strs.append(labels)
        return self._tables[tid]

    def _row_properties(self, table: VertexTable, row: int) -> dict:
        name = self._symbols.name
        return {
            name(sid): column.data[row]
            for sid, column in table.columns.items()
            if column.present(row)
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        labels: Iterable[str] | str,
        properties: dict[str, object] | None = None,
    ) -> int:
        table = (
            self._table_cache.get(labels)
            if isinstance(labels, (str, tuple, frozenset))
            else None
        )
        if table is None:
            cache_key = (
                labels if isinstance(labels, (str, tuple, frozenset))
                else None
            )
            if isinstance(labels, str):
                labels = (labels,)
            intern = self._symbols.intern
            label_sids = frozenset(intern(label) for label in labels)
            if not label_sids:
                raise GraphError("a vertex needs at least one label")
            table = self._table_for(label_sids)
            if cache_key is not None:
                self._table_cache[cache_key] = table
        props = dict(properties or {})
        vid = self._next_vid
        self._next_vid += 1
        row = table.new_row(vid)
        self._v_tid.append(table.labelset_id)
        self._v_row.append(row)
        if props:
            intern = self._symbols.intern
            for name, value in props.items():
                table.set_prop(row, intern(name), value)
        self._attach_vertex(table, vid, props)
        if self._undo is not None:
            self._undo.append(("unadd_vertex", vid))
        if self._listeners:
            self._emit("add_vertex", vid, table.labels, props)
        return vid

    def _attach_vertex(
        self, table: VertexTable, vid: int, props: dict
    ) -> None:
        """Secondary-structure bookkeeping for a materialized vertex.

        Shared by :meth:`add_vertex` and the rollback path's
        :meth:`_restore_vertex`, so the label index, property indexes,
        statistics hooks, and epoch bump can never diverge between the
        two.
        """
        label_index = self._label_index
        for sid in table.label_sids:
            label_index.setdefault(sid, {})[vid] = None
        self._out[vid] = {}
        self._in[vid] = {}
        label_set = table.labels
        if self._property_indexes:
            for (label, prop), index in self._property_indexes.items():
                if label in label_set:
                    value = props.get(prop)
                    if value is not None:
                        index.setdefault(value, {})[vid] = None
        if self._stats is not None:
            self._stats.on_add_vertex(label_set, props)
        self._epoch += 1
        self._view = None

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        properties: dict[str, object] | None = None,
    ) -> int:
        tids = self._v_tid
        for endpoint in (src, dst):
            if not (0 <= endpoint < len(tids)) or tids[endpoint] < 0:
                raise GraphError(f"unknown vertex {endpoint}")
        props = dict(properties or {})
        eid = self._next_eid
        self._next_eid += 1
        self._e_src.append(src)
        self._e_dst.append(dst)
        self._e_label.append(self._symbols.intern(label))
        if props:
            self._e_props[eid] = props
        self._attach_edge(eid, src, dst, label)
        if self._undo is not None:
            self._undo.append(("unadd_edge", eid))
        if self._listeners:
            self._emit("add_edge", eid, src, dst, label, props)
        return eid

    def _attach_edge(
        self, eid: int, src: int, dst: int, label: str
    ) -> None:
        """Secondary-structure bookkeeping for a materialized edge.

        Shared by :meth:`add_edge` and the rollback path's
        :meth:`_restore_edge` - adjacency, the endpoint-pair index,
        statistics, and the epoch bump stay in one place.
        """
        self._num_edges += 1
        self._out[src].setdefault(label, {})[eid] = dst
        self._in[dst].setdefault(label, {})[eid] = src
        if self._pairs is not None:
            self._pairs.setdefault((src, dst), {}).setdefault(label, {})[
                eid
            ] = None
        if self._stats is not None:
            tids = self._v_tid
            self._stats.on_add_edge(
                label,
                self._labelset_strs[tids[src]],
                self._labelset_strs[tids[dst]],
            )
        self._epoch += 1
        self._view = None

    def set_property(self, vid: int, name: str, value: object) -> None:
        table, row = self._locate(vid)
        sid = self._symbols.intern(name)
        old = table.get_prop(row, sid)
        table.set_prop(row, sid, value)
        labels = table.labels
        if self._property_indexes:
            for (label, prop), index in self._property_indexes.items():
                if prop != name or label not in labels:
                    continue
                if old is not None:
                    self._index_discard(index, old, vid)
                if value is not None:
                    index.setdefault(value, {})[vid] = None
        if self._stats is not None:
            self._stats.on_set_property(labels, name, old, value)
        self._touch()
        if self._undo is not None:
            self._undo.append(("unset_property", vid, name, old))
        if self._listeners:
            self._emit("set_property", vid, name, value)

    def remove_property(self, vid: int, name: str) -> None:
        table, row = self._locate(vid)
        sid = self._symbols.sid(name)
        old = table.get_prop(row, sid)
        if sid is not None:
            table.unset_prop(row, sid)
        if old is None:
            return
        labels = table.labels
        if self._property_indexes:
            for (label, prop), index in self._property_indexes.items():
                if prop == name and label in labels:
                    self._index_discard(index, old, vid)
        if self._stats is not None:
            self._stats.on_remove_property(labels, name, old)
        self._touch()
        if self._undo is not None:
            self._undo.append(("reset_property", vid, name, old))
        if self._listeners:
            self._emit("remove_property", vid, name)

    @staticmethod
    def _index_discard(index: dict, value: object, vid: int) -> None:
        bucket = index.get(value)
        if bucket is None:
            return
        bucket.pop(vid, None)
        if not bucket:
            del index[value]

    def remove_edge(self, eid: int) -> None:
        """Remove an edge (update handling, Section 4.2 of the paper)."""
        labels = self._e_label
        if not (0 <= eid < len(labels)) or labels[eid] < 0:
            raise GraphError(f"unknown edge {eid}")
        src = self._e_src[eid]
        dst = self._e_dst[eid]
        label = self._symbols.name(labels[eid])
        if self._stats is not None:
            # Endpoint vertices still exist here (remove_vertex drops
            # its incident edges before the vertex itself).
            self._stats.on_remove_edge(
                label,
                self._labelset_strs[self._v_tid[src]],
                self._labelset_strs[self._v_tid[dst]],
            )
        labels[eid] = -1
        self._num_edges -= 1
        props = self._e_props.pop(eid, None)
        self._adjacency_discard(self._out[src], label, eid)
        self._adjacency_discard(self._in[dst], label, eid)
        if self._pairs is not None:
            pair = self._pairs[(src, dst)]
            self._adjacency_discard(pair, label, eid)
            if not pair:
                del self._pairs[(src, dst)]
        self._touch()
        if self._undo is not None:
            self._undo.append(
                ("restore_edge", eid, src, dst, label, props or {})
            )
        if self._listeners:
            self._emit("remove_edge", eid)

    @staticmethod
    def _adjacency_discard(
        adjacency: dict[str, _Bucket], label: str, eid: int
    ) -> None:
        bucket = adjacency[label]
        del bucket[eid]
        if not bucket:
            del adjacency[label]

    def remove_vertex(self, vid: int) -> None:
        """Remove a vertex and every incident edge.

        When the cascade spans multiple listener events (incident
        edges plus the vertex itself) outside an explicit transaction,
        it is wrapped in ``tx_begin``/``tx_commit`` framing so the WAL
        records land as one atomic frame: a crash mid-cascade recovers
        to the pre-removal state, never to a vertex with some edges
        gone.
        """
        table, row = self._locate(vid)
        incident: list[int] = []
        for adjacency in (self._out.get(vid, {}), self._in.get(vid, {})):
            for bucket in adjacency.values():
                incident.extend(bucket)
        e_labels = self._e_label
        frame = bool(
            self._listeners
            and self._undo is None
            and any(e_labels[eid] >= 0 for eid in incident)
        )
        if frame:
            self._emit("tx_begin")
        for eid in incident:
            if e_labels[eid] >= 0:  # self-loops appear on both sides
                self.remove_edge(eid)
        labels = table.labels
        props = self._row_properties(table, row)
        for sid in table.label_sids:
            bucket = self._label_index[sid]
            del bucket[vid]
            if not bucket:
                del self._label_index[sid]
        if self._property_indexes:
            for (label, prop), index in self._property_indexes.items():
                if label in labels:
                    value = props.get(prop)
                    if value is not None:
                        self._index_discard(index, value, vid)
        table.tombstone(row)
        self._v_tid[vid] = -1
        del self._out[vid]
        del self._in[vid]
        if self._stats is not None:
            self._stats.on_remove_vertex(labels, props)
        self._touch()
        if self._undo is not None:
            # Cascaded remove_edge calls above recorded their own
            # entries; reverse replay restores the vertex first, then
            # its edges.
            self._undo.append(("restore_vertex", vid, labels, props))
        if self._listeners:
            self._emit("remove_vertex", vid)
        if frame:
            self._emit("tx_commit")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def vertex(self, vid: int) -> Vertex:
        self._locate(vid)  # raises GraphError when unknown
        return Vertex(self, vid)

    def edge(self, eid: int) -> Edge:
        labels = self._e_label
        if (
            not isinstance(eid, int)
            or not (0 <= eid < len(labels))
            or labels[eid] < 0
        ):
            raise GraphError(f"unknown edge {eid}")
        return Edge(self, eid)

    def labels_of(self, vid: int) -> frozenset[str]:
        """The label set of one vertex (no façade construction)."""
        try:
            tid = self._v_tid[vid] if vid >= 0 else -1
        except (IndexError, TypeError):
            raise GraphError(f"unknown vertex {vid}") from None
        if tid < 0:
            raise GraphError(f"unknown vertex {vid}")
        return self._labelset_strs[tid]

    def get_property(
        self, vid: int, name: str, default: object = None
    ) -> object:
        """One property value straight from its column."""
        table, row = self._locate(vid)
        return table.get_prop(row, self._symbols.sid(name), default)

    def has_label(self, vid: int, label: str) -> bool:
        return label in self.labels_of(vid)

    def vertices_with_label(self, label: str) -> list[int]:
        sid = self._symbols.sid(label)
        if sid is None:
            return []
        return list(self._label_index.get(sid, ()))

    def label_count(self, label: str) -> int:
        sid = self._symbols.sid(label)
        if sid is None:
            return 0
        return len(self._label_index.get(sid, ()))

    def labels(self) -> list[str]:
        name = self._symbols.name
        return sorted(name(sid) for sid in self._label_index)

    def vertex_ids(self) -> list[int]:
        """Live vertex ids in ascending (== insertion) order."""
        return [vid for vid, tid in enumerate(self._v_tid) if tid >= 0]

    def out_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._out.get(vid, {})
        return self._edges_from(adjacency, label)

    def in_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._in.get(vid, {})
        return self._edges_from(adjacency, label)

    def _edges_from(
        self, adjacency: dict[str, _Bucket], label: str | None
    ) -> list[Edge]:
        if label is not None:
            return [Edge(self, e) for e in adjacency.get(label, ())]
        result: list[Edge] = []
        for edge_ids in adjacency.values():
            result.extend(Edge(self, e) for e in edge_ids)
        return result

    def has_edge_between(
        self,
        src: int,
        dst: int,
        label: str | None = None,
        direction: str = "out",
    ) -> bool:
        """O(1) adjacency membership: is there a matching edge?

        ``direction`` follows pattern semantics relative to ``src``:
        ``out`` means src->dst, ``in`` means dst->src, ``any`` either.
        """
        return self.first_edge_between(src, dst, label, direction) is not None

    def first_edge_between(
        self,
        src: int,
        dst: int,
        label: str | None = None,
        direction: str = "out",
    ) -> int | None:
        """The first matching eid between two endpoints, or None."""
        if direction in ("out", "any"):
            eid = self._first_in_pair((src, dst), label)
            if eid is not None:
                return eid
        if direction in ("in", "any"):
            return self._first_in_pair((dst, src), label)
        return None

    def _build_pairs(self) -> dict[tuple[int, int], dict[str, _Bucket]]:
        """Materialize the endpoint-pair index from the edge columns.

        Runs over the *current* edge columns in ascending-eid order,
        so any mutations applied while the index was deferred are
        fully reflected - a deferred index is only ever built whole,
        never patched incrementally.
        """
        pairs: dict[tuple[int, int], dict[str, _Bucket]] = {}
        name = self._symbols.name
        for eid, (sid, src, dst) in enumerate(
            zip(self._e_label, self._e_src, self._e_dst)
        ):
            if sid < 0:
                continue
            key = (src, dst)
            by_label = pairs.get(key)
            if by_label is None:
                by_label = pairs[key] = {}
            label = name(sid)
            bucket = by_label.get(label)
            if bucket is None:
                bucket = by_label[label] = {}
            bucket[eid] = None
        self._pairs = pairs
        return pairs

    def _first_in_pair(
        self, key: tuple[int, int], label: str | None
    ) -> int | None:
        pairs = self._pairs
        if pairs is None:
            pairs = self._build_pairs()
        pair = pairs.get(key)
        if not pair:
            return None
        if label is None:
            for bucket in pair.values():
                for eid in bucket:
                    return eid
            return None
        bucket = pair.get(label)
        if bucket:
            for eid in bucket:
                return eid
        return None

    def degree(self, vid: int) -> int:
        out_deg = sum(len(v) for v in self._out.get(vid, {}).values())
        in_deg = sum(len(v) for v in self._in.get(vid, {}).values())
        return out_deg + in_deg

    def iter_vertices(self) -> Iterator[Vertex]:
        for vid, tid in enumerate(self._v_tid):
            if tid >= 0:
                yield Vertex(self, vid)

    def iter_edges(self) -> Iterator[Edge]:
        for eid, sid in enumerate(self._e_label):
            if sid >= 0:
                yield Edge(self, eid)

    def iter_tables(self) -> list[VertexTable]:
        """The per-label-set vertex tables (statistics / codec use)."""
        return self._tables

    @property
    def symbols(self) -> SymbolTable:
        return self._symbols

    # ------------------------------------------------------------------
    # Property indexes (exact-match lookups for {prop: value} patterns)
    # ------------------------------------------------------------------
    def create_property_index(self, label: str, prop: str) -> None:
        key = (label, prop)
        if key in self._property_indexes:
            return
        index: dict = {}
        sid = self._symbols.sid(label)
        prop_sid = self._symbols.sid(prop)
        if sid is not None and prop_sid is not None:
            for vid in self._label_index.get(sid, ()):
                table = self._tables[self._v_tid[vid]]
                value = table.get_prop(self._v_row[vid], prop_sid)
                if value is not None:
                    index.setdefault(value, {})[vid] = None
        self._property_indexes[key] = index
        if self._stats is not None:
            self._stats.on_create_index()
        self._touch()
        if self._undo is not None:
            self._undo.append(("drop_index", label, prop))
        if self._listeners:
            self._emit("create_property_index", label, prop)

    def has_property_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._property_indexes

    def lookup_property(
        self, label: str, prop: str, value: object
    ) -> list[int]:
        try:
            index = self._property_indexes[(label, prop)]
        except KeyError:
            raise GraphError(
                f"no property index on ({label!r}, {prop!r})"
            ) from None
        return list(index.get(value, ()))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def statistics(self) -> GraphStatistics:
        """Planner statistics, built on first use, then incremental.

        The first call runs one batch pass over the property columns
        and edge columns; afterwards every mutation keeps the counters
        current, so repeated calls are O(1).  See
        :mod:`repro.graphdb.statistics`.
        """
        if self._stats is None:
            self._stats = GraphStatistics.build(self)
        return self._stats

    @property
    def has_statistics(self) -> bool:
        return self._stats is not None

    @property
    def num_vertices(self) -> int:
        return sum(table.live for table in self._tables)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def size_bytes(self, edge_bytes: int = 16) -> int:
        """Approximate storage footprint (used to sanity-check budgets)."""
        from repro.ontology.model import DataType

        total = 0
        for table in self._tables:
            for column in table.columns.values():
                if column.kind == KIND_INT:
                    total += DataType.INT.size_bytes * column.count
                elif column.kind == KIND_FLOAT:
                    total += DataType.FLOAT.size_bytes * column.count
                else:
                    for present, value in zip(column.mask, column.data):
                        if not present:
                            continue
                        if isinstance(value, list):
                            total += DataType.STRING.size_bytes * len(value)
                        elif isinstance(value, bool):
                            total += DataType.BOOL.size_bytes
                        elif isinstance(value, int):
                            total += DataType.INT.size_bytes
                        elif isinstance(value, float):
                            total += DataType.FLOAT.size_bytes
                        else:
                            total += DataType.STRING.size_bytes
        total += edge_bytes * self._num_edges
        return total

    def summary(self) -> str:
        return (
            f"PropertyGraph {self.name!r}: {self.num_vertices:,} vertices, "
            f"{self.num_edges:,} edges, {len(self._label_index)} labels"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
