"""In-memory property graph storage (Definition 2 of the paper).

A directed multigraph whose vertices carry a *set of labels* (vertices
produced by collapsing rules keep the labels of every merged concept -
the same behaviour Neo4j multi-labels give) and whose vertices and edges
carry property maps.  Adjacency is indexed by edge label in both
directions, so expanding a typed pattern hop only touches matching
edges.

Every secondary structure (label index, adjacency lists, property
indexes, the endpoint-pair index) uses insertion-ordered dict buckets
keyed by id, so membership tests, insertion and removal are all O(1)
while iteration order stays deterministic (insertion order, like the
list buckets they replaced).  The endpoint-pair index additionally gives
``has_edge_between`` an O(1) answer to "is there a :T edge from u to
v?", which the executor's join-check step uses instead of scanning a
full adjacency list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import GraphError
from repro.graphdb.statistics import GraphStatistics

#: Insertion-ordered bucket keyed by id.  Adjacency buckets map
#: eid -> neighbor vid (so expansion never dereferences edge records);
#: the label/property/pair indexes ignore the values.
_Bucket = dict


@dataclass
class Vertex:
    vid: int
    labels: frozenset[str]
    properties: dict[str, object] = field(default_factory=dict)


@dataclass
class Edge:
    eid: int
    src: int
    dst: int
    label: str
    properties: dict[str, object] = field(default_factory=dict)


class PropertyGraph:
    """Vertex/edge stores with label, adjacency, and pair indexes."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._label_index: dict[str, _Bucket] = {}
        self._out: dict[int, dict[str, _Bucket]] = {}
        self._in: dict[int, dict[str, _Bucket]] = {}
        #: (src, dst) -> label -> ordered set of eids.  ``None`` means
        #: "not materialized yet": the snapshot loader defers building
        #: this index until the first endpoint probe, because batch
        #: construction from ``_edges`` is cheaper than the per-edge
        #: incremental path and many workloads never probe at all.
        self._pairs: dict[tuple[int, int], dict[str, _Bucket]] | None = {}
        self._property_indexes: dict[tuple[str, str], dict] = {}
        self._next_vid = 0
        self._next_eid = 0
        #: Mutation listeners (the durable store's WAL hook).  Each is
        #: called as ``listener(op, args)`` *after* the mutation has
        #: been applied; ``op`` is the method name, ``args`` its
        #: essential arguments including assigned ids.
        self._listeners: list = []
        #: Planner statistics, materialized lazily by
        #: :meth:`statistics` (or attached by the snapshot loader) and
        #: kept current by per-mutation hooks in the methods below.
        #: Unlike the listeners, the hooks receive pre-mutation context
        #: (removals need the labels/values being removed).
        self._stats: GraphStatistics | None = None

    # ------------------------------------------------------------------
    # Mutation listeners (write-ahead logging hook)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Subscribe ``listener(op, args)`` to every mutation."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _emit(self, op: str, *args) -> None:
        for listener in self._listeners:
            listener(op, args)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        labels: Iterable[str] | str,
        properties: dict[str, object] | None = None,
    ) -> int:
        if isinstance(labels, str):
            labels = (labels,)
        label_set = frozenset(labels)
        if not label_set:
            raise GraphError("a vertex needs at least one label")
        vid = self._next_vid
        self._next_vid += 1
        self._vertices[vid] = Vertex(vid, label_set, dict(properties or {}))
        for label in label_set:
            self._label_index.setdefault(label, {})[vid] = None
        self._out[vid] = {}
        self._in[vid] = {}
        for (label, prop), index in self._property_indexes.items():
            if label in label_set:
                value = self._vertices[vid].properties.get(prop)
                if value is not None:
                    index.setdefault(value, {})[vid] = None
        if self._stats is not None:
            self._stats.on_add_vertex(
                label_set, self._vertices[vid].properties
            )
        if self._listeners:
            self._emit(
                "add_vertex", vid, label_set,
                self._vertices[vid].properties,
            )
        return vid

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        properties: dict[str, object] | None = None,
    ) -> int:
        for endpoint in (src, dst):
            if endpoint not in self._vertices:
                raise GraphError(f"unknown vertex {endpoint}")
        eid = self._next_eid
        self._next_eid += 1
        self._edges[eid] = Edge(eid, src, dst, label, dict(properties or {}))
        self._out[src].setdefault(label, {})[eid] = dst
        self._in[dst].setdefault(label, {})[eid] = src
        if self._pairs is not None:
            self._pairs.setdefault((src, dst), {}).setdefault(label, {})[
                eid
            ] = None
        if self._stats is not None:
            self._stats.on_add_edge(
                label,
                self._vertices[src].labels,
                self._vertices[dst].labels,
            )
        if self._listeners:
            self._emit(
                "add_edge", eid, src, dst, label,
                self._edges[eid].properties,
            )
        return eid

    def set_property(self, vid: int, name: str, value: object) -> None:
        vertex = self.vertex(vid)
        old = vertex.properties.get(name)
        vertex.properties[name] = value
        for (label, prop), index in self._property_indexes.items():
            if prop != name or label not in vertex.labels:
                continue
            if old is not None:
                self._index_discard(index, old, vid)
            if value is not None:
                index.setdefault(value, {})[vid] = None
        if self._stats is not None:
            self._stats.on_set_property(vertex.labels, name, old, value)
        if self._listeners:
            self._emit("set_property", vid, name, value)

    def remove_property(self, vid: int, name: str) -> None:
        vertex = self.vertex(vid)
        old = vertex.properties.pop(name, None)
        if old is None:
            return
        for (label, prop), index in self._property_indexes.items():
            if prop == name and label in vertex.labels:
                self._index_discard(index, old, vid)
        if self._stats is not None:
            self._stats.on_remove_property(vertex.labels, name, old)
        if self._listeners:
            self._emit("remove_property", vid, name)

    @staticmethod
    def _index_discard(index: dict, value: object, vid: int) -> None:
        bucket = index.get(value)
        if bucket is None:
            return
        bucket.pop(vid, None)
        if not bucket:
            del index[value]

    def remove_edge(self, eid: int) -> None:
        """Remove an edge (update handling, Section 4.2 of the paper)."""
        edge = self.edge(eid)
        if self._stats is not None:
            # Endpoint vertices still exist here (remove_vertex drops
            # its incident edges before the vertex itself).
            self._stats.on_remove_edge(
                edge.label,
                self._vertices[edge.src].labels,
                self._vertices[edge.dst].labels,
            )
        del self._edges[eid]
        self._adjacency_discard(self._out[edge.src], edge.label, eid)
        self._adjacency_discard(self._in[edge.dst], edge.label, eid)
        if self._pairs is not None:
            pair = self._pairs[(edge.src, edge.dst)]
            self._adjacency_discard(pair, edge.label, eid)
            if not pair:
                del self._pairs[(edge.src, edge.dst)]
        if self._listeners:
            self._emit("remove_edge", eid)

    @staticmethod
    def _adjacency_discard(
        adjacency: dict[str, _Bucket], label: str, eid: int
    ) -> None:
        bucket = adjacency[label]
        del bucket[eid]
        if not bucket:
            del adjacency[label]

    def remove_vertex(self, vid: int) -> None:
        """Remove a vertex and every incident edge."""
        vertex = self.vertex(vid)
        for edge in list(self.out_edges(vid)) + list(self.in_edges(vid)):
            if edge.eid in self._edges:
                self.remove_edge(edge.eid)
        for label in vertex.labels:
            bucket = self._label_index[label]
            del bucket[vid]
            if not bucket:
                del self._label_index[label]
        for (label, prop), index in self._property_indexes.items():
            if label in vertex.labels:
                value = vertex.properties.get(prop)
                if value is not None:
                    self._index_discard(index, value, vid)
        del self._vertices[vid]
        del self._out[vid]
        del self._in[vid]
        if self._stats is not None:
            self._stats.on_remove_vertex(vertex.labels, vertex.properties)
        if self._listeners:
            self._emit("remove_vertex", vid)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def vertex(self, vid: int) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise GraphError(f"unknown vertex {vid}") from None

    def edge(self, eid: int) -> Edge:
        try:
            return self._edges[eid]
        except KeyError:
            raise GraphError(f"unknown edge {eid}") from None

    def has_label(self, vid: int, label: str) -> bool:
        return label in self.vertex(vid).labels

    def vertices_with_label(self, label: str) -> list[int]:
        return list(self._label_index.get(label, ()))

    def label_count(self, label: str) -> int:
        return len(self._label_index.get(label, ()))

    def labels(self) -> list[str]:
        return sorted(self._label_index)

    def out_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._out.get(vid, {})
        return self._edges_from(adjacency, label)

    def in_edges(self, vid: int, label: str | None = None) -> list[Edge]:
        adjacency = self._in.get(vid, {})
        return self._edges_from(adjacency, label)

    def _edges_from(
        self, adjacency: dict[str, _Bucket], label: str | None
    ) -> list[Edge]:
        edges = self._edges
        if label is not None:
            return [edges[e] for e in adjacency.get(label, ())]
        result: list[Edge] = []
        for edge_ids in adjacency.values():
            result.extend(edges[e] for e in edge_ids)
        return result

    def has_edge_between(
        self,
        src: int,
        dst: int,
        label: str | None = None,
        direction: str = "out",
    ) -> bool:
        """O(1) adjacency membership: is there a matching edge?

        ``direction`` follows pattern semantics relative to ``src``:
        ``out`` means src->dst, ``in`` means dst->src, ``any`` either.
        """
        return self.first_edge_between(src, dst, label, direction) is not None

    def first_edge_between(
        self,
        src: int,
        dst: int,
        label: str | None = None,
        direction: str = "out",
    ) -> int | None:
        """The first matching eid between two endpoints, or None."""
        if direction in ("out", "any"):
            eid = self._first_in_pair((src, dst), label)
            if eid is not None:
                return eid
        if direction in ("in", "any"):
            return self._first_in_pair((dst, src), label)
        return None

    def _build_pairs(self) -> dict[tuple[int, int], dict[str, _Bucket]]:
        """Materialize the endpoint-pair index from the edge store."""
        pairs: dict[tuple[int, int], dict[str, _Bucket]] = {}
        for edge in self._edges.values():
            by_label = pairs.get((edge.src, edge.dst))
            if by_label is None:
                by_label = pairs[(edge.src, edge.dst)] = {}
            bucket = by_label.get(edge.label)
            if bucket is None:
                bucket = by_label[edge.label] = {}
            bucket[edge.eid] = None
        self._pairs = pairs
        return pairs

    def _first_in_pair(
        self, key: tuple[int, int], label: str | None
    ) -> int | None:
        pairs = self._pairs
        if pairs is None:
            pairs = self._build_pairs()
        pair = pairs.get(key)
        if not pair:
            return None
        if label is None:
            for bucket in pair.values():
                for eid in bucket:
                    return eid
            return None
        bucket = pair.get(label)
        if bucket:
            for eid in bucket:
                return eid
        return None

    def degree(self, vid: int) -> int:
        out_deg = sum(len(v) for v in self._out.get(vid, {}).values())
        in_deg = sum(len(v) for v in self._in.get(vid, {}).values())
        return out_deg + in_deg

    def iter_vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def iter_edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    # ------------------------------------------------------------------
    # Property indexes (exact-match lookups for {prop: value} patterns)
    # ------------------------------------------------------------------
    def create_property_index(self, label: str, prop: str) -> None:
        key = (label, prop)
        if key in self._property_indexes:
            return
        index: dict = {}
        for vid in self._label_index.get(label, ()):
            value = self._vertices[vid].properties.get(prop)
            if value is not None:
                index.setdefault(value, {})[vid] = None
        self._property_indexes[key] = index
        if self._stats is not None:
            self._stats.on_create_index()
        if self._listeners:
            self._emit("create_property_index", label, prop)

    def has_property_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._property_indexes

    def lookup_property(
        self, label: str, prop: str, value: object
    ) -> list[int]:
        try:
            index = self._property_indexes[(label, prop)]
        except KeyError:
            raise GraphError(
                f"no property index on ({label!r}, {prop!r})"
            ) from None
        return list(index.get(value, ()))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def statistics(self) -> GraphStatistics:
        """Planner statistics, built on first use, then incremental.

        The first call runs one batch pass over the vertex and edge
        stores; afterwards every mutation keeps the counters current,
        so repeated calls are O(1).  See
        :mod:`repro.graphdb.statistics`.
        """
        if self._stats is None:
            self._stats = GraphStatistics.build(self)
        return self._stats

    @property
    def has_statistics(self) -> bool:
        return self._stats is not None

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def size_bytes(self, edge_bytes: int = 16) -> int:
        """Approximate storage footprint (used to sanity-check budgets)."""
        from repro.ontology.model import DataType

        total = 0
        for vertex in self._vertices.values():
            for value in vertex.properties.values():
                if isinstance(value, list):
                    total += DataType.STRING.size_bytes * len(value)
                elif isinstance(value, bool):
                    total += DataType.BOOL.size_bytes
                elif isinstance(value, int):
                    total += DataType.INT.size_bytes
                elif isinstance(value, float):
                    total += DataType.FLOAT.size_bytes
                else:
                    total += DataType.STRING.size_bytes
        total += edge_bytes * len(self._edges)
        return total

    def summary(self) -> str:
        return (
            f"PropertyGraph {self.name!r}: {self.num_vertices:,} vertices, "
            f"{self.num_edges:,} edges, {len(self._label_index)} labels"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
