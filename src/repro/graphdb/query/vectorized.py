"""Vectorized (batch-at-a-time) execution over the columnar core.

The tuple executor in :mod:`~repro.graphdb.query.executor` interprets
one binding at a time through a chain of Python generators.  This
module provides the batch alternative: plans whose every step the
planner marked ``batchable`` (see ``Plan.batchable``) are compiled
into a pipeline of operators that each process a :class:`Batch` - a
set of parallel vid/eid arrays plus a selection mask - using numpy
kernels over the columnar core's flat arrays:

* **Fused filter+project scans** gather an entire
  :class:`~repro.graphdb.columnar.VertexTable` column per batch
  instead of probing it per row;
* **Mask kernels** compile single-column predicates
  (``= <> < <= > >=``, ``IS [NOT] NULL``, AND/OR/NOT folding) over
  int64/float64 columns with presence-mask handling;
* **CSR-slice expansion** joins a whole batch of source vertices over
  the frozen :class:`~repro.graphdb.view.GraphView` offset arrays
  (``repeat``/``cumsum`` arithmetic) instead of per-vertex iteration;
* **Batch aggregation** folds COUNT/SUM/MIN/MAX/AVG over masked
  arrays, with exactness guards that drop to Python folds whenever
  numpy's arithmetic could diverge from the tuple path (int64 sums
  near overflow, NaN floats, pairwise float summation).

The contract with the tuple path is *strict equivalence*: identical
rows in identical order, and identical work counters (the session's
vertex/property reads, index lookups, edge traversals, and page
touches), so the differential harness in
``tests/graphdb/test_differential.py`` can assert multiset equality
and every existing metrics-sensitive test keeps passing regardless of
which path ran.  Page touches are charged in *runs* of consecutive
same-page rows - the bulk equivalent of the per-row LRU touches the
session makes - in the exact order the tuple path would make them.

:func:`build_pipeline` returns ``(None, reason)`` instead of a
pipeline whenever any part of the query cannot be vectorized without
changing semantics: object-typed columns behind value reads,
parameters resolved to non-numeric values, ``LIMIT`` (whose
short-circuit laziness batch execution would coarsen), int64 ranges
where float promotion loses precision, plans that expand without a
valid frozen view, and so on.  Every fallback is counted per reason in
``repro_vectorized_fallback_total`` and the executor reports the path
that actually ran as ``mode=vectorized|tuple`` in EXPLAIN and traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI images all carry numpy
    np = None
    HAVE_NUMPY = False

from repro.graphdb import observe
from repro.graphdb.columnar import KIND_FLOAT, KIND_INT
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    Expr,
    FuncCall,
    Literal,
    NotOp,
    NullCheck,
    Parameter,
    PropertyRef,
    Query,
    Star,
    Variable,
    contains_aggregate,
)
from repro.graphdb.query.executor import (
    EdgeBinding,
    ExecutionGuard,
    VertexBinding,
    _resolve_props,
    _resolve_value,
)
from repro.graphdb.query.planner import ExpandStep, Plan, ScanStep

_FALLBACKS = observe.REGISTRY.labeled_counter(
    "repro_vectorized_fallback_total",
    "reason",
    "Batchable plans that fell back to tuple execution, per reason.",
)
_BATCHES = observe.REGISTRY.counter(
    "repro_vectorized_batches_total",
    "Batches processed by the vectorized pipeline.",
)

#: Rows per scan batch.  Large enough to amortize kernel dispatch,
#: small enough that a batch's column slices stay cache-resident.
BATCH_ROWS = 4096

#: Integers beyond this magnitude do not round-trip through float64;
#: comparisons and sums that would promote past it fall back.
_EXACT_FLOAT_INT = 2 ** 53
#: int64 batch sums stay provably overflow-free below this bound
#: (BATCH_ROWS * 2**50 < 2**63).
_SAFE_SUM_MAGNITUDE = 2 ** 50

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


@dataclass
class ExecutionReport:
    """Which path one execution took, and why, settled per run."""

    mode: str = "tuple"
    #: Fallback reason when a batchable plan ran tuple (None when the
    #: plan was never batchable or the vectorized path ran).
    reason: str | None = None
    #: Why a parallel-enabled execution stayed serial (None when it
    #: ran parallel or parallelism was never requested).
    parallel_reason: str | None = None
    batches: int = 0


class _Fallback(Exception):
    """Raised during pipeline *construction* only - never mid-batch,
    so a fallback can never leave half-charged metrics behind."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# Columnar array cache
# ----------------------------------------------------------------------
class _Column:
    """One property key's values scattered into vid-indexed arrays.

    ``kind`` is ``"int64"``/``"float64"`` (values + presence),
    ``"object"``/``"mixed"`` (presence only - ``present`` is already
    the *reads-non-null* mask, so a stored ``None`` in an object
    column counts as absent, exactly as every read path reports it),
    or ``"absent"`` (key never stored; reads are None everywhere).
    """

    __slots__ = (
        "kind", "values", "present", "has_tids", "examined",
        "vmin", "vmax",
    )

    def __init__(self, kind, values, present, has_tids, examined, vmin, vmax):
        self.kind = kind
        self.values = values
        self.present = present
        #: Table ids that materialized a column for this key (drives
        #: scan_rows' column-missing charging shortcut).
        self.has_tids = has_tids
        #: tid -> live rows within the column's *raw* (unpadded)
        #: extent.  scan_rows zips vids against the lazily-padded
        #: mask, so with a non-None target the rows past the mask's
        #: end are never examined - and never charged.  Batch scans
        #: must charge the same truncated count.
        self.examined = examined
        self.vmin = vmin
        self.vmax = vmax


class GraphArrays:
    """Epoch-cached numpy projections of one graph's columnar state.

    Built lazily per consumer (column, label bucket, CSR direction)
    and dropped wholesale when the graph's mutation epoch advances -
    the same invalidation rule the frozen view uses.
    """

    def __init__(self, graph):
        self.graph = graph
        self.epoch = graph.mutation_epoch
        self.nslots = len(graph._v_tid)
        self.v_tid = np.asarray(graph._v_tid, dtype=np.int64)
        self._columns: dict[str, _Column] = {}
        self._label_vids: dict[str, object] = {}
        self._table_vids: dict[int, object] = {}
        self._all_vids = None
        self._csr: dict[str, tuple[dict, list]] = {}

    # -- columns -------------------------------------------------------
    def column(self, name: str) -> _Column:
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        column = self._build_column(name)
        self._columns[name] = column
        return column

    def _build_column(self, name: str) -> _Column:
        graph = self.graph
        sid = graph._symbols.sid(name)
        parts = []
        kinds = set()
        has_tids = set()
        if sid is not None:
            for tid, table in enumerate(graph._tables):
                col = table.columns.get(sid)
                if col is None:
                    continue
                has_tids.add(tid)
                kinds.add(col.kind)
                parts.append((tid, table, col))
        if not parts:
            return _Column(
                "absent", None, np.zeros(self.nslots, dtype=bool),
                has_tids, {}, None, None,
            )
        if kinds == {KIND_INT}:
            kind, dtype = KIND_INT, np.int64
        elif kinds == {KIND_FLOAT}:
            kind, dtype = KIND_FLOAT, np.float64
        else:
            kind, dtype = ("object" if len(kinds) == 1 else "mixed"), None
        present = np.zeros(self.nslots, dtype=bool)
        values = (
            np.zeros(self.nslots, dtype=dtype) if dtype is not None
            else None
        )
        examined: dict[int, int] = {}
        for tid, table, col in parts:
            vids = np.asarray(table.vids, dtype=np.int64)
            cap = min(len(vids), len(col.mask), len(col.data))
            examined[tid] = int(np.count_nonzero(vids[:cap] >= 0))
            mask = np.zeros(len(vids), dtype=bool)
            if col.mask:
                nn = col.notnull_mask()
                mask[: len(nn)] = np.frombuffer(
                    bytes(nn), dtype=np.uint8
                ).astype(bool)
            mask &= vids >= 0
            rows = np.flatnonzero(mask)
            if not len(rows):
                continue
            targets = vids[rows]
            present[targets] = True
            if values is not None:
                # Copy, not frombuffer: a shared buffer export would
                # forbid the live column from ever resizing again.
                data = np.array(col.data, dtype=dtype)
                values[targets] = data[rows]
        vmin = vmax = None
        if values is not None and present.any():
            selected = values[present]
            vmin = selected.min().item()
            vmax = selected.max().item()
        return _Column(
            kind, values, present, has_tids, examined, vmin, vmax
        )

    # -- vid sets ------------------------------------------------------
    def label_vids(self, label: str):
        cached = self._label_vids.get(label)
        if cached is None:
            cached = np.asarray(
                self.graph.vertices_with_label(label), dtype=np.int64
            )
            self._label_vids[label] = cached
        return cached

    def all_vids(self):
        if self._all_vids is None:
            self._all_vids = np.asarray(
                self.graph.vertex_ids(), dtype=np.int64
            )
        return self._all_vids

    def table_vids(self, tid: int):
        """Live vids of one table, in row (insertion) order."""
        cached = self._table_vids.get(tid)
        if cached is None:
            vids = np.asarray(
                self.graph._tables[tid].vids, dtype=np.int64
            )
            cached = vids[vids >= 0]
            self._table_vids[tid] = cached
        return cached

    # -- CSR adjacency -------------------------------------------------
    def csr(self, direction: str) -> tuple[dict, list]:
        """``(sid -> (offsets, neighbors, eids), sid order)`` arrays.

        Mirrors the valid frozen view for one direction; the sid order
        is the segment-dict insertion order the tuple path's untyped
        expand iterates, so batch expansion emits pairs identically.
        """
        cached = self._csr.get(direction)
        if cached is not None:
            return cached
        view = self.graph.frozen_view
        if view is None:
            raise _Fallback("no-frozen-view")
        arrays = {}
        order = []
        for sid, (offsets, neighbors, eids) in view.iter_csr(direction):
            order.append(sid)
            arrays[sid] = (
                np.array(offsets, dtype=np.int64),
                np.asarray(neighbors, dtype=np.int64),
                np.asarray(eids, dtype=np.int64),
            )
        cached = (arrays, order)
        self._csr[direction] = cached
        return cached


def graph_arrays(graph) -> GraphArrays:
    """The graph's cached :class:`GraphArrays`, rebuilt per epoch."""
    arrays = getattr(graph, "_vec_arrays", None)
    if arrays is None or arrays.epoch != graph.mutation_epoch:
        arrays = GraphArrays(graph)
        graph._vec_arrays = arrays
    return arrays


# ----------------------------------------------------------------------
# Page-run charging (bulk equivalents of the per-row LRU touches)
# ----------------------------------------------------------------------
def _charge_pages(session, kind: str, vids, dedup: bool) -> None:
    """Charge page touches for ``vids`` accessed in order.

    ``dedup=False`` is the per-row flavor (``accept_vertex`` /
    ``property_reader`` / ``expand_pairs``): every row touches its
    page, so a run of consecutive same-page rows is one real LRU touch
    followed by guaranteed hits.  ``dedup=True`` is the ``scan_rows``
    flavor: repeats within a run are suppressed entirely.
    """
    n = len(vids)
    if n == 0:
        return
    per = (
        session._vertices_per_page if kind == "v"
        else session._adjacency_per_page
    )
    pages = vids // per
    if n == 1:
        run_pages = [int(pages[0])]
    else:
        starts = np.flatnonzero(np.diff(pages)) + 1
        run_pages = pages[np.concatenate(([0], starts))].tolist()
    session.charge_page_runs(kind, run_pages, 0 if dedup else n - len(run_pages))


# ----------------------------------------------------------------------
# Static qualification
# ----------------------------------------------------------------------
_AGG_NAMES = frozenset({"count", "sum", "min", "max", "avg"})


def query_fallback_reason(query: Query, plan: Plan) -> str | None:
    """Why this query's *shape* cannot vectorize (None = it can).

    Plan-shape qualification is the planner's job (``Plan.batchable``);
    this covers the clauses the plan does not describe: LIMIT, the
    RETURN surface, and variables the plan never binds.
    """
    if not HAVE_NUMPY:
        return "numpy-unavailable"
    if query.limit is not None and not query.order_by:
        # Batch granularity would coarsen LIMIT's short-circuit
        # laziness (and the work counters that pin it down).  Under
        # ORDER BY there is no laziness to lose - every row must be
        # produced before the executor's shared top-k heap
        # (``Executor._order``) picks the first ``limit`` - so ORDER
        # BY + LIMIT runs the batch pipeline and feeds the same heap.
        return "limit"
    has_aggregate = any(
        contains_aggregate(item.expr) for item in query.return_items
    )
    for item in query.return_items:
        reason = _item_reason(item.expr, plan, has_aggregate)
        if reason is not None:
            return reason
    # ORDER BY / DISTINCT need no check: the executor's shared tail
    # (sort, dedupe) works on produced rows, identically per path.
    return None


def _item_reason(expr: Expr, plan: Plan, aggregating: bool) -> str | None:
    if aggregating:
        if not isinstance(expr, FuncCall) or expr.name not in _AGG_NAMES:
            # Grouped aggregation, collect(), scalar wrappers around
            # aggregates: all still tuple-only.
            return "aggregate-shape"
        if expr.distinct or expr.flatten or len(expr.args) != 1:
            return "aggregate-shape"
        arg = expr.args[0]
        if isinstance(arg, Star):
            return None if expr.name == "count" else "aggregate-shape"
        if isinstance(arg, Variable):
            if expr.name != "count":
                return "aggregate-shape"
            return _bound_reason(arg.name, plan)
        if isinstance(arg, PropertyRef):
            reason = _bound_reason(arg.var, plan)
            if reason is None and plan.slot_kinds.get(arg.var) != "vertex":
                return "aggregate-shape"
            return reason
        return "aggregate-shape"
    if isinstance(expr, (Literal, Parameter)):
        return None
    if isinstance(expr, Variable):
        return _bound_reason(expr.name, plan)
    if isinstance(expr, PropertyRef):
        return _bound_reason(expr.var, plan)
    return "return-shape"


def _bound_reason(var: str, plan: Plan) -> str | None:
    return None if var in plan.slots else "unbound-variable"


def static_mode(query: Query, plan: Plan, graph=None) -> str:
    """The mode EXPLAIN (which never executes) should render.

    With ``graph``, schema-dependent fallbacks are predicted too:
    object/mixed columns behind value reads, bool constants, and a
    missing frozen view ahead of CSR expansion.  Parameter-dependent
    fallbacks (a ``$param`` bound to a string, int-precision edge
    cases) stay runtime decisions - EXPLAIN is optimistic there and
    ``EXPLAIN ANALYZE`` / result summaries report what actually ran.
    """
    if not plan.batchable:
        return "tuple"
    if query_fallback_reason(query, plan) is not None:
        return "tuple"
    if graph is not None and _schema_reason(query, plan, graph):
        return "tuple"
    return "vectorized"


def _schema_reason(query: Query, plan: Plan, graph) -> str | None:
    needs_value: list[str] = []  # props whose *values* must be read
    consts: list[tuple[str, object]] = []  # (prop, constant) checks
    aggregating = any(
        contains_aggregate(item.expr) for item in query.return_items
    )
    for item in query.return_items:
        expr = item.expr
        if aggregating:  # every item is a plain aggregate FuncCall here
            arg = expr.args[0] if expr.args else None
            if isinstance(arg, PropertyRef) and expr.name != "count":
                needs_value.append(arg.prop)
        elif isinstance(expr, PropertyRef):
            if plan.slot_kinds.get(expr.var) == "vertex":
                needs_value.append(expr.prop)
    has_expand = False
    for step in plan.steps:
        for f in step.filters:
            _filter_consts(f, consts)
        if isinstance(step, ScanStep):
            consts.extend(step.check_props)
        else:
            has_expand = True
            consts.extend(plan.node_specs[step.to_var].props.items())
    if has_expand and graph.frozen_view is None:
        return "no-frozen-view"
    for name in needs_value:
        kind = _schema_kind(graph, name)
        if kind in ("object", "mixed"):
            return "object-column" if kind == "object" else "mixed-kind"
    for name, value in consts:
        if isinstance(value, Parameter) or value is None:
            continue
        if isinstance(value, bool):
            return "bool-value"
        kind = _schema_kind(graph, name)
        if kind in ("object", "mixed"):
            return "object-column" if kind == "object" else "mixed-kind"
    return None


def _filter_consts(expr: Expr, consts: list) -> None:
    if isinstance(expr, Comparison):
        for ref, const in ((expr.lhs, expr.rhs), (expr.rhs, expr.lhs)):
            if isinstance(ref, PropertyRef) and isinstance(const, Literal):
                if const.value is not None:
                    consts.append((ref.prop, const.value))
    elif isinstance(expr, BoolOp):
        for operand in expr.operands:
            _filter_consts(operand, consts)
    elif isinstance(expr, NotOp):
        _filter_consts(expr.operand, consts)
    # NullCheck needs presence only: every column kind qualifies.


def _schema_kind(graph, name: str) -> str:
    """The global column kind, from table metadata alone (no arrays)."""
    sid = graph._symbols.sid(name)
    kinds = set()
    if sid is not None:
        for table in graph._tables:
            col = table.columns.get(sid)
            if col is not None:
                kinds.add(col.kind)
    if not kinds:
        return "absent"
    if kinds == {KIND_INT}:
        return KIND_INT
    if kinds == {KIND_FLOAT}:
        return KIND_FLOAT
    return "object" if len(kinds) == 1 else "mixed"


# ----------------------------------------------------------------------
# Constant guards
# ----------------------------------------------------------------------
def _check_const(col: _Column, value: object) -> None:
    """Reject (via fallback) constants numpy cannot compare exactly."""
    if value is None:
        return  # null-is-false: the kernel returns zeros after charging
    if isinstance(value, bool):
        raise _Fallback("bool-value")
    if isinstance(value, int):
        if not (-(2 ** 63) <= value < 2 ** 63):
            raise _Fallback("int-precision")
        if col.kind == KIND_FLOAT and abs(value) > _EXACT_FLOAT_INT:
            raise _Fallback("int-precision")
        return
    if isinstance(value, float):
        if col.kind == KIND_INT and not _int_range_float_exact(col):
            raise _Fallback("int-precision")
        return
    raise _Fallback("non-numeric-value")


def _int_range_float_exact(col: _Column) -> bool:
    return (
        col.vmin is None
        or (
            -_EXACT_FLOAT_INT <= col.vmin
            and col.vmax <= _EXACT_FLOAT_INT
        )
    )


def _value_column(arrays: GraphArrays, name: str) -> _Column:
    """The column for value (not just presence) access, or fallback."""
    col = arrays.column(name)
    if col.kind in ("object", "mixed"):
        raise _Fallback(
            "object-column" if col.kind == "object" else "mixed-kind"
        )
    return col


# ----------------------------------------------------------------------
# Mask kernels
# ----------------------------------------------------------------------
class _KernelContext:
    """What compiled kernels close over for one execution."""

    __slots__ = ("session", "arrays", "slots", "slot_kinds", "params")

    def __init__(self, session, arrays, plan: Plan, params):
        self.session = session
        self.arrays = arrays
        self.slots = plan.slots
        self.slot_kinds = plan.slot_kinds
        self.params = params


def compile_mask(ctx: _KernelContext, expr: Expr):
    """Compile a maskable predicate into ``fn(batch, idx) -> mask``.

    ``batch`` is the list of per-slot id arrays, ``idx`` the positions
    (within those arrays) still alive; the returned boolean mask is
    aligned to ``idx``.  Work-counter charges replicate the tuple
    path's short-circuit evaluation exactly: AND operands see only the
    rows that survived earlier operands, OR operands only the rows
    still false, and both sides of a comparison always evaluate.
    All fallback checks run here, at compile time - compiled kernels
    cannot fail, so charges are never left half-applied.
    """
    if isinstance(expr, Comparison):
        return _compile_comparison(ctx, expr)
    if isinstance(expr, NullCheck):
        return _compile_nullcheck(ctx, expr)
    if isinstance(expr, BoolOp):
        fns = [compile_mask(ctx, op) for op in expr.operands]
        if expr.op == "and":

            def k_and(batch, idx):
                out = fns[0](batch, idx)
                for fn in fns[1:]:
                    alive = idx[out]
                    if not len(alive):
                        break
                    out[out] = fn(batch, alive)
                return out

            return k_and

        def k_or(batch, idx):
            out = fns[0](batch, idx)
            for fn in fns[1:]:
                rem = ~out
                pending = idx[rem]
                if not len(pending):
                    break
                out[rem] = fn(batch, pending)
            return out

        return k_or
    if isinstance(expr, NotOp):
        inner = compile_mask(ctx, expr.operand)
        return lambda batch, idx: ~inner(batch, idx)
    raise _Fallback("predicate-shape")  # pragma: no cover - planner-gated


def _charged_gather(ctx: _KernelContext, ref: PropertyRef):
    """``fn(batch, idx) -> vids``: read-charge one column per row."""
    slot = ctx.slots.get(ref.var)
    if slot is None or ctx.slot_kinds.get(ref.var) != "vertex":
        raise _Fallback("predicate-shape")  # pragma: no cover
    session = ctx.session
    metrics = session.metrics

    def gather(batch, idx):
        vids = batch[slot][idx]
        metrics.property_reads += len(vids)
        _charge_pages(session, "v", vids, dedup=False)
        return vids

    return gather


def _compile_comparison(ctx: _KernelContext, expr: Comparison):
    lhs, op, rhs = expr.lhs, expr.op, expr.rhs
    if op not in _COMPARISON_OPS:
        raise _Fallback("predicate-shape")  # pragma: no cover
    if isinstance(lhs, PropertyRef) and isinstance(rhs, (Literal, Parameter)):
        ref, const_expr = lhs, rhs
    elif isinstance(rhs, PropertyRef) and isinstance(lhs, (Literal, Parameter)):
        ref, const_expr, op = rhs, lhs, _MIRROR[op]
    else:
        raise _Fallback("predicate-shape")  # pragma: no cover
    value = (
        _resolve_value(const_expr, ctx.params)
        if isinstance(const_expr, Parameter)
        else const_expr.value
    )
    col = ctx.arrays.column(ref.prop)
    if value is not None and col.kind != "absent":
        # A null constant needs no values (null-is-false for every
        # op), so even object columns stay on the batch path then.
        if col.kind in ("object", "mixed"):
            raise _Fallback(
                "object-column" if col.kind == "object" else "mixed-kind"
            )
        _check_const(col, value)
    gather = _charged_gather(ctx, ref)
    if col.kind == "absent" or value is None:
        # Every read is None (or the constant is): null-is-false, but
        # the tuple path still pays the reads before deciding that.
        def k_false(batch, idx):
            vids = gather(batch, idx)
            return np.zeros(len(vids), dtype=bool)

        return k_false
    values, present = col.values, col.present

    def kernel(batch, idx):
        vids = gather(batch, idx)
        stored = values[vids]
        if op == "=":
            hit = stored == value
        elif op == "<>":
            hit = stored != value
        elif op == "<":
            hit = stored < value
        elif op == "<=":
            hit = stored <= value
        elif op == ">":
            hit = stored > value
        else:
            hit = stored >= value
        return present[vids] & hit

    return kernel


def _compile_nullcheck(ctx: _KernelContext, expr: NullCheck):
    ref = expr.expr
    if not isinstance(ref, PropertyRef):
        raise _Fallback("predicate-shape")  # pragma: no cover
    col = ctx.arrays.column(ref.prop)
    gather = _charged_gather(ctx, ref)
    present = col.present
    if expr.negated:
        return lambda batch, idx: present[gather(batch, idx)]
    return lambda batch, idx: ~present[gather(batch, idx)]


def _apply_filters(filters, cols, n):
    """Run pushed filter kernels with per-filter short-circuiting.

    Later filters see only the survivors of earlier ones - the batch
    equivalent of the tuple executor's ``_passes`` loop, so read and
    page charges match per row.
    """
    if not filters or n == 0:
        return cols, n
    idx = np.arange(n)
    for kernel in filters:
        if not len(idx):
            break
        idx = idx[kernel(cols, idx)]
    if len(idx) == n:
        return cols, n
    return [c[idx] if c is not None else None for c in cols], len(idx)


# ----------------------------------------------------------------------
# Equality checks (scan residuals and expand far-node property maps)
# ----------------------------------------------------------------------
#: Node-map equality against one column, resolved at build time:
#: ``presence`` (a None target: matches exactly the rows that read as
#: null), ``compare`` (numeric equality on the value array), or
#: ``nothing`` (a constant that cannot equal any stored value - the
#: rows are still examined and charged, they just never match).
def _eq_spec(
    arrays: GraphArrays, name: str, value: object
) -> tuple[str, _Column, object]:
    col = arrays.column(name)
    if value is None:
        return ("presence", col, None)
    if col.kind == "absent":
        return ("nothing", col, value)
    if col.kind in ("object", "mixed"):
        raise _Fallback(
            "object-column" if col.kind == "object" else "mixed-kind"
        )
    if isinstance(value, bool):
        raise _Fallback("bool-value")
    if isinstance(value, int):
        if not (-(2 ** 63) <= value < 2 ** 63):
            # Beyond int64 it cannot equal a stored int64; a float64
            # column could still hold it exactly, which numpy's
            # promotion would mis-compare.
            if col.kind == KIND_FLOAT:
                raise _Fallback("int-precision")
            return ("nothing", col, value)
        if col.kind == KIND_FLOAT and abs(value) > _EXACT_FLOAT_INT:
            raise _Fallback("int-precision")
        return ("compare", col, value)
    if isinstance(value, float):
        if col.kind == KIND_INT and not _int_range_float_exact(col):
            raise _Fallback("int-precision")
        return ("compare", col, value)
    # Strings/lists/etc. never equal a stored number.
    return ("nothing", col, value)


def _eq_mask(mode: str, col: _Column, value: object, vids):
    if mode == "presence":
        return ~col.present[vids]
    if mode == "nothing":
        return np.zeros(len(vids), dtype=bool)
    return col.present[vids] & (col.values[vids] == value)


# ----------------------------------------------------------------------
# Scan operator (fused filter + batch emission)
# ----------------------------------------------------------------------
_UNSAT = object()  # a resolved constraint no row can satisfy


def _build_scan(ctx: _KernelContext, step: ScanStep, params, nslots):
    """Compile the leading scan into a batch-generator factory.

    Returns :data:`_UNSAT` when a ``$param`` resolved to null (the
    tuple generators yield nothing and charge nothing then).  The
    generator replicates ``GraphSession.scan_rows`` /
    ``label_scan`` charging exactly - including the per-table
    shortcuts that charge without examining rows.

    Candidate vid arrays are captured *now*, at build time: the whole
    pipeline executes against one consistent snapshot, so a mutation
    while a lazy cursor is open cannot leave the compiled column
    arrays and a live vid list disagreeing about graph size.  (The
    charges themselves stay lazy - an unconsumed cursor charges
    nothing, like the tuple generators.)
    """
    check_labels = (
        frozenset(step.check_labels) if step.check_labels else None
    )
    props = _resolve_props(step.check_props, params)
    if props is None:
        return _UNSAT
    filters = [compile_mask(ctx, f) for f in step.filters]
    session = ctx.session
    arrays = ctx.arrays
    graph = session.graph
    slot = step.slot
    access = step.access
    access_label = step.access_label

    def emit(vids):
        for start in range(0, len(vids), BATCH_ROWS):
            chunk = vids[start:start + BATCH_ROWS]
            cols: list = [None] * nslots
            cols[slot] = chunk
            cols, n = _apply_filters(filters, cols, len(chunk))
            if n:
                yield cols, n

    if check_labels is None and not props:
        # No residual checks: the tuple path streams raw candidates
        # (label bucket order / ascending all-vertices) untouched.
        if access == "label":
            candidates = arrays.label_vids(access_label)

            def gen_label():
                session.metrics.index_lookups += 1
                yield from emit(candidates)

            return gen_label

        all_candidates = arrays.all_vids()

        def gen_all():
            yield from emit(all_candidates)

        return gen_all

    primary = props[0] if props else None
    primary_spec = (
        _eq_spec(arrays, primary[0], primary[1])
        if primary is not None else None
    )
    rest_specs = [
        _eq_spec(arrays, name, value) for name, value in props[1:]
    ]
    n_props = len(props)
    count_labels = check_labels is not None
    label_sid = None
    if access == "label":
        label_sid = graph._symbols.sid(access_label)
        if label_sid is None:
            # An un-interned label matches nothing; the lookup is
            # still charged (scan_rows returns after charging it).
            def gen_nothing():
                session.metrics.index_lookups += 1
                return
                yield  # pragma: no cover - makes this a generator

            return gen_nothing
    tables = [
        (tid, table.labels, table.label_sids, arrays.table_vids(tid))
        for tid, table in enumerate(graph._tables)
        if table.live > 0
    ]

    def gen_checked():
        metrics = session.metrics
        metrics.index_lookups += 1
        for tid, tbl_labels, tbl_label_sids, vids in tables:
            if label_sid is not None and label_sid not in tbl_label_sids:
                continue
            if check_labels is not None and not (
                check_labels <= tbl_labels
            ):
                # Whole table rejected by its label set: each live row
                # still counts as examined by the label check.
                metrics.vertex_reads += len(vids)
                continue
            live = len(vids)
            examined = live
            if primary is not None:
                mode, col, value = primary_spec
                if tid not in col.has_tids and value is not None:
                    # Column never materialized on this table: the
                    # probe pays one read per live row and nothing
                    # else (no rows examined, no pages touched).
                    metrics.property_reads += live
                    continue
                if value is not None:
                    # A non-None target zips against the *unpadded*
                    # column, so live rows past its raw extent are
                    # never examined (a None target pads first and
                    # examines everything).
                    examined = col.examined.get(tid, live)
                passing = vids[_eq_mask(mode, col, value, vids)]
            else:
                passing = vids
            # Page touches cover exactly the rows the primary check
            # admitted, before residual property checks - one touch
            # per run of consecutive same-page vids.
            _charge_pages(session, "v", passing, dedup=True)
            for mode, col, value in rest_specs:
                if not len(passing):
                    break
                passing = passing[_eq_mask(mode, col, value, passing)]
            if count_labels:
                metrics.vertex_reads += examined
            metrics.property_reads += examined * n_props
            if len(passing):
                yield from emit(passing)

    return gen_checked


# ----------------------------------------------------------------------
# CSR expand operator
# ----------------------------------------------------------------------
def _build_expand(ctx: _KernelContext, step, spec, params):
    """Compile one plain-hop expansion into a batch-to-batch operator.

    Pair production joins the whole batch against the frozen view's
    CSR offset arrays (repeat/cumsum arithmetic instead of per-vertex
    dict probes) and preserves the tuple path's emission order: source
    row first, then edge-type rank (the spec's label order, or the
    view's segment order untyped, out before in for undirected hops),
    then ascending edge id within a segment.
    """
    far_labels = frozenset(spec.labels) if spec.labels else None
    props = _resolve_props(tuple(spec.props.items()), params)
    if props is None:
        return _UNSAT
    session = ctx.session
    arrays = ctx.arrays
    graph = session.graph
    prop_specs = [
        _eq_spec(arrays, name, value) for name, value in props
    ]
    filters = [compile_mask(ctx, f) for f in step.filters]
    from_slot = step.from_slot
    to_slot = step.to_slot
    rel_slot = step.rel_slot
    direction = step.walk_direction
    directions = (
        ("out", "in") if direction == "any" else (direction,)
    )
    edge_labels = step.edge.labels
    ranked = []
    for d in directions:
        segments, order = arrays.csr(d)
        if edge_labels:
            keys = [graph._symbols.sid(label) for label in edge_labels]
        else:
            keys = order
        for sid in keys:
            if sid is None:
                continue  # a label the graph never interned
            triple = segments.get(sid)
            if triple is not None:
                ranked.append(triple)
    tid_ok = None
    if far_labels is not None:
        tid_ok = np.array(
            [far_labels <= table.labels for table in graph._tables],
            dtype=bool,
        )
    v_tid = arrays.v_tid

    def op(batch):
        cols, n = batch
        src = cols[from_slot]
        metrics = session.metrics
        # One adjacency-page touch per source binding, pairs or not.
        _charge_pages(session, "a", src, dedup=False)
        reps, nbrs, eids = [], [], []
        total = 0
        for offsets, neighbors, edge_ids in ranked:
            starts = offsets[src]
            counts = offsets[src + 1] - starts
            seg_total = int(counts.sum())
            if seg_total == 0:
                continue
            rep = np.repeat(np.arange(n), counts)
            cum = np.cumsum(counts)
            pos = np.arange(seg_total) + np.repeat(
                starts - (cum - counts), counts
            )
            reps.append(rep)
            nbrs.append(neighbors[pos])
            eids.append(edge_ids[pos])
            total += seg_total
        metrics.edge_traversals += total
        if total == 0:
            return None
        if len(reps) == 1:
            rep, nbr, eid = reps[0], nbrs[0], eids[0]
        else:
            rep = np.concatenate(reps)
            # Stable by source row: ties keep concatenation order,
            # which is exactly the per-source type-rank order.
            order = np.argsort(rep, kind="stable")
            rep = rep[order]
            nbr = np.concatenate(nbrs)[order]
            eid = np.concatenate(eids)[order]
        alive = np.arange(total)
        if tid_ok is not None:
            # accept_vertex charges the label read and its page touch
            # for every pair, pass or fail.
            metrics.vertex_reads += total
            _charge_pages(session, "v", nbr, dedup=False)
            alive = alive[tid_ok[v_tid[nbr]]]
        for mode, col, value in prop_specs:
            if not len(alive):
                break
            sel = nbr[alive]
            metrics.property_reads += len(sel)
            _charge_pages(session, "v", sel, dedup=False)
            alive = alive[_eq_mask(mode, col, value, sel)]
        if not len(alive):
            return None
        rep_out = rep[alive]
        out = [
            c[rep_out] if c is not None else None for c in cols
        ]
        out[to_slot] = nbr[alive]
        if rel_slot is not None:
            out[rel_slot] = eid[alive]
        out, n_out = _apply_filters(filters, out, len(rep_out))
        if n_out == 0:
            return None
        return out, n_out

    return op


# ----------------------------------------------------------------------
# Projection and aggregation
# ----------------------------------------------------------------------
def _vertex_prop_reader(ctx: _KernelContext, var: str, prop: str):
    """Charged batch read of one vertex property column -> values.

    Mirrors ``GraphSession.property_reader``: one property read and
    one vertex-page touch per row (repeats on a page count as hits).
    """
    col = ctx.arrays.column(prop)
    if col.kind in ("object", "mixed"):
        raise _Fallback(
            "object-column" if col.kind == "object" else "mixed-kind"
        )
    slot = ctx.slots[var]
    session = ctx.session

    def read(cols, n):
        vids = cols[slot]
        session.metrics.property_reads += n
        _charge_pages(session, "v", vids, dedup=False)
        if col.kind == "absent":
            return [None] * n
        present = col.present[vids]
        values = col.values[vids].tolist()
        if present.all():
            return values
        return [
            v if p else None
            for v, p in zip(values, present.tolist())
        ]

    return read


def _edge_prop_reader(ctx: _KernelContext, var: str, prop: str):
    """Charged batch read of one edge property (sparse dict probes)."""
    slot = ctx.slots[var]
    session = ctx.session
    e_props = session.graph._e_props

    def read(cols, n):
        # read_edge_property: one property read, no page touch.
        session.metrics.property_reads += n
        out = []
        for eid in cols[slot].tolist():
            stored = e_props.get(eid)
            out.append(stored.get(prop) if stored else None)
        return out

    return read


def _compile_item(ctx: _KernelContext, expr: Expr):
    """Compile one RETURN item into ``fn(cols, n) -> list`` (plain
    Python output values, one per batch row)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n
    if isinstance(expr, Parameter):
        value = _resolve_value(expr, ctx.params)
        return lambda cols, n: [value] * n
    if isinstance(expr, Variable):
        slot = ctx.slots[expr.name]
        if ctx.slot_kinds[expr.name] == "edge":
            return lambda cols, n: [
                EdgeBinding(eid) for eid in cols[slot].tolist()
            ]
        return lambda cols, n: [
            VertexBinding(vid) for vid in cols[slot].tolist()
        ]
    if isinstance(expr, PropertyRef):
        if ctx.slot_kinds[expr.var] == "edge":
            return _edge_prop_reader(ctx, expr.var, expr.prop)
        return _vertex_prop_reader(ctx, expr.var, expr.prop)
    raise _Fallback("return-shape")  # pragma: no cover - pre-checked


class _Aggregator:
    """One aggregate RETURN item folded batch by batch.

    Exactness contract: results must be bit-identical to
    ``apply_aggregate`` over the same value sequence - numpy is only
    used where its arithmetic provably matches the Python fold
    (int sums within overflow-safe bounds, NaN-free min/max); every
    other case drops to an explicit Python fold in row order.
    """

    def __init__(self, ctx, name, arg):
        self.name = name
        self.count = 0
        self.total: object = 0
        self.best: object = None
        self.read = None
        self.col = None
        if isinstance(arg, PropertyRef):
            session = ctx.session
            slot = ctx.slots[arg.var]
            col = ctx.arrays.column(arg.prop)
            if name != "count" and col.kind in ("object", "mixed"):
                raise _Fallback(
                    "object-column" if col.kind == "object"
                    else "mixed-kind"
                )
            self.col = col
            safe = 0
            if col.kind == KIND_INT and col.vmin is not None:
                safe = max(abs(col.vmin), abs(col.vmax))

            def gather(cols, n):
                vids = cols[slot]
                session.metrics.property_reads += n
                _charge_pages(session, "v", vids, dedup=False)
                return vids

            self.read = gather
            self._safe_mag = safe

    def update(self, cols, n):
        if self.read is None:  # count(*) / count(var)
            self.count += n
            return
        vids = self.read(cols, n)
        col = self.col
        present = col.present[vids]
        k = int(present.sum())
        if self.name == "count":
            self.count += k
            return
        if k == 0:
            return
        self.count += k
        values = col.values[vids][present]
        if col.kind == KIND_INT:
            self._fold_int(values, k)
        else:
            self._fold_float(values)

    def _fold_int(self, values, k):
        name = self.name
        if name in ("sum", "avg"):
            if self._safe_mag and k * self._safe_mag < 2 ** 62:
                self.total += int(values.sum())
            else:
                self.total += sum(values.tolist())
            return
        m = int(values.min() if name == "min" else values.max())
        best = self.best
        if best is None:
            self.best = m
        elif name == "min":
            self.best = m if m < best else best
        else:
            self.best = m if m > best else best

    def _fold_float(self, values):
        name = self.name
        if name in ("sum", "avg"):
            # Sequential left fold: bit-identical to Python sum().
            self.total = sum(values.tolist(), self.total)
            return
        if np.isnan(values).any():
            # builtin min/max semantics: a leading NaN sticks, a later
            # one loses every comparison - fold explicitly.
            best = self.best
            for v in values.tolist():
                if best is None:
                    best = v
                elif name == "min":
                    if v < best:
                        best = v
                elif v > best:
                    best = v
            self.best = best
            return
        m = float(values.min() if name == "min" else values.max())
        best = self.best
        if best is None:
            self.best = m
        elif name == "min":
            if m < best:  # False when best is NaN: NaN sticks
                self.best = m
        elif m > best:
            self.best = m

    def result(self):
        name = self.name
        if name == "count":
            return self.count
        if name == "sum":
            return self.total
        if name == "avg":
            return self.total / self.count if self.count else None
        return self.best


def _compile_output(query: Query, plan: Plan, ctx: _KernelContext):
    """Compile RETURN into ``(columns, consume(batches) -> rows)``."""
    items = query.return_items
    columns = [item.output_name(i) for i, item in enumerate(items)]
    if any(contains_aggregate(item.expr) for item in items):
        aggs = [
            _Aggregator(
                ctx,
                item.expr.name,
                item.expr.args[0] if item.expr.args else None,
            )
            for item in items
        ]

        def consume_aggregate(batches):
            for cols, n in batches:
                for agg in aggs:
                    agg.update(cols, n)
            # A global aggregate always yields one row, even over
            # zero matches (count=0, sum=0, min/max/avg=null).
            yield tuple(agg.result() for agg in aggs)

        return columns, consume_aggregate

    fns = [_compile_item(ctx, item.expr) for item in items]

    def consume_plain(batches):
        for cols, n in batches:
            yield from zip(*(fn(cols, n) for fn in fns))

    return columns, consume_plain


# ----------------------------------------------------------------------
# Pipeline assembly
# ----------------------------------------------------------------------
def build_pipeline(
    query: Query,
    plan: Plan,
    session,
    params: dict[str, object],
    guard: ExecutionGuard | None = None,
    step_counts: list[int] | None = None,
    step_times: list[float] | None = None,
    report: ExecutionReport | None = None,
):
    """Compile a batchable plan, or fall back with a counted reason.

    Returns ``(columns, row_iterator)`` on success and ``None`` when
    any part of this *execution* cannot be vectorized faithfully (the
    reason lands in ``repro_vectorized_fallback_total`` and on
    ``report.reason``).  All fallback decisions happen here, before
    any work-counter charge - a returned pipeline cannot fail over to
    the tuple path mid-run.
    """
    try:
        reason = query_fallback_reason(query, plan)
        if reason is not None:
            raise _Fallback(reason)
        arrays = graph_arrays(session.graph)
        ctx = _KernelContext(session, arrays, plan, params)
        nslots = plan.num_slots
        unsat = False
        ops = []
        scan_gen = _build_scan(ctx, plan.steps[0], params, nslots)
        if scan_gen is _UNSAT:
            unsat = True
        else:
            for step in plan.steps[1:]:
                op = _build_expand(
                    ctx, step, plan.node_specs[step.to_var], params
                )
                if op is _UNSAT:
                    # The tuple generators return before pulling
                    # upstream: zero rows, zero charges.
                    unsat = True
                    break
                ops.append(op)
        columns, consume = _compile_output(query, plan, ctx)
    except _Fallback as fallback:
        _FALLBACKS.inc(fallback.reason)
        if report is not None:
            report.reason = fallback.reason
        return None
    if report is not None:
        report.mode = "vectorized"
    if unsat:
        # Still route through the consumer: a global aggregate over
        # zero matches must produce its one (0/null) row.
        return columns, consume(iter(()))
    batches = _drive(
        scan_gen, ops, guard, step_counts, step_times, report
    )
    return columns, consume(batches)


def _drive(scan_gen, ops, guard, step_counts, step_times, report):
    """The batch loop: pull scan batches, push them through the
    expand operators, with per-batch deadline checks and the same
    per-step binding counts (and trace timings) the tuple pipeline's
    ``_counted`` / ``_timed_counted`` wrappers collect."""
    timing = step_times is not None
    perf = time.perf_counter

    def batches():
        source = scan_gen()
        while True:
            started = perf() if timing else 0.0
            try:
                batch = next(source)
            except StopIteration:
                if timing:
                    step_times[0] += perf() - started
                return
            if timing:
                step_times[0] += perf() - started
            if guard is not None:
                guard.check_deadline()
            if step_counts is not None:
                step_counts[0] += batch[1]
            dropped = False
            for i, op in enumerate(ops, start=1):
                started = perf() if timing else 0.0
                batch = op(batch)
                if timing:
                    step_times[i] += perf() - started
                if batch is None:
                    dropped = True
                    break
                if step_counts is not None:
                    step_counts[i] += batch[1]
            if dropped:
                continue
            _BATCHES.inc()
            if report is not None:
                report.batches += 1
            yield batch

    return batches()
