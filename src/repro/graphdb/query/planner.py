"""Pattern-matching planner.

Turns the MATCH patterns of a query into an ordered list of steps:

* ``ScanStep`` - produce candidate bindings for one variable from a
  property-index lookup, a label scan, or (last resort) an all-vertices
  scan;
* ``ExpandStep`` - extend bindings along one relationship pattern via
  adjacency, checking the far node's labels/property filters inline;
* ``JoinCheckStep`` - verify a relationship between two already-bound
  variables (cycles in the pattern graph).

Start-point choice is selectivity-driven: an exact property filter with
an index beats a label scan, and smaller labels beat bigger ones - the
same heuristics production engines apply.  Disconnected pattern
components each get their own scan (cartesian product).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import (
    Literal,
    NodePattern,
    Query,
    RelPattern,
)


@dataclass
class NodeSpec:
    """Merged constraints for one pattern variable."""

    var: str
    labels: set[str] = field(default_factory=set)
    props: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EdgeSpec:
    """One relationship pattern between two variables."""

    src_var: str        # pattern-order source (left node)
    dst_var: str
    rel_var: str | None
    labels: tuple[str, ...]
    direction: str      # out: src->dst, in: dst->src, any
    min_hops: int = 1   # variable-length patterns: -[:T*m..n]->
    max_hops: int = 1


@dataclass(frozen=True)
class ScanStep:
    var: str


@dataclass(frozen=True)
class ExpandStep:
    from_var: str
    to_var: str
    edge: EdgeSpec


@dataclass(frozen=True)
class JoinCheckStep:
    edge: EdgeSpec


@dataclass
class Plan:
    steps: list
    node_specs: dict[str, NodeSpec]


def build_plan(query: Query, graph: PropertyGraph) -> Plan:
    """Plan the MATCH portion of ``query`` against ``graph``."""
    specs, edges = _collect(query)
    if not specs:
        raise QueryError("query has no node patterns")

    remaining_edges = list(edges)
    bound: set[str] = set()
    steps: list = []

    def estimate(spec: NodeSpec) -> tuple[int, int]:
        """(cost class, estimated cardinality): lower is better."""
        for prop in spec.props:
            for label in spec.labels:
                if graph.has_property_index(label, prop):
                    return (0, 1)
        if spec.labels:
            smallest = min(graph.label_count(l) for l in spec.labels)
            cost_class = 1 if spec.props else 2
            return (cost_class, smallest)
        return (3, graph.num_vertices)

    unbound = set(specs)
    while unbound:
        # Pick the cheapest unbound variable as this component's start.
        start = min(unbound, key=lambda v: (estimate(specs[v]), v))
        steps.append(ScanStep(start))
        bound.add(start)
        unbound.discard(start)
        # Greedily expand along pattern edges into the bound set.
        progress = True
        while progress:
            progress = False
            for edge in list(remaining_edges):
                src_bound = edge.src_var in bound
                dst_bound = edge.dst_var in bound
                if src_bound and dst_bound:
                    steps.append(JoinCheckStep(edge))
                    remaining_edges.remove(edge)
                    progress = True
                elif src_bound or dst_bound:
                    from_var = edge.src_var if src_bound else edge.dst_var
                    to_var = edge.dst_var if src_bound else edge.src_var
                    steps.append(ExpandStep(from_var, to_var, edge))
                    bound.add(to_var)
                    unbound.discard(to_var)
                    remaining_edges.remove(edge)
                    progress = True
    return Plan(steps, specs)


def _collect(
    query: Query,
) -> tuple[dict[str, NodeSpec], list[EdgeSpec]]:
    """Merge node patterns by variable and list relationship patterns."""
    specs: dict[str, NodeSpec] = {}
    edges: list[EdgeSpec] = []
    fresh = (f"_anon{i}" for i in itertools.count())

    def intern(node: NodePattern) -> str:
        var = node.var or next(fresh)
        spec = specs.setdefault(var, NodeSpec(var))
        spec.labels.update(node.labels)
        for name, literal in node.props:
            _merge_prop(spec, name, literal)
        return var

    for pattern in query.patterns:
        node_vars = [intern(node) for node in pattern.nodes]
        for i, rel in enumerate(pattern.rels):
            edges.append(
                EdgeSpec(
                    src_var=node_vars[i],
                    dst_var=node_vars[i + 1],
                    rel_var=rel.var,
                    labels=rel.labels,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                )
            )
    return specs, edges


def _merge_prop(spec: NodeSpec, name: str, literal: Literal) -> None:
    if name in spec.props and spec.props[name] != literal.value:
        raise QueryError(
            f"conflicting property filters on {spec.var}.{name}"
        )
    spec.props[name] = literal.value
