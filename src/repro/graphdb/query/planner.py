"""Cost-based pattern-matching planner.

Turns the MATCH patterns of a query into an ordered list of steps:

* ``ScanStep`` - produce candidate bindings for one variable from a
  property-index lookup, a label scan, or (last resort) an all-vertices
  scan; the access path is chosen at plan time and recorded on the
  step.  Label/all scans that carry residual ``check_labels`` /
  ``check_props`` execute columnar (the session zips each label-set
  table's vid list against the checked property's column); the
  recorded checks are therefore both the executor's contract and the
  cost model's selectivity input;
* ``ExpandStep`` - extend bindings along one relationship pattern via
  adjacency, checking the far node's labels/property filters inline;
* ``JoinCheckStep`` - verify a relationship between two already-bound
  variables (cycles in the pattern graph) with an O(1) endpoint-pair
  probe.

Two orderings are implemented:

* **Cost-based** (the default): candidate orderings are *priced*
  against :class:`~repro.graphdb.statistics.GraphStatistics` - label
  and edge-type cardinalities, per-(edge type, label) average fan-out,
  and property-value histograms.  For every pattern component the
  enumerator tries each variable as the start point, grows the
  ordering greedily by the cheapest next expansion, and keeps the
  candidate with the lowest total cost (sum of rows examined and rows
  produced across steps - the classic C_out flavor).  The same
  histograms price the scan access path, so a poorly-selective
  property index loses to a highly-selective label scan instead of
  winning by fiat.  Every step carries its estimated row count, which
  ``EXPLAIN`` renders and ``EXPLAIN ANALYZE`` pairs with actual rows.
* **Syntactic** (``cost_based=False``): the legacy heuristic - start
  at the variable whose access path looks categorically cheapest
  (index beats label-with-props beats label beats all-vertices, sizes
  break ties), then expand along pattern edges in the order they were
  written.  Kept as the baseline the planner benchmarks compare
  against, and as the fallback when statistics are unavailable.

The planner also owns two jobs the executor used to do per row:

* **Slot allocation** - every variable the plan binds gets a fixed slot
  index, assigned in the order steps bind them, so the executor can
  represent a binding as a flat tuple it extends by appending instead
  of copying a dict per step.  A consequence: reusing one relationship
  variable across two patterns is rejected with a
  :class:`~repro.exceptions.QueryError` (the previous engine silently
  bound it to whichever pattern matched last, which is not Cypher's
  same-relationship semantics either).
* **Predicate pushdown** - WHERE is decomposed into AND-conjuncts;
  single-variable equality conjuncts (``x.p = literal``) are folded
  into the variable's :class:`NodeSpec` props (where they can hit a
  property index, drive scan selection, and sharpen the histogram
  estimates), and every remaining conjunct is attached to the earliest
  step that binds all of its variables, so non-matching bindings die
  as soon as possible.

Plans built from query *text* are cached per graph in the statistics
object's LRU plan cache, keyed on ``(query text, stats epoch)`` - see
:class:`~repro.graphdb.statistics.PlanCache`.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field, replace

from repro.exceptions import QueryError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    Expr,
    Literal,
    NodePattern,
    NotOp,
    NullCheck,
    Parameter,
    PropertyRef,
    Query,
    contains_aggregate,
    expr_text,
    variables_used,
)
from repro.graphdb.statistics import GraphStatistics, is_hashable

#: Assumed selectivity of an equality check the statistics cannot
#: price (prop filters on unlabeled variables).
_DEFAULT_EQ_SELECTIVITY = 0.1
#: Floor for estimates used as multipliers, so a zero estimate cannot
#: collapse the cost of everything downstream of it.
_MIN_ROWS = 0.01
#: Cap for variable-length fan-out estimates.
_MAX_ROWS = 1e15

#: Missing-key sentinel distinct from a stored ``None`` constraint
#: (a ``{p: null}`` node-map entry means "property absent").
_ABSENT = object()


@dataclass
class NodeSpec:
    """Merged constraints for one pattern variable.

    ``props`` values may be plain literals or
    :class:`~repro.graphdb.query.ast.Parameter` placeholders; the
    latter keep the plan value-agnostic (cacheable per query *shape*)
    and are resolved against the bound parameters at execution time.
    """

    var: str
    labels: set[str] = field(default_factory=set)
    props: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EdgeSpec:
    """One relationship pattern between two variables."""

    src_var: str        # pattern-order source (left node)
    dst_var: str
    rel_var: str | None
    labels: tuple[str, ...]
    direction: str      # out: src->dst, in: dst->src, any
    min_hops: int = 1   # variable-length patterns: -[:T*m..n]->
    max_hops: int = 1

    @property
    def is_plain_hop(self) -> bool:
        return (self.min_hops, self.max_hops) == (1, 1)


@dataclass(frozen=True)
class ScanStep:
    var: str
    slot: int = 0
    #: Access path chosen at plan time: "index" / "label" / "all".
    access: str = "all"
    access_label: str | None = None
    access_prop: str | None = None
    access_value: object = None
    #: Labels/props the access path does NOT already guarantee.
    check_labels: tuple[str, ...] = ()
    check_props: tuple[tuple[str, object], ...] = ()
    #: Pushed-down WHERE conjuncts evaluable once this step binds.
    filters: tuple[Expr, ...] = ()
    #: Estimated bindings produced (None when planned syntactically).
    est_rows: float | None = None
    #: Whether the vectorized executor has a batch operator for this
    #: step's shape (set by :func:`_mark_batchable` after filter
    #: attachment; value-dependent fallbacks stay the executor's call).
    batchable: bool = False


@dataclass(frozen=True)
class ExpandStep:
    from_var: str
    to_var: str
    edge: EdgeSpec
    from_slot: int = 0
    to_slot: int = 0
    rel_slot: int | None = None
    #: Traversal direction seen from ``from_var`` (the edge direction
    #: flipped when the plan walks the pattern backwards).
    walk_direction: str = "out"
    filters: tuple[Expr, ...] = ()
    est_rows: float | None = None
    #: See :attr:`ScanStep.batchable`.
    batchable: bool = False


@dataclass(frozen=True)
class JoinCheckStep:
    edge: EdgeSpec
    src_slot: int = 0
    dst_slot: int = 0
    rel_slot: int | None = None
    filters: tuple[Expr, ...] = ()
    est_rows: float | None = None
    #: Join checks have no batch operator yet; always False.
    batchable: bool = False


@dataclass
class Plan:
    steps: list
    node_specs: dict[str, NodeSpec]
    #: Variable name -> fixed binding-tuple slot.
    slots: dict[str, int] = field(default_factory=dict)
    #: Variable name -> "vertex" | "edge" (what the slot holds).
    slot_kinds: dict[str, str] = field(default_factory=dict)
    #: "cost" or "syntactic" - how the step order was chosen.
    ordering: str = "cost"
    _fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _step_texts: list[str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def step_texts(self) -> list[str]:
        """One canonical text per step (no numbering, no row counts).

        This is the single rendering of "what the plan does": EXPLAIN
        output (:meth:`describe`), trace operator spans, and the plan
        :attr:`fingerprint` all derive from it, so the three surfaces
        can never describe the same plan differently.  Cached: plans
        are immutable once built and cached plans settle metrics on
        every execution.
        """
        if self._step_texts is not None:
            return self._step_texts
        texts = []
        for step in self.steps:
            if isinstance(step, ScanStep):
                if step.access == "index":
                    how = (
                        f"index lookup ({step.access_label}."
                        f"{step.access_prop} = "
                        f"{_value_text(step.access_value)})"
                    )
                elif step.access == "label":
                    how = f"label scan (:{step.access_label})"
                else:
                    how = "all-vertices scan"
                text = f"Scan {step.var} via {how}"
                residual = [f":{label}" for label in step.check_labels]
                residual += [
                    f"{name}={_value_text(value)}"
                    for name, value in step.check_props
                ]
                if residual:
                    text += f" check[{', '.join(residual)}]"
            elif isinstance(step, ExpandStep):
                # Render the arrow as seen from from_var, flipping the
                # stored direction when the plan walks the pattern
                # backwards (from_var is the edge's dst side).
                flipped = step.from_var != step.edge.src_var
                text = (
                    f"Expand ({step.from_var})"
                    f"{_edge_text(step.edge, flipped)}({step.to_var}) "
                    f"[{step.walk_direction}]"
                )
            else:
                text = (
                    f"JoinCheck ({step.edge.src_var})"
                    f"{_edge_text(step.edge)}({step.edge.dst_var})"
                )
                if step.edge.is_plain_hop:
                    text += " [O(1) pair probe]"
            for predicate in step.filters:
                text += f" filter[{expr_text(predicate)}]"
            texts.append(text)
        self._step_texts = texts
        return texts

    @property
    def fingerprint(self) -> str:
        """Short stable digest of the plan shape (step texts).

        Keys the per-plan est-vs-actual observation store; two queries
        that plan into the same operator pipeline share a fingerprint,
        and a replan that changes the pipeline changes it.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1(
                "\n".join(self.step_texts()).encode("utf-8")
            )
            self._fingerprint = digest.hexdigest()[:12]
        return self._fingerprint

    @property
    def batchable(self) -> bool:
        """Whether every step qualifies for the vectorized pipeline.

        Step-level flags are set by :func:`_mark_batchable`; the plan
        additionally requires the single-scan pipeline shape (one
        leading scan, expansions after - no cartesian products, whose
        memoized re-scan semantics the batch path does not model).
        """
        steps = self.steps
        return (
            bool(steps)
            and isinstance(steps[0], ScanStep)
            and all(step.batchable for step in steps)
            and not any(
                isinstance(step, ScanStep) for step in steps[1:]
            )
        )

    def describe(
        self,
        actual: list[int] | None = None,
        mode: str | None = None,
    ) -> str:
        """Human-readable rendering of steps and pushed predicates.

        ``actual`` (per-step binding counts collected by
        ``EXPLAIN ANALYZE``) adds an estimated-vs-actual column.
        ``mode`` appends the execution path (``vectorized``/``tuple``)
        the executor chose - or, for plain EXPLAIN, predicts - for
        this plan.
        """
        lines = []
        for i, (step, text) in enumerate(zip(self.steps, self.step_texts())):
            text += _rows_text(
                step.est_rows, actual[i] if actual is not None else None
            )
            lines.append(f"{i + 1}. {text}")
        if mode is not None:
            lines.append(f"mode={mode}")
        return "\n".join(lines)


def _value_text(value: object) -> str:
    """Render a plan-time value: ``$name`` for parameters, repr else."""
    if isinstance(value, Parameter):
        return f"${value.name}"
    return repr(value)


def _rows_text(est: float | None, actual: int | None) -> str:
    parts = []
    if est is not None:
        parts.append(f"est~{est:.0f}")
    if actual is not None:
        parts.append(f"actual={actual}")
    if not parts:
        return ""
    return f" ({', '.join(parts)} rows)"


def _edge_text(edge: EdgeSpec, flipped: bool = False) -> str:
    inner = edge.rel_var or ""
    if edge.labels:
        inner += ":" + "|".join(edge.labels)
    if not edge.is_plain_hop:
        inner += f"*{edge.min_hops}..{edge.max_hops}"
    body = f"[{inner}]" if inner else ""
    direction = _FLIP[edge.direction] if flipped else edge.direction
    if direction == "out":
        return f"-{body}->"
    if direction == "in":
        return f"<-{body}-"
    return f"-{body}-"


_FLIP = {"out": "in", "in": "out", "any": "any"}


# ----------------------------------------------------------------------
# Ordering ops (shared between the two enumerators)
# ----------------------------------------------------------------------
@dataclass
class _ScanOp:
    var: str
    access: tuple[str, str | None, str | None]  # (kind, label, prop)
    est: float | None = None


@dataclass
class _ExpandOp:
    edge: EdgeSpec
    from_var: str
    est: float | None = None


@dataclass
class _JoinOp:
    edge: EdgeSpec
    est: float | None = None


def build_plan(
    query: Query,
    graph: PropertyGraph,
    statistics: GraphStatistics | None = None,
    cost_based: bool = True,
) -> Plan:
    """Plan the MATCH portion of ``query`` against ``graph``.

    With ``cost_based=True`` (the default) the step order and scan
    access paths are chosen by the statistics-driven cost model
    (``statistics`` defaults to ``graph.statistics()``, building them
    on first use).  ``cost_based=False`` reproduces the legacy
    syntactic ordering and leaves estimates unset.
    """
    specs, edges, deferred = _collect(query)
    if not specs:
        raise QueryError("query has no node patterns")

    conjuncts = _decompose_where(query)
    residual = deferred + [
        c for c in conjuncts if not _try_fold(c, specs)
    ]

    if cost_based:
        if statistics is None:
            statistics = graph.statistics()
        ops = _order_cost_based(specs, edges, graph, statistics)
        ordering = "cost"
    else:
        ops = _order_syntactic(specs, edges, graph)
        ordering = "syntactic"

    steps, slots, slot_kinds, bound_after = _emit_steps(ops, specs, graph)
    _attach_filters(steps, bound_after, residual)
    _mark_batchable(steps, slot_kinds)
    return Plan(steps, specs, slots, slot_kinds, ordering)


# ----------------------------------------------------------------------
# Batchability marking (vectorized-executor qualification)
# ----------------------------------------------------------------------
#: Comparison operators the mask-kernel compiler implements.
_MASKABLE_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def _mark_batchable(steps: list, slot_kinds: dict[str, str]) -> None:
    """Flag the steps the vectorized executor has operators for.

    Purely structural: label/all scans (index scans keep the tuple
    path - their candidate sets are already tiny), plain single-hop
    expansions, and pushed filters the mask-kernel compiler can shape
    into single-column predicates over *vertex* properties.  Whether
    the columns involved are actually numeric (or a parameter resolves
    to a comparable value) is data the planner does not see; those
    fallbacks happen per execution in
    :mod:`~repro.graphdb.query.vectorized`.
    """
    for i, step in enumerate(steps):
        if isinstance(step, ScanStep):
            ok = step.access in ("label", "all")
        elif isinstance(step, ExpandStep):
            ok = step.edge.is_plain_hop
        else:
            continue  # join checks stay tuple-only
        if ok and all(
            _maskable(f, slot_kinds) for f in step.filters
        ):
            steps[i] = replace(step, batchable=True)


def _maskable(expr: Expr, slot_kinds: dict[str, str]) -> bool:
    """Whether one pushed predicate compiles to a batch mask kernel."""
    if isinstance(expr, Comparison):
        if expr.op not in _MASKABLE_OPS:
            return False
        sides = (expr.lhs, expr.rhs)
        consts = [s for s in sides if isinstance(s, (Literal, Parameter))]
        refs = [s for s in sides if isinstance(s, PropertyRef)]
        if len(consts) != 1 or len(refs) != 1:
            return False
        return slot_kinds.get(refs[0].var) == "vertex"
    if isinstance(expr, NullCheck):
        return (
            isinstance(expr.expr, PropertyRef)
            and slot_kinds.get(expr.expr.var) == "vertex"
        )
    if isinstance(expr, BoolOp):
        return all(_maskable(op, slot_kinds) for op in expr.operands)
    if isinstance(expr, NotOp):
        return _maskable(expr.operand, slot_kinds)
    return False


# ----------------------------------------------------------------------
# Step emission (ordering ops -> slotted steps)
# ----------------------------------------------------------------------
def _emit_steps(
    ops: list, specs: dict[str, NodeSpec], graph: PropertyGraph
) -> tuple[list, dict[str, int], dict[str, str], list[set[str]]]:
    slots: dict[str, int] = {}
    slot_kinds: dict[str, str] = {}
    steps: list = []
    bound: set[str] = set()
    #: Variables bound after each step (drives filter pushdown).
    bound_after: list[set[str]] = []

    def alloc(var: str, kind: str) -> int:
        if var in slots:
            raise QueryError(f"variable {var!r} bound more than once")
        slots[var] = len(slots)
        slot_kinds[var] = kind
        return slots[var]

    for op in ops:
        if isinstance(op, _ScanOp):
            steps.append(
                _make_scan(
                    specs[op.var], op.access,
                    alloc(op.var, "vertex"), op.est,
                )
            )
            bound.add(op.var)
        elif isinstance(op, _ExpandOp):
            edge = op.edge
            from_var = op.from_var
            to_var = (
                edge.dst_var if from_var == edge.src_var else edge.src_var
            )
            from_slot = slots[from_var]
            to_slot = alloc(to_var, "vertex")
            rel_slot = (
                alloc(edge.rel_var, "edge")
                if edge.rel_var and edge.is_plain_hop
                else None
            )
            steps.append(
                ExpandStep(
                    from_var,
                    to_var,
                    edge,
                    from_slot=from_slot,
                    to_slot=to_slot,
                    rel_slot=rel_slot,
                    walk_direction=(
                        edge.direction
                        if from_var == edge.src_var
                        else _FLIP[edge.direction]
                    ),
                    est_rows=op.est,
                )
            )
            bound.add(to_var)
            if edge.rel_var and edge.is_plain_hop:
                bound.add(edge.rel_var)
        else:  # _JoinOp
            edge = op.edge
            rel_slot = (
                alloc(edge.rel_var, "edge")
                if edge.rel_var and edge.is_plain_hop
                else None
            )
            steps.append(
                JoinCheckStep(
                    edge,
                    src_slot=slots[edge.src_var],
                    dst_slot=slots[edge.dst_var],
                    rel_slot=rel_slot,
                    est_rows=op.est,
                )
            )
            if edge.rel_var and edge.is_plain_hop:
                bound.add(edge.rel_var)
        bound_after.append(set(bound))
    return steps, slots, slot_kinds, bound_after


def _make_scan(
    spec: NodeSpec,
    access: tuple[str, str | None, str | None],
    slot: int,
    est: float | None,
) -> ScanStep:
    """Build the scan step and record its residual checks."""
    kind, label, prop = access
    return ScanStep(
        spec.var,
        slot=slot,
        access=kind,
        access_label=label,
        access_prop=prop,
        access_value=spec.props[prop] if prop is not None else None,
        check_labels=tuple(
            l for l in sorted(spec.labels) if l != label
        ),
        check_props=tuple(
            (name, value)
            for name, value in spec.props.items()
            if name != prop
        ),
        est_rows=est,
    )


# ----------------------------------------------------------------------
# Syntactic ordering (the legacy heuristic, kept as baseline/fallback)
# ----------------------------------------------------------------------
def _choose_access(
    spec: NodeSpec, graph: PropertyGraph
) -> tuple[str, str | None, str | None]:
    """(access kind, label, prop): the syntactic scan selection.

    Index access wins categorically, then the smallest label.  The
    cost-based path prices the same candidates with histograms instead
    (see :func:`_scan_estimate`).
    """
    for prop, value in spec.props.items():
        if not is_hashable(value):
            continue  # index buckets are keyed by value
        for label in spec.labels:
            if graph.has_property_index(label, prop):
                return ("index", label, prop)
    if spec.labels:
        return ("label", min(spec.labels, key=graph.label_count), None)
    return ("all", None, None)


def _order_syntactic(
    specs: dict[str, NodeSpec],
    edges: list[EdgeSpec],
    graph: PropertyGraph,
) -> list:
    def estimate(spec: NodeSpec) -> tuple[int, int]:
        """(cost class, cardinality): lower is categorically better."""
        access, label, _prop = _choose_access(spec, graph)
        if access == "index":
            return (0, 1)
        if access == "label":
            cost_class = 1 if spec.props else 2
            return (cost_class, graph.label_count(label))
        return (3, graph.num_vertices)

    ops: list = []
    remaining = list(edges)
    bound: set[str] = set()
    unbound = set(specs)
    while unbound:
        # Pick the cheapest unbound variable as this component's start.
        start = min(unbound, key=lambda v: (estimate(specs[v]), v))
        ops.append(_ScanOp(start, _choose_access(specs[start], graph)))
        bound.add(start)
        unbound.discard(start)
        # Greedily expand along pattern edges in written order.
        progress = True
        while progress:
            progress = False
            for edge in list(remaining):
                src_bound = edge.src_var in bound
                dst_bound = edge.dst_var in bound
                if src_bound and dst_bound:
                    ops.append(_JoinOp(edge))
                elif src_bound or dst_bound:
                    from_var = edge.src_var if src_bound else edge.dst_var
                    to_var = edge.dst_var if src_bound else edge.src_var
                    ops.append(_ExpandOp(edge, from_var))
                    bound.add(to_var)
                    unbound.discard(to_var)
                else:
                    continue
                remaining.remove(edge)
                progress = True
    return ops


# ----------------------------------------------------------------------
# Cost-based ordering
# ----------------------------------------------------------------------
def _order_cost_based(
    specs: dict[str, NodeSpec],
    edges: list[EdgeSpec],
    graph: PropertyGraph,
    stats: GraphStatistics,
) -> list:
    """Enumerate candidate orderings per component; keep the cheapest.

    Every variable of a component is tried as the start point; from
    each start the ordering grows greedily by the cheapest applicable
    next step (join checks - which only shrink the intermediate - are
    always applied first).  Components are then sequenced by ascending
    estimated output so cartesian products stay as small as possible,
    and each later component's estimates are scaled by the rows already
    flowing through the pipeline.
    """
    candidates = []
    for component_vars, component_edges in _components(specs, edges):
        best = None
        for start in sorted(component_vars):
            candidate = _greedy_candidate(
                start, component_edges, specs, graph, stats
            )
            if best is None or candidate[0] < best[0]:
                best = candidate
        candidates.append(best)

    # Cheapest-output component first; scale later components' row
    # estimates by the bindings already produced (the executor re-runs
    # their memoized scans per upstream binding).
    candidates.sort(key=lambda c: (c[1], c[0]))
    ops: list = []
    base_rows = 1.0
    for _cost, rows, component_ops in candidates:
        for op in component_ops:
            if op.est is not None:
                op.est = op.est * base_rows
            ops.append(op)
        base_rows = max(base_rows * rows, _MIN_ROWS)
    return ops


def _components(
    specs: dict[str, NodeSpec], edges: list[EdgeSpec]
) -> list[tuple[set[str], list[EdgeSpec]]]:
    """Connected components of the pattern graph, in first-seen order."""
    parent = {var: var for var in specs}

    def find(var: str) -> str:
        while parent[var] != var:
            parent[var] = parent[parent[var]]
            var = parent[var]
        return var

    for edge in edges:
        root_a, root_b = find(edge.src_var), find(edge.dst_var)
        if root_a != root_b:
            parent[root_b] = root_a

    grouped: dict[str, tuple[set[str], list[EdgeSpec]]] = {}
    for var in specs:
        grouped.setdefault(find(var), (set(), []))[0].add(var)
    for edge in edges:
        grouped[find(edge.src_var)][1].append(edge)
    return list(grouped.values())


def _greedy_candidate(
    start: str,
    component_edges: list[EdgeSpec],
    specs: dict[str, NodeSpec],
    graph: PropertyGraph,
    stats: GraphStatistics,
) -> tuple[float, float, list]:
    """(total cost, output rows, ops) for one start point."""
    examined, rows, access = _scan_estimate(specs[start], graph, stats)
    ops: list = [_ScanOp(start, access, rows)]
    cost = examined + rows
    bound = {start}
    pending = list(component_edges)
    while pending:
        # Join checks never grow the intermediate result; apply every
        # one that became available before weighing expansions.
        for edge in [
            e for e in pending
            if e.src_var in bound and e.dst_var in bound
        ]:
            cost += rows  # one probe per binding
            rows = max(rows * _join_selectivity(edge, specs, stats),
                       _MIN_ROWS)
            ops.append(_JoinOp(edge, rows))
            pending.remove(edge)
        if not pending:
            break
        best = None
        for edge in pending:
            src_bound = edge.src_var in bound
            dst_bound = edge.dst_var in bound
            if not (src_bound or dst_bound):
                continue
            from_var = edge.src_var if src_bound else edge.dst_var
            to_var = edge.dst_var if src_bound else edge.src_var
            step_examined, step_rows = _expand_estimate(
                rows, specs[from_var], edge, from_var,
                specs[to_var], stats,
            )
            key = (step_examined + step_rows, from_var, to_var)
            if best is None or key < best[0]:
                best = (key, edge, from_var, to_var,
                        step_examined, step_rows)
        if best is None:  # pragma: no cover - components are connected
            break
        _key, edge, from_var, to_var, step_examined, step_rows = best
        cost += step_examined + step_rows
        rows = max(step_rows, _MIN_ROWS)
        ops.append(_ExpandOp(edge, from_var, rows))
        bound.add(to_var)
        pending.remove(edge)
    return cost, rows, ops


def _scan_estimate(
    spec: NodeSpec, graph: PropertyGraph, stats: GraphStatistics
) -> tuple[float, float, tuple[str, str | None, str | None]]:
    """Price every scan access path; return the cheapest.

    Returns ``(rows examined, rows produced, access)`` where access is
    the ``(kind, label, prop)`` triple :func:`_make_scan` consumes.
    """
    total = max(1, graph.num_vertices)
    options: list[tuple[float, int, float, tuple]] = []

    def residual_selectivity(
        anchor_label: str | None, skip_prop: str | None
    ) -> float:
        sel = 1.0
        for name, value in spec.props.items():
            if name == skip_prop:
                continue
            if anchor_label is not None:
                sel *= _eq_selectivity(stats, anchor_label, name, value)
            else:
                sel *= _DEFAULT_EQ_SELECTIVITY
        for label in spec.labels:
            if label != anchor_label:
                if anchor_label is not None:
                    # Co-occurrence, not independence: merged-label
                    # vertices carry correlated label sets.
                    sel *= stats.label_overlap(anchor_label, label)
                else:
                    sel *= min(1.0, stats.label_count(label) / total)
        return sel

    for prop, value in spec.props.items():
        if not is_hashable(value):
            continue  # index buckets are keyed by value
        for label in spec.labels:
            if graph.has_property_index(label, prop):
                bucket = _eq_estimate(stats, label, prop, value)
                out = bucket * residual_selectivity(label, prop)
                # rank 0: with equal cost an index lookup still wins
                # (it reads only matches; a scan touches everything).
                options.append((bucket, 0, out, ("index", label, prop)))
    if spec.labels:
        label = min(spec.labels, key=stats.label_count)
        examined = float(stats.label_count(label))
        out = examined * residual_selectivity(label, None)
        options.append((examined, 1, out, ("label", label, None)))
    else:
        examined = float(total)
        out = examined * residual_selectivity(None, None)
        options.append((examined, 2, out, ("all", None, None)))

    examined, _rank, out, access = min(
        options, key=lambda o: (o[0] + o[2], o[1])
    )
    return examined, max(out, _MIN_ROWS), access


def _expand_estimate(
    rows: float,
    from_spec: NodeSpec,
    edge: EdgeSpec,
    from_var: str,
    to_spec: NodeSpec,
    stats: GraphStatistics,
) -> tuple[float, float]:
    """(edges examined, bindings produced) for one expansion."""
    walk = (
        edge.direction if from_var == edge.src_var
        else _FLIP[edge.direction]
    )
    per_hop = stats.fanout(from_spec.labels, edge.labels, walk)
    if edge.is_plain_hop:
        fan = per_hop
    else:
        fan = 1.0 if edge.min_hops == 0 else 0.0
        log_cap = math.log(_MAX_ROWS)
        for depth in range(max(edge.min_hops, 1), edge.max_hops + 1):
            # Cap in log space: per_hop ** depth overflows a float
            # long before the min() below could clamp it.
            if per_hop > 1.0 and depth * math.log(per_hop) >= log_cap:
                fan = _MAX_ROWS
                break
            fan += min(per_hop ** depth, _MAX_ROWS)
            if fan >= _MAX_ROWS:
                break
    examined = rows * min(fan, _MAX_ROWS)

    selectivity = 1.0
    if to_spec.labels:
        fractions = []
        for label in to_spec.labels:
            if from_spec.labels:
                # Condition on the near end's anchor label: the label
                # composition of a vertex's neighborhood depends
                # heavily on the vertex's own label.
                near = min(from_spec.labels, key=stats.label_count)
                fraction = stats.cond_endpoint_fraction(
                    edge.labels, near, label, walk
                )
            else:
                far_end = {"out": "dst", "in": "src"}.get(walk)
                if far_end is None:
                    fraction = 0.5 * (
                        stats.endpoint_label_fraction(
                            edge.labels, label, "src"
                        )
                        + stats.endpoint_label_fraction(
                            edge.labels, label, "dst"
                        )
                    )
                else:
                    fraction = stats.endpoint_label_fraction(
                        edge.labels, label, far_end
                    )
            fractions.append(fraction)
        selectivity *= min(fractions)
        anchor = min(to_spec.labels, key=stats.label_count)
        for name, value in to_spec.props.items():
            selectivity *= _eq_selectivity(stats, anchor, name, value)
    else:
        for _ in to_spec.props:
            selectivity *= _DEFAULT_EQ_SELECTIVITY
    return examined, max(examined * selectivity, _MIN_ROWS)


def _eq_estimate(
    stats: GraphStatistics, label: str, prop: str, value: object
) -> float:
    """Histogram estimate, value-agnostic for ``$parameter`` values."""
    if isinstance(value, Parameter):
        return stats.avg_eq_estimate(label, prop)
    return stats.eq_estimate(label, prop, value)


def _eq_selectivity(
    stats: GraphStatistics, label: str, prop: str, value: object
) -> float:
    if isinstance(value, Parameter):
        return stats.avg_eq_selectivity(label, prop)
    return stats.eq_selectivity(label, prop, value)


def _join_selectivity(
    edge: EdgeSpec, specs: dict[str, NodeSpec], stats: GraphStatistics
) -> float:
    """P(a matching edge exists between two already-bound vertices)."""
    matching = stats.edge_count(edge.labels)
    for var, end in ((edge.src_var, "src"), (edge.dst_var, "dst")):
        labels = specs[var].labels
        if labels:
            matching *= min(
                stats.endpoint_label_fraction(edge.labels, label, end)
                for label in labels
            )
    src_size = _spec_cardinality(specs[edge.src_var], stats)
    dst_size = _spec_cardinality(specs[edge.dst_var], stats)
    pairs = max(src_size * dst_size, 1.0)
    selectivity = matching / pairs
    if edge.direction == "any":
        selectivity *= 2.0
    return min(1.0, max(selectivity, 1e-9))


def _spec_cardinality(spec: NodeSpec, stats: GraphStatistics) -> float:
    if not spec.labels:
        return float(max(1, stats.num_vertices))
    return float(
        max(1, min(stats.label_count(label) for label in spec.labels))
    )


# ----------------------------------------------------------------------
# WHERE decomposition and pushdown
# ----------------------------------------------------------------------
def _decompose_where(query: Query) -> list[Expr]:
    if query.where is None:
        return []
    if contains_aggregate(query.where):
        raise QueryError("aggregate functions are not allowed in WHERE")
    return _conjuncts(query.where)


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expr]


def _try_fold(conjunct: Expr, specs: dict[str, NodeSpec]) -> bool:
    """Fold ``x.p = literal`` / ``x.p = $param`` into x's NodeSpec.

    Folding is skipped (conjunct stays a runtime filter) when the
    literal is null (``= null`` is always false in our semantics, while
    a prop constraint would invert that) or when it conflicts with an
    existing constraint (the query then just matches nothing, which the
    residual filter preserves without raising).  A folded
    :class:`Parameter` keeps the plan value-agnostic: the executor
    resolves it per run, treating a ``None`` binding as unsatisfiable
    so the ``= null`` semantics above still hold.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return False
    for prop_ref, literal in (
        (conjunct.lhs, conjunct.rhs),
        (conjunct.rhs, conjunct.lhs),
    ):
        if not isinstance(prop_ref, PropertyRef):
            continue
        if isinstance(literal, Parameter):
            folded: object = literal
        elif isinstance(literal, Literal) and literal.value is not None:
            if not is_hashable(literal.value):
                continue  # property indexes can't look this up
            folded = literal.value
        else:
            continue
        spec = specs.get(prop_ref.var)
        if spec is None:
            continue
        existing = spec.props.get(prop_ref.prop, _ABSENT)
        if existing is not _ABSENT:
            # An existing constraint - including a stored ``None``
            # from a ``{p: null}`` node map (matches-absent), which
            # must not be silently overwritten by an equality that
            # requires the property present.
            return existing == folded  # conflicting: keep residual
        spec.props[prop_ref.prop] = folded
        return True
    return False


def _attach_filters(
    steps: list, bound_after: list[set[str]], residual: list[Expr]
) -> None:
    """Attach each conjunct to the earliest step binding its variables."""
    if not residual or not steps:
        return
    extra: dict[int, list[Expr]] = {}
    last = len(steps) - 1
    for conjunct in residual:
        used = variables_used(conjunct)
        target = last
        for i, bound in enumerate(bound_after):
            if used <= bound:
                target = i
                break
        extra.setdefault(target, []).append(conjunct)
    for i, filters in extra.items():
        steps[i] = replace(
            steps[i], filters=steps[i].filters + tuple(filters)
        )


def _collect(
    query: Query,
) -> tuple[dict[str, NodeSpec], list[EdgeSpec], list[Expr]]:
    """Merge node patterns by variable and list relationship patterns.

    The third return value holds property constraints that could not
    be merged into a spec because they conflict with an existing one
    *undecidably* (a ``$parameter`` is involved, so equality is only
    known at bind time); they become runtime filters.
    """
    specs: dict[str, NodeSpec] = {}
    edges: list[EdgeSpec] = []
    deferred: list[Expr] = []
    fresh = (f"_anon{i}" for i in itertools.count())

    def intern(node: NodePattern) -> str:
        var = node.var or next(fresh)
        spec = specs.setdefault(var, NodeSpec(var))
        spec.labels.update(node.labels)
        for name, literal in node.props:
            residual = _merge_prop(spec, name, literal)
            if residual is not None:
                deferred.append(residual)
        return var

    for pattern in query.patterns:
        node_vars = [intern(node) for node in pattern.nodes]
        for i, rel in enumerate(pattern.rels):
            edges.append(
                EdgeSpec(
                    src_var=node_vars[i],
                    dst_var=node_vars[i + 1],
                    rel_var=rel.var,
                    labels=rel.labels,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                )
            )
    return specs, edges, deferred


def _merge_prop(
    spec: NodeSpec, name: str, literal: Literal | Parameter
) -> Expr | None:
    """Merge one node-map property constraint into ``spec``.

    Returns a residual equality expression instead of merging when the
    constraint conflicts with an existing one but a ``$parameter`` is
    involved - whether the two agree is only known at bind time, so
    the existing constraint stays in the spec and this one is checked
    per binding.  A literal-vs-literal conflict is still rejected at
    plan time (the query can never match).
    """
    value = literal if isinstance(literal, Parameter) else literal.value
    existing = spec.props.get(name)
    if name in spec.props and existing != value:
        if isinstance(value, Parameter) or isinstance(existing, Parameter):
            return Comparison(PropertyRef(spec.var, name), "=", literal)
        raise QueryError(
            f"conflicting property filters on {spec.var}.{name}"
        )
    spec.props[name] = value
    return None
